"""Unit tests for the label-dispatch query index."""

from __future__ import annotations

from repro.core.builder import CompiledQueryCache, build_machine
from repro.core.engine import TwigMEvaluator
from repro.core.queryindex import QueryIndex, QueryRuntime, machine_label_profile


def _runtime(query: str, cache: CompiledQueryCache) -> QueryRuntime:
    compiled = cache.acquire(query)
    return QueryRuntime(compiled, TwigMEvaluator(compiled.tree))


class TestLabelProfile:
    def test_exact_labels(self):
        labels, wildcard = machine_label_profile(build_machine("//a[b]//c"))
        assert labels == frozenset({"a", "b", "c"})
        assert not wildcard

    def test_wildcard_flag(self):
        labels, wildcard = machine_label_profile(build_machine("//*[b]"))
        assert wildcard
        assert labels == frozenset({"b"})

    def test_attribute_and_text_nodes_do_not_add_labels(self):
        labels, wildcard = machine_label_profile(build_machine("//a[@id]/text()"))
        assert labels == frozenset({"a"})
        assert not wildcard


class TestDispatch:
    def test_dispatch_filters_by_label(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        first = _runtime("//a/b", cache)
        second = _runtime("//c", cache)
        index.add(first)
        index.add(second)
        assert index.dispatch("a") == [first]
        assert index.dispatch("c") == [second]
        assert index.dispatch("zzz") == []

    def test_wildcard_runtime_sees_every_tag(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        plain = _runtime("//a", cache)
        star = _runtime("//*[b]", cache)
        index.add(plain)
        index.add(star)
        assert index.dispatch("a") == [plain, star]
        assert index.dispatch("anything") == [star]

    def test_dispatch_preserves_registration_order(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        runtimes = [_runtime(f"//x/q{i}", cache) for i in range(5)]
        for runtime in runtimes:
            index.add(runtime)
        assert index.dispatch("x") == runtimes

    def test_remove_invalidates_cached_dispatch(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        first = _runtime("//a", cache)
        second = _runtime("//a/b", cache)
        index.add(first)
        index.add(second)
        assert index.dispatch("a") == [first, second]
        index.remove(first)
        assert index.dispatch("a") == [second]
        assert len(index) == 1

    def test_text_runtimes(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        plain = _runtime("//a", cache)
        texty = _runtime("//a[b='1']", cache)
        index.add(plain)
        index.add(texty)
        assert index.text_runtimes() == [texty]

    def test_label_classes_and_describe(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        index.add(_runtime("//a/b", cache))
        index.add(_runtime("//a/c", cache))
        classes = index.label_classes()
        assert classes["a"] == 2
        assert classes["b"] == 1
        assert "2 machine(s)" in index.describe()
