"""Unit tests for the prefix-trie dispatch index."""

from __future__ import annotations

from repro.core.builder import CompiledQueryCache, build_machine
from repro.core.engine import TwigMEvaluator
from repro.core.queryindex import (
    QueryIndex,
    QueryRuntime,
    machine_label_profile,
    trie_path,
)
from repro.xpath.normalize import compile_query


def _runtime(query: str, cache: CompiledQueryCache) -> QueryRuntime:
    compiled = cache.acquire(query)
    return QueryRuntime(compiled, TwigMEvaluator(compiled.tree))


class TestLabelProfile:
    def test_exact_labels(self):
        labels, wildcard = machine_label_profile(build_machine("//a[b]//c"))
        assert labels == frozenset({"a", "b", "c"})
        assert not wildcard

    def test_wildcard_flag(self):
        labels, wildcard = machine_label_profile(build_machine("//*[b]"))
        assert wildcard
        assert labels == frozenset({"b"})

    def test_attribute_and_text_nodes_do_not_add_labels(self):
        labels, wildcard = machine_label_profile(build_machine("//a[@id]/text()"))
        assert labels == frozenset({"a"})
        assert not wildcard


class TestDispatch:
    def test_dispatch_filters_by_label(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        first = _runtime("//a/b", cache)
        second = _runtime("//c", cache)
        index.add(first)
        index.add(second)
        assert index.dispatch("a") == [first]
        assert index.dispatch("c") == [second]
        assert index.dispatch("zzz") == []

    def test_wildcard_runtime_sees_every_tag(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        plain = _runtime("//a", cache)
        star = _runtime("//*[b]", cache)
        index.add(plain)
        index.add(star)
        assert index.dispatch("a") == [plain, star]
        assert index.dispatch("anything") == [star]

    def test_dispatch_preserves_registration_order(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        runtimes = [_runtime(f"//x/q{i}", cache) for i in range(5)]
        for runtime in runtimes:
            index.add(runtime)
        assert index.dispatch("x") == runtimes

    def test_remove_invalidates_cached_dispatch(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        first = _runtime("//a", cache)
        second = _runtime("//a/b", cache)
        index.add(first)
        index.add(second)
        assert index.dispatch("a") == [first, second]
        index.remove(first)
        assert index.dispatch("a") == [second]
        assert len(index) == 1

    def test_text_runtimes(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        plain = _runtime("//a", cache)
        texty = _runtime("//a[b='1']", cache)
        index.add(plain)
        index.add(texty)
        assert index.text_runtimes() == [texty]

    def test_label_classes_and_describe(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        index.add(_runtime("//a/b", cache))
        index.add(_runtime("//a/c", cache))
        classes = index.label_classes()
        assert classes["a"] == 2
        assert classes["b"] == 1
        assert "2 machine(s)" in index.describe()

    def test_dispatch_is_memoized_until_registration_changes(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        first = _runtime("//a", cache)
        index.add(first)
        warm = index.dispatch("a")
        assert index.dispatch("a") is warm  # one dict probe after warm-up
        second = _runtime("//a/b", cache)
        index.add(second)
        assert index.dispatch("a") == [first, second]

    def test_peak_fanout_tracks_largest_interest_set(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        for i in range(4):
            index.add(_runtime(f"//x/q{i}", cache))
        index.add(_runtime("//y", cache))
        assert index.peak_fanout == 0  # nothing materialised yet
        index.dispatch("y")
        assert index.peak_fanout == 1
        index.dispatch("x")
        assert index.peak_fanout == 4


class TestTriePath:
    def test_element_axes(self):
        assert trie_path(compile_query("//a/b//c")) == (
            ("//", "a"),
            ("/", "b"),
            ("//", "c"),
        )

    def test_attribute_and_text_terminals_distinguish_paths(self):
        base = trie_path(compile_query("//a"))
        attr = trie_path(compile_query("//a/@id"))
        text = trie_path(compile_query("//a/text()"))
        assert attr == base + (("@", "id"),)
        assert text == base + (("text()", ""),)

    def test_predicates_do_not_participate(self):
        assert trie_path(compile_query("//a[b]//c")) == trie_path(
            compile_query("//a//c")
        )


class TestTrieInterning:
    def test_shared_prefixes_intern_once(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        index.add(_runtime("//a/b", cache))
        assert index.trie_node_count == 2
        # Shares the ``//a`` node; only ``/c`` is new.
        index.add(_runtime("//a/c", cache))
        assert index.trie_node_count == 3

    def test_refcounted_removal_prunes_unused_suffixes(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        shared_a = _runtime("//a/b", cache)
        shared_b = _runtime("//a/b", cache)
        longer = _runtime("//a/b//c", cache)
        for runtime in (shared_a, shared_b, longer):
            index.add(runtime)
        assert index.trie_node_count == 3
        # One of two identical paths leaves: every node still referenced.
        index.remove(shared_a)
        assert index.trie_node_count == 3
        # The longer path leaves: only its private suffix is pruned.
        index.remove(longer)
        assert index.trie_node_count == 2
        # Last registration leaves: the trie empties completely.
        index.remove(shared_b)
        assert index.trie_node_count == 0

    def test_interior_node_with_refs_survives_suffix_removal(self):
        cache = CompiledQueryCache()
        index = QueryIndex()
        short = _runtime("//a/b", cache)
        long = _runtime("//a/b//c", cache)
        index.add(short)
        index.add(long)
        index.remove(long)
        # ``//a/b`` still ends a registration, so its nodes survive.
        assert index.trie_node_count == 2
        index.remove(short)
        assert index.trie_node_count == 0
