"""Unit tests for the TwigM builder."""

from __future__ import annotations

import pytest

from repro.core.builder import CompiledQueryCache, build_machine
from repro.xpath.ast import Axis
from repro.xpath.normalize import compile_query


class TestMachineStructure:
    def test_paper_query_machine(self):
        machine = build_machine("//section[author]//table[position]//cell")
        # One machine node per element query node: section, author, table,
        # position, cell (the paper's Figure 3).
        assert machine.size == 5
        labels = [node.label for node in machine.nodes]
        assert labels == ["section", "author", "table", "position", "cell"]

    def test_root_and_output_flags(self):
        machine = build_machine("//a/b")
        assert machine.root.label == "a"
        assert machine.root.is_root
        output_nodes = [node for node in machine.nodes if node.is_output]
        assert [node.label for node in output_nodes] == ["b"]

    def test_predicate_branches_marked(self):
        machine = build_machine("//a[b]//c")
        by_label = {node.label: node for node in machine.nodes}
        assert by_label["b"].is_predicate_branch
        assert not by_label["c"].is_predicate_branch

    def test_axes_preserved(self):
        machine = build_machine("/a/b//c")
        by_label = {node.label: node for node in machine.nodes}
        assert by_label["a"].axis is Axis.CHILD
        assert by_label["b"].axis is Axis.CHILD
        assert by_label["c"].axis is Axis.DESCENDANT

    def test_attribute_output_attached_to_owner(self):
        machine = build_machine("//ProteinEntry[reference]/@id")
        assert machine.size == 2  # ProteinEntry + reference
        owner = machine.root
        assert owner.attribute_output is not None
        assert owner.attribute_output.label == "id"
        assert not owner.is_output  # the attribute is the output, not the element

    def test_attribute_predicate_attached_to_owner(self):
        machine = build_machine("//a[@id]")
        assert machine.size == 1
        assert [attr.label for attr in machine.root.attribute_predicates] == ["id"]

    def test_text_output_attached_to_owner(self):
        machine = build_machine("//a/text()")
        assert machine.size == 1
        assert machine.root.text_output is not None
        assert machine.root.needs_direct_text

    def test_needs_string_value_for_value_tests(self):
        machine = build_machine("//a[b='x']")
        by_label = {node.label: node for node in machine.nodes}
        assert by_label["b"].needs_string_value
        assert not by_label["a"].needs_string_value

    def test_needs_string_value_for_self_comparison(self):
        machine = build_machine("//a[.='x']")
        assert machine.root.needs_string_value

    def test_wildcard_machine_node(self):
        machine = build_machine("//*[a]")
        assert machine.root.is_wildcard
        assert machine.root.matches("anything")

    def test_accepts_precompiled_tree(self):
        tree = compile_query("//a/b")
        machine = build_machine(tree)
        assert machine.query is tree


class TestTraversalOrders:
    def test_preorder_parents_before_children(self):
        machine = build_machine("//a[b][c]//d[e]")
        order = [node.label for node in machine.nodes]
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("d")
        assert order.index("d") < order.index("e")

    def test_postorder_children_before_parents(self):
        machine = build_machine("//a[b][c]//d[e]")
        order = [node.label for node in machine.nodes_postorder]
        assert order.index("b") < order.index("a")
        assert order.index("e") < order.index("d")
        assert order.index("d") < order.index("a")

    def test_nodes_matching_uses_wildcards(self):
        machine = build_machine("//*[a]/b")
        matching_b = [node.label for node in machine.nodes_matching("b")]
        assert "*" in matching_b and "b" in matching_b
        matching_z = [node.label for node in machine.nodes_matching("z")]
        assert matching_z == ["*"]

    def test_nodes_matching_cache_returns_same_result(self):
        machine = build_machine("//a/b")
        assert machine.nodes_matching("a") == machine.nodes_matching("a")


class TestBuilderLinearity:
    def test_machine_size_tracks_query_size(self):
        for steps in (1, 2, 5, 10, 40):
            query = "".join("//a[p]" for _ in range(steps))
            machine = build_machine(query)
            assert machine.size == 2 * steps

    def test_describe_mentions_all_labels(self):
        machine = build_machine("//section[author]//table[position]//cell")
        text = machine.describe()
        for label in ("section", "author", "table", "position", "cell"):
            assert label in text


class TestCompiledQueryCache:
    def test_same_source_shares_one_entry(self):
        cache = CompiledQueryCache()
        first = cache.acquire("//a[b]//c")
        second = cache.acquire("//a[b]//c")
        assert first is second
        assert first.refcount == 2
        assert len(cache) == 1
        assert cache.misses == 1 and cache.hits == 1

    def test_structurally_identical_sources_share_one_entry(self):
        cache = CompiledQueryCache()
        first = cache.acquire("//a[b]//c")
        second = cache.acquire("//a[ b ]//c")
        assert first is second
        assert first.refcount == 2

    def test_different_shapes_get_distinct_entries(self):
        cache = CompiledQueryCache()
        first = cache.acquire("//a/b")
        second = cache.acquire("//a//b")
        assert first is not second
        assert len(cache) == 2

    def test_release_evicts_at_zero_references(self):
        cache = CompiledQueryCache()
        compiled = cache.acquire("//a")
        cache.acquire("//a")
        cache.release(compiled)
        assert len(cache) == 1
        cache.release(compiled)
        assert len(cache) == 0
        # Re-acquiring after eviction compiles a fresh entry.
        again = cache.acquire("//a")
        assert again is not compiled
        assert again.refcount == 1

    def test_compiled_query_builds_fresh_machines(self):
        cache = CompiledQueryCache()
        compiled = cache.acquire("//a[b]")
        first = compiled.build()
        second = compiled.build()
        assert first is not second
        assert first.query is second.query  # shared normalized twig

    def test_tree_inputs_are_cacheable(self):
        cache = CompiledQueryCache()
        tree = compile_query("//a[b]")
        first = cache.acquire(tree)
        second = cache.acquire("//a[b]")
        assert first is second
        assert first.refcount == 2

    def test_clear_resets_counters(self):
        cache = CompiledQueryCache()
        cache.acquire("//a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
