"""EventStreamSession: the engine's direct event-feed entry point.

Parse-once sharding feeds workers *decoded events* instead of raw XML;
these tests pin the contract that makes that safe: pair-stream parity
with the raw-text session at every split point, document-global
pre-order, abort semantics, eof validation, and spool-free snapshots.
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import dumps_snapshot, loads_snapshot
from repro.core.multi import MultiQueryEvaluator
from repro.core.session import EventStreamSession
from repro.errors import CheckpointError, EngineError
from repro.xmlstream.eventcodec import EventFrameDecoder, EventFrameEncoder
from repro.xmlstream.tokenizer import StreamTokenizer

DOC = (
    "<root a='1'><!-- c --><item id='i1'>hello</item>"
    "<item id='i2'><sub>x</sub><?pi data?></item>"
    "<item id='i3'><sub>y</sub></item></root>"
)
QUERIES = [("q-item", "//item"), ("q-sub", "//item[sub]/sub"), ("q-attr", "//root")]


def _engine():
    engine = MultiQueryEvaluator()
    for name, query in QUERIES:
        engine.subscribe(query, name=name)
    return engine


def _text_pairs(split):
    engine = _engine()
    session = engine.session(parser="native")
    pairs = session.feed_text(DOC[:split])
    pairs += session.feed_text(DOC[split:])
    pairs += session.finish()
    return list(pairs), session.element_count


def _event_pairs(split, through_codec):
    engine = _engine()
    session = engine.event_session()
    tokenizer = StreamTokenizer()
    encoder, decoder = EventFrameEncoder(), EventFrameDecoder()

    def deliver(events):
        if through_codec:
            events = decoder.decode(encoder.encode(events))
        return session.feed_events(events)

    pairs = deliver(list(tokenizer.feed(DOC[:split])))
    pairs += deliver(list(tokenizer.feed(DOC[split:])))
    pairs += deliver(list(tokenizer.close()))
    pairs += session.finish()
    return list(pairs), session.element_count


def _frame_pairs(split):
    """Feed via the fused wire path: encode frames, session decodes them."""
    engine = _engine()
    session = engine.event_session()
    tokenizer = StreamTokenizer()
    encoder = EventFrameEncoder()

    def deliver(events):
        return session.feed_frame(encoder.encode(events))

    pairs = deliver(list(tokenizer.feed(DOC[:split])))
    pairs += deliver(list(tokenizer.feed(DOC[split:])))
    pairs += deliver(list(tokenizer.close()))
    pairs += session.finish()
    return list(pairs), session.element_count


class TestParity:
    @pytest.mark.parametrize("split", [0, 7, 25, len(DOC) // 2, len(DOC) - 3])
    @pytest.mark.parametrize("through_codec", [False, True])
    def test_pairs_identical_to_text_session(self, split, through_codec):
        assert _event_pairs(split, through_codec) == _text_pairs(split)

    def test_every_split_point_through_codec(self):
        expected = _text_pairs(0)
        for split in range(0, len(DOC), 9):
            assert _event_pairs(split, True) == expected

    def test_fused_frame_feed_matches_generic_at_every_split(self):
        """feed_frame (fused decode-into-transitions, no event objects) must
        be indistinguishable from decode() + feed_events() — pairs, element
        count, and the document-global pre-order all included."""
        expected = _text_pairs(0)
        for split in range(0, len(DOC), 9):
            assert _frame_pairs(split) == expected

    def test_fused_frame_feed_matches_generic_statistics(self):
        """Per-machine statistics counters advance identically on both the
        fused and the generic events path (broadcast-native parity)."""

        def run(fused):
            engine = MultiQueryEvaluator(collect_statistics=True)
            engine.subscribe("//item[sub]/sub", name="q")
            session = engine.event_session()
            tokenizer = StreamTokenizer()
            encoder = EventFrameEncoder()
            events = list(tokenizer.feed(DOC)) + list(tokenizer.close())
            if fused:
                session.feed_frame(encoder.encode(events))
            else:
                session.feed_events(
                    EventFrameDecoder().decode(encoder.encode(events))
                )
            session.finish()
            (runtime,) = engine.index.runtimes
            return runtime.statistics.as_dict()

        assert run(fused=True) == run(fused=False)

    def test_corrupt_frame_aborts_the_session(self):
        from repro.xmlstream.eventcodec import EventCodecError

        engine = _engine()
        session = engine.event_session()
        with pytest.raises(EventCodecError):
            session.feed_frame(b"<not a frame>")
        assert session.failed
        with pytest.raises(EngineError, match="aborted"):
            session.feed_frame(b"")


class TestSemantics:
    def test_preorder_is_document_global_with_zero_subscriptions(self):
        engine = MultiQueryEvaluator()
        session = engine.event_session()
        tokenizer = StreamTokenizer()
        session.feed_events(list(tokenizer.feed(DOC)) + list(tokenizer.close()))
        # ground truth: count start tags (root + 3 items + 2 subs)
        assert session.element_count == DOC.count("<item") + DOC.count("<sub") + 1

    def test_finish_flips_engine_finished(self):
        engine = _engine()
        session = engine.event_session()
        tokenizer = StreamTokenizer()
        session.feed_events(list(tokenizer.feed(DOC)) + list(tokenizer.close()))
        assert session.finish() == []
        assert session.finished
        assert engine.results() is not None
        with pytest.raises(EngineError):
            session.feed_events([])

    def test_incomplete_documents_are_caught_by_the_producer(self):
        """Well-formedness is the parser's job: in events mode the *front*
        raises at close() and tells workers to abort — the event session
        itself accepts whatever stream the producer vouched for."""
        from repro.errors import XMLSyntaxError

        tokenizer = StreamTokenizer()
        events = list(tokenizer.feed("<root><unclosed>"))
        with pytest.raises(XMLSyntaxError):
            list(tokenizer.close())

        engine = _engine()
        session = engine.event_session()
        session.feed_events(events)
        session.abort()  # what the worker does on the front's abort command
        assert session.failed
        assert engine._element_order == 0
        assert not engine._started

    def test_abort_resets_machines_and_preserves_count(self):
        engine = _engine()
        session = engine.event_session()
        tokenizer = StreamTokenizer()
        session.feed_events(list(tokenizer.feed(DOC[:60])))
        counted = session.element_count
        assert counted > 0
        session.abort()
        assert session.failed and session.finished
        assert session.element_count == counted  # frozen at the failure point
        assert engine._element_order == 0
        with pytest.raises(EngineError, match="aborted"):
            session.feed_events([])
        # abort is idempotent
        session.abort()

    def test_midstream_subscription_sees_remainder_only(self):
        engine = MultiQueryEvaluator()
        engine.subscribe("//item", name="early")
        session = engine.event_session()
        tokenizer = StreamTokenizer()
        pairs = session.feed_events(list(tokenizer.feed(DOC[: len(DOC) // 2])))
        engine.subscribe("//item", name="late")
        pairs += session.feed_events(
            list(tokenizer.feed(DOC[len(DOC) // 2 :])) + list(tokenizer.close())
        )
        pairs += session.finish()
        early = [name for name, _ in pairs if name == "early"]
        late = [name for name, _ in pairs if name == "late"]
        assert len(early) == 3
        assert 0 < len(late) < 3


class TestSnapshot:
    def test_snapshot_has_no_parse_carryover(self):
        engine = _engine()
        session = engine.event_session()
        tokenizer = StreamTokenizer()
        session.feed_events(list(tokenizer.feed(DOC[:50])))
        snap = session.snapshot()
        assert snap["session"] == {"parser": "events"}

    def test_restore_roundtrip_is_exact(self):
        for split in (10, 45, 80):
            engine = _engine()
            session = engine.event_session()
            tokenizer = StreamTokenizer()
            pairs = session.feed_events(list(tokenizer.feed(DOC[:split])))
            snap = loads_snapshot(dumps_snapshot(session.snapshot()))

            restored_engine = MultiQueryEvaluator()
            restored = restored_engine.restore_session(snap)
            assert isinstance(restored, EventStreamSession)
            assert restored.parser == "events"
            tail = list(tokenizer.feed(DOC[split:])) + list(tokenizer.close())
            pairs += restored.feed_events(tail)
            pairs += restored.finish()
            assert (list(pairs), restored.element_count) == _text_pairs(split)

    def test_snapshot_refused_after_abort_or_finish(self):
        engine = _engine()
        session = engine.event_session()
        session.abort()
        with pytest.raises(CheckpointError, match="aborted"):
            session.snapshot()

        session = _engine().event_session()
        tokenizer = StreamTokenizer()
        session.feed_events(list(tokenizer.feed(DOC)) + list(tokenizer.close()))
        session.finish()
        with pytest.raises(CheckpointError, match="finished"):
            session.snapshot()
