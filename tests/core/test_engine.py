"""Unit and behavioural tests for the TwigM evaluation engine."""

from __future__ import annotations

import pytest

from repro.core.engine import TwigMEvaluator, evaluate, stream_evaluate
from repro.core.results import SolutionKind
from repro.errors import StreamStateError
from repro.xmlstream.sax import iter_events
from repro.xmlstream.tokenizer import tokenize


class TestBasicQueries:
    def test_single_element_query(self, simple_doc):
        result = evaluate("//book", simple_doc)
        assert len(result) == 2
        assert all(s.kind is SolutionKind.ELEMENT for s in result)

    def test_child_path(self, simple_doc):
        assert len(evaluate("/library/book/title", simple_doc)) == 2

    def test_absolute_root_mismatch_returns_nothing(self, simple_doc):
        assert len(evaluate("/book", simple_doc)) == 0

    def test_descendant_axis(self, simple_doc):
        assert len(evaluate("//title", simple_doc)) == 3

    def test_wildcard(self, simple_doc):
        # //* selects every element, including the document element.
        assert len(evaluate("//*", simple_doc)) == 12
        assert len(evaluate("/library/*", simple_doc)) == 3

    def test_attribute_output(self, simple_doc):
        result = evaluate("//book/@id", simple_doc)
        assert sorted(s.value for s in result) == ["b1", "b2"]
        assert all(s.kind is SolutionKind.ATTRIBUTE for s in result)

    def test_attribute_wildcard_output(self, simple_doc):
        values = sorted(s.value for s in evaluate("//book/@*", simple_doc))
        assert values == ["1999", "b1", "b2"]

    def test_text_output(self, simple_doc):
        values = evaluate("//book/title/text()", simple_doc).values()
        assert values == ["Streams", "Trees"]

    def test_no_matches(self, simple_doc):
        assert len(evaluate("//nonexistent", simple_doc)) == 0


class TestPredicates:
    def test_existence_predicate(self, simple_doc):
        result = evaluate("//book[author]/@id", simple_doc)
        assert sorted(result.values()) == ["b1", "b2"]

    def test_attribute_existence_predicate(self, simple_doc):
        result = evaluate("//book[@year]/@id", simple_doc)
        assert result.values() == ["b1"]

    def test_attribute_value_predicate(self, simple_doc):
        assert evaluate("//book[@id='b2']/title/text()", simple_doc).values() == ["Trees"]

    def test_string_value_predicate(self, simple_doc):
        assert evaluate("//book[author='Grace']/@id", simple_doc).values() == ["b2"]

    def test_numeric_comparison_predicate(self, simple_doc):
        assert evaluate("//book[price>20]/@id", simple_doc).values() == ["b1"]
        assert evaluate("//book[price<=12]/@id", simple_doc).values() == ["b2"]

    def test_and_predicate(self, simple_doc):
        assert evaluate("//book[author='Ada' and price>20]/@id", simple_doc).values() == ["b1"]
        assert evaluate("//book[author='Ada' and price<20]/@id", simple_doc).values() == []

    def test_or_predicate(self, simple_doc):
        values = evaluate("//book[author='Ada' or author='Linus']/@id", simple_doc).values()
        assert values == ["b1", "b2"]

    def test_not_predicate(self, simple_doc):
        assert evaluate("//book[not(@year)]/@id", simple_doc).values() == ["b2"]

    def test_nested_predicate_path(self, simple_doc):
        assert len(evaluate("//library[book/author]", simple_doc)) == 1
        assert len(evaluate("//library[book/editor]", simple_doc)) == 0

    def test_self_value_predicate(self, simple_doc):
        assert evaluate("//author[.='Ada']", simple_doc).elements()[0].tag == "author"

    def test_predicate_satisfied_after_candidate_seen(self):
        # The predicate element (flag) arrives after the candidate output
        # element has already been seen and closed — the paper's motivating
        # scenario for recording pattern matches.
        document = "<a><b><c>target</c></b><flag/></a>"
        assert len(evaluate("//a[flag]//c", document)) == 1
        document_without = "<a><b><c>target</c></b></a>"
        assert len(evaluate("//a[flag]//c", document_without)) == 0


class TestRecursiveDocuments:
    def test_descendant_axis_on_recursive_data(self, recursive_doc):
        assert len(evaluate("//a//b", recursive_doc)) == 5
        assert len(evaluate("//a//a", recursive_doc)) == 5
        assert len(evaluate("//a/a/a", recursive_doc)) == 3

    def test_child_vs_descendant_distinction(self, recursive_doc):
        child = evaluate("//a/b", recursive_doc).keys()
        descendant = evaluate("//a//b", recursive_doc).keys()
        assert set(child) <= set(descendant)
        assert len(child) < len(descendant)

    def test_duplicate_solutions_not_reported(self, recursive_doc):
        # //a//b could match the same b through many different a ancestors.
        result = evaluate("//a//b", recursive_doc)
        keys = result.keys()
        assert len(keys) == len(set(keys))


class TestEngineLifecycle:
    def test_feed_api_matches_evaluate(self, simple_doc):
        evaluator = TwigMEvaluator("//book/@id")
        solutions = []
        for event in tokenize(simple_doc):
            solutions.extend(evaluator.feed(event))
        result = evaluator.finish()
        assert sorted(s.value for s in solutions) == ["b1", "b2"]
        assert len(result) == 2

    def test_feed_after_finish_rejected(self, simple_doc):
        evaluator = TwigMEvaluator("//book")
        evaluator.evaluate(simple_doc)
        with pytest.raises(StreamStateError):
            evaluator.feed(next(iter(tokenize("<x/>"))))

    def test_reset_allows_reuse(self, simple_doc):
        evaluator = TwigMEvaluator("//book")
        first = evaluator.evaluate(simple_doc)
        evaluator.reset()
        second = evaluator.evaluate(simple_doc)
        assert first.keys() == second.keys()

    def test_event_list_source(self, simple_doc):
        events = list(tokenize(simple_doc))
        assert len(evaluate("//book", events)) == 2

    def test_expat_backend(self, simple_doc):
        native = evaluate("//book[author]/@id", simple_doc, parser="native").keys()
        expat = evaluate("//book[author]/@id", simple_doc, parser="expat").keys()
        assert native == expat

    def test_stacks_empty_after_run(self, simple_doc):
        evaluator = TwigMEvaluator("//book[author]//title")
        evaluator.evaluate(simple_doc)
        assert evaluator.machine.stacks_empty()

    def test_finish_with_open_elements_rejected(self):
        evaluator = TwigMEvaluator("//a")
        events = list(tokenize("<a><b/></a>"))
        # Feed only the first two events (document start + <a>).
        evaluator.feed(events[0])
        evaluator.feed(events[1])
        with pytest.raises(StreamStateError):
            evaluator.finish()


class TestIncrementalStreaming:
    def test_solutions_stream_before_document_ends(self):
        document = "<feed>" + "".join(
            f"<item n='{i}'><v>{i}</v></item>" for i in range(10)
        ) + "</feed>"
        evaluator = TwigMEvaluator("//item/@n")
        seen = []
        events = list(tokenize(document))
        for index, event in enumerate(events):
            for solution in evaluator.feed(event):
                seen.append((index, solution.value))
        # The first solution must be known well before the last event.
        assert seen[0][0] < len(events) - 2
        assert [value for _, value in seen] == [str(i) for i in range(10)]

    def test_stream_evaluate_generator(self, simple_doc):
        values = [s.value for s in stream_evaluate("//book/@id", simple_doc)]
        assert sorted(values) == ["b1", "b2"]

    def test_stream_on_chunked_generator_source(self):
        def chunks():
            yield "<root>"
            for index in range(100):
                yield f"<row id='{index}'/>"
            yield "</root>"

        count = sum(1 for _ in stream_evaluate("//row/@id", chunks()))
        assert count == 100


class TestStatisticsTracking:
    def test_counters_populated(self, simple_doc):
        evaluator = TwigMEvaluator("//book[author]/title")
        evaluator.evaluate(simple_doc)
        stats = evaluator.statistics
        assert stats.elements == 12
        assert stats.pushes == stats.pops
        assert stats.pushes > 0
        assert stats.max_depth == 3
        assert stats.solutions_distinct == 2
        assert stats.peak_stack_entries >= 1
        assert stats.work_units() > 0

    def test_live_entries_return_to_zero(self, simple_doc):
        evaluator = TwigMEvaluator("//book[author]//title")
        evaluator.evaluate(simple_doc)
        assert evaluator.statistics.live_entries == 0
