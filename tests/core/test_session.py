"""StreamSession: push-mode parity with one-shot evaluation.

The contract under test (ISSUE 3 acceptance): feeding a document through a
push session in 1-byte chunks must produce a ``(name, solution)`` stream
byte-identical to one-shot ``evaluate()`` / ``stream()`` — on both parser
back-ends, with chunk boundaries falling anywhere.
"""

from __future__ import annotations

import pytest

from repro.core.multi import MultiQueryEvaluator
from repro.errors import EngineError, XMLSyntaxError

DOC = (
    '<?xml version="1.0"?>'
    "<feed>"
    '<r seq="1"><s1><v1>aé&amp;b</v1></s1></r>'
    '<r seq="0"><s0><v0>plain</v0></s0></r>'
    "<r><s1><v1>☃ two</v1></s1></r>"
    "<!-- noise -->"
    "<r><s1><v1><![CDATA[cd & ata]]></v1></s1></r>"
    "</feed>"
)

QUERIES = (
    ("a", "//s1/v1"),
    ("b", "//r[s0]"),
    ("c", "//v1/text()"),
    ("d", "//r/@seq"),
)

PARSERS = ("pure", "expat")


def _register_all(engine):
    for name, query in QUERIES:
        engine.register(query, name=name)


def _pairs_key(pairs):
    return [(name, solution.key()) for name, solution in pairs]


def _oneshot_pairs(parser):
    with MultiQueryEvaluator() as engine:
        _register_all(engine)
        pairs = list(engine.stream(DOC, parser=parser))
        results = {name: result.keys() for name, result in engine.results().items()}
    return pairs, results


class TestChunkedParity:
    @pytest.mark.parametrize("parser", PARSERS)
    def test_one_byte_chunks_match_oneshot(self, parser):
        expected_pairs, expected_results = _oneshot_pairs(parser)
        data = DOC.encode("utf-8")
        with MultiQueryEvaluator() as engine:
            _register_all(engine)
            session = engine.session(parser=parser)
            pairs = []
            for i in range(len(data)):
                pairs.extend(session.feed_bytes(data[i : i + 1]))
            pairs.extend(session.finish())
            assert _pairs_key(pairs) == _pairs_key(expected_pairs)
            results = {
                name: result.keys() for name, result in engine.results().items()
            }
            assert results == expected_results

    @pytest.mark.parametrize("parser", PARSERS)
    def test_pure_and_expat_sessions_agree(self, parser):
        # Cross-backend: both backends' session streams equal the pure
        # one-shot stream, hence each other.
        expected_pairs, _ = _oneshot_pairs("pure")
        with MultiQueryEvaluator() as engine:
            _register_all(engine)
            session = engine.session(parser=parser)
            pairs = session.feed_text(DOC)
            pairs.extend(session.finish())
            assert _pairs_key(pairs) == _pairs_key(expected_pairs)

    @pytest.mark.parametrize("parser", PARSERS)
    def test_text_and_byte_feeding_agree(self, parser):
        expected_pairs, _ = _oneshot_pairs(parser)
        with MultiQueryEvaluator() as engine:
            _register_all(engine)
            session = engine.session(parser=parser)
            half = len(DOC) // 2
            pairs = session.feed_text(DOC[:half])
            pairs.extend(session.feed_text(DOC[half:]))
            pairs.extend(session.finish())
            assert _pairs_key(pairs) == _pairs_key(expected_pairs)

    @pytest.mark.parametrize("parser", PARSERS)
    def test_callbacks_fire_exactly_once(self, parser):
        received = []
        with MultiQueryEvaluator() as engine:
            engine.register("//s1/v1", name="cb", callback=received.append)
            session = engine.session(parser=parser)
            session.feed_text(DOC)
            session.finish()
            assert len(received) == 3
            assert engine.subscriptions[0].delivered == 3


class TestSessionLifecycle:
    @pytest.mark.parametrize("parser", PARSERS)
    def test_mid_stream_registration_sees_remainder_only(self, parser):
        with MultiQueryEvaluator() as engine:
            engine.register("//s0/v0", name="early")
            session = engine.session(parser=parser)
            session.feed_text('<feed><r seq="1"><s1><v1>x</v1></s1></r>')
            late = engine.register("//s1/v1", name="late")
            pairs = session.feed_text('<r><s1><v1>y</v1></s1></r></feed>')
            pairs.extend(session.finish())
            late_pairs = [pair for pair in pairs if pair[0] == "late"]
            assert len(late_pairs) == 1
            # Solution identity is document-global: the second v1 is the
            # 7th element (0-based order 6) of the whole stream.
            assert late_pairs[0][1].node.order == 6
            assert late.delivered == 1

    @pytest.mark.parametrize("parser", PARSERS)
    def test_zero_subscription_feeding_keeps_position(self, parser):
        with MultiQueryEvaluator() as engine:
            session = engine.session(parser=parser)
            session.feed_text("<feed><r><s1><v1>x</v1></s1></r>")
            assert session.element_count == 4
            engine.register("//v1", name="late")
            pairs = session.feed_text("<r><s1><v1>y</v1></s1></r></feed>")
            pairs.extend(session.finish())
            assert len(pairs) == 1
            # feed(0) r(1) s1(2) v1(3) parsed before registration; the
            # remainder's v1 lands at document-global order 6.
            assert pairs[0][1].node.order == 6

    @pytest.mark.parametrize("parser", PARSERS)
    def test_finish_marks_engine_finished(self, parser):
        with MultiQueryEvaluator() as engine:
            engine.register("//v1", name="q")
            session = engine.session(parser=parser)
            session.feed_text("<feed><v1>x</v1></feed>")
            session.finish()
            assert session.finished
            with pytest.raises(EngineError):
                engine.register("//v0", name="later")
            with pytest.raises(EngineError):
                session.feed_text("<more/>")
            engine.reset()
            # Standing queries survive into the next document.
            session2 = engine.session(parser=parser)
            pairs = session2.feed_text("<feed><v1>y</v1></feed>")
            pairs.extend(session2.finish())
            assert len(pairs) == 1

    @pytest.mark.parametrize("parser", PARSERS)
    def test_parse_error_aborts_and_resets(self, parser):
        with MultiQueryEvaluator() as engine:
            engine.register("//v1", name="q")
            session = engine.session(parser=parser)
            session.feed_text("<feed><v1>x</v1>")
            with pytest.raises(XMLSyntaxError):
                session.feed_text("</wrong>")
            assert session.failed
            with pytest.raises(EngineError):
                session.feed_text("<more/>")
            # The engine is clean: a fresh session parses a new document and
            # sees none of the aborted document's state.
            session2 = engine.session(parser=parser)
            pairs = session2.feed_text("<feed><v1>z</v1></feed>")
            pairs.extend(session2.finish())
            assert len(pairs) == 1
            assert pairs[0][1].node.order == 1

    @pytest.mark.parametrize("parser", PARSERS)
    def test_paused_subscription_skipped_but_machine_runs(self, parser):
        with MultiQueryEvaluator() as engine:
            engine.register("//v1", name="q")
            session = engine.session(parser=parser)
            engine.pause("q")
            pairs = session.feed_text("<feed><v1>x</v1>")
            engine.resume("q")
            pairs.extend(session.feed_text("<v1>y</v1></feed>"))
            pairs.extend(session.finish())
            assert [name for name, _ in pairs] == ["q"]
            # Pull-style results stay complete despite the pause.
            assert len(engine.results()["q"]) == 2

    @pytest.mark.parametrize("parser", PARSERS)
    def test_explicit_encoding_chunked_bytes(self, parser):
        expected_pairs, _ = _oneshot_pairs(parser)
        data = DOC.encode("utf-8")
        with MultiQueryEvaluator() as engine:
            _register_all(engine)
            session = engine.session(parser=parser, encoding="utf-8")
            pairs = []
            for i in range(0, len(data), 7):  # 7 never aligns with multibyte
                pairs.extend(session.feed_bytes(data[i : i + 7]))
            pairs.extend(session.finish())
            assert _pairs_key(pairs) == _pairs_key(expected_pairs)

    @pytest.mark.parametrize("parser", PARSERS)
    def test_explicit_encoding_truncated_multibyte_raises(self, parser):
        from repro.errors import EncodingError

        data = "<r>☃</r>".encode("utf-8")
        with MultiQueryEvaluator() as engine:
            engine.register("//r", name="q")
            session = engine.session(parser=parser, encoding="utf-8")
            session.feed_bytes(data[:4])  # ends inside the 3-byte snowman
            with pytest.raises(EncodingError):
                # finish() must flush the decoder and report the dangling
                # partial sequence instead of silently truncating.
                session.finish()
            assert session.failed

    def test_unknown_parser_rejected(self):
        with MultiQueryEvaluator() as engine:
            with pytest.raises(ValueError):
                engine.session(parser="nope")

    @pytest.mark.parametrize("parser", PARSERS)
    def test_incomplete_document_raises_on_finish(self, parser):
        with MultiQueryEvaluator() as engine:
            engine.register("//v1", name="q")
            session = engine.session(parser=parser)
            session.feed_text("<feed><v1>x</v1>")
            with pytest.raises(XMLSyntaxError):
                session.finish()
            assert session.failed
