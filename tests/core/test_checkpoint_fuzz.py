"""Checkpoint boundary fuzz: snapshot/restore at *every* byte offset.

The acceptance bar for the checkpoint subsystem (ISSUE 4): for any document
split at any byte offset, feed-prefix → snapshot → restore-in-a-fresh-engine
→ feed-suffix must produce ``(name, solution)`` pairs byte-identical to an
unbroken session, on both parser backends.  Snapshots round-trip through
their serialized bytes at every offset, so nothing in-memory can leak
through; a subprocess spot-check additionally proves the bytes restore in a
genuinely fresh interpreter (the service-level test drives the same path
through real ``vitex serve``/``resume`` processes).

This file is also a dedicated CI matrix step so checkpoint parity is
exercised on every supported Python version.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.checkpoint import dumps_snapshot, loads_snapshot
from repro.core.multi import MultiQueryEvaluator

#: Same flavour of nastiness as the tokenizer boundary corpus: multibyte
#: UTF-8 (2-, 3- and 4-byte), entities and character references in text and
#: attribute values, CDATA, comments, a PI, empty elements, deep nesting —
#: now with queries that exercise predicates, text() output and attributes
#: so machine stacks carry candidates and accumulated text across the split.
FUZZ_DOC = (
    '<?xml version="1.0" encoding="utf-8"?>'
    "<catalog état=\"café &amp; crème\">"
    "<entry id='e1'><name>☃ snow &lt;tag&gt; &#x10348;</name><price>12</price></entry>"
    "<entry id='e2'><name><![CDATA[raw & <unparsed>]]></name></entry>"
    "<!-- comment with ümläuts -->"
    "<?target some data?>"
    "<empty/>"
    "<deep><entry id='e3'><name>nested</name><price>5</price></entry></deep>"
    "</catalog>"
)

QUERIES = (
    ("names", "//entry/name"),
    ("texts", "//name/text()"),
    ("ids", "//entry/@id"),
    ("priced", "//entry[price]"),
    ("wild", "//deep//*"),
)

PARSERS = ("pure", "expat")


def _register(engine):
    for name, query in QUERIES:
        engine.register(query, name=name)


def _pairs_key(pairs):
    return [(name, solution.key()) for name, solution in pairs]


def _unbroken(parser, doc):
    with MultiQueryEvaluator() as engine:
        _register(engine)
        pairs = _pairs_key(engine.stream(doc, parser=parser))
        results = {name: result.keys() for name, result in engine.results().items()}
    return pairs, results


def _split_run(parser, data, offset):
    """prefix → snapshot → serialize → restore in a new engine → suffix."""
    engine = MultiQueryEvaluator()
    _register(engine)
    session = engine.session(parser=parser)
    pairs = _pairs_key(session.feed_bytes(data[:offset]))
    blob = dumps_snapshot(session.snapshot())
    engine.close()
    restored = MultiQueryEvaluator()
    session = restored.restore_session(loads_snapshot(blob))
    pairs += _pairs_key(session.feed_bytes(data[offset:]))
    pairs += _pairs_key(session.finish())
    results = {name: result.keys() for name, result in restored.results().items()}
    restored.close()
    return pairs, results, len(blob)


class TestEveryByteOffset:
    @pytest.mark.parametrize("parser", PARSERS)
    def test_snapshot_restore_at_every_offset(self, parser):
        data = FUZZ_DOC.encode("utf-8")
        expected_pairs, expected_results = _unbroken(parser, FUZZ_DOC)
        assert expected_pairs  # the corpus must actually produce solutions
        for offset in range(len(data) + 1):
            pairs, results, _ = _split_run(parser, data, offset)
            assert pairs == expected_pairs, f"pairs diverged at byte {offset}"
            assert results == expected_results, f"results diverged at byte {offset}"

    def test_utf16_document_every_offset_pure(self):
        doc = "<r><v a='é'>☃ &amp; text</v><v a='x'>plain</v></r>"
        data = doc.encode("utf-16")  # BOM + 2-byte units: splits land mid-unit
        with MultiQueryEvaluator() as engine:
            engine.register("//v/@a", name="attrs")
            engine.register("//v/text()", name="texts")
            expected = _pairs_key(engine.stream(doc, parser="pure"))
        for offset in range(len(data) + 1):
            engine = MultiQueryEvaluator()
            engine.register("//v/@a", name="attrs")
            engine.register("//v/text()", name="texts")
            session = engine.session(parser="pure")
            pairs = _pairs_key(session.feed_bytes(data[:offset]))
            blob = dumps_snapshot(session.snapshot())
            engine.close()
            restored = MultiQueryEvaluator()
            session = restored.restore_session(loads_snapshot(blob))
            pairs += _pairs_key(session.feed_bytes(data[offset:]))
            pairs += _pairs_key(session.finish())
            restored.close()
            assert pairs == expected, f"utf-16 split at byte {offset} diverged"

    @pytest.mark.parametrize("parser", PARSERS)
    def test_one_byte_feeds_with_snapshot_each_step(self, parser):
        # The torture variant: re-serialize and re-restore after *every*
        # single-byte chunk, chaining dozens of checkpoints in one parse.
        data = FUZZ_DOC.encode("utf-8")[: len(FUZZ_DOC) // 3]
        tail = FUZZ_DOC.encode("utf-8")[len(FUZZ_DOC) // 3 :]
        expected_pairs, _ = _unbroken(parser, FUZZ_DOC)
        engine = MultiQueryEvaluator()
        _register(engine)
        session = engine.session(parser=parser)
        pairs = []
        for i in range(len(data)):
            pairs += _pairs_key(session.feed_bytes(data[i : i + 1]))
            blob = dumps_snapshot(session.snapshot())
            engine.close()
            engine = MultiQueryEvaluator()
            session = engine.restore_session(loads_snapshot(blob))
        pairs += _pairs_key(session.feed_bytes(tail))
        pairs += _pairs_key(session.finish())
        engine.close()
        assert pairs == expected_pairs


_CHILD_SCRIPT = """
import json, sys
from repro.core.checkpoint import loads_snapshot
from repro.core.multi import MultiQueryEvaluator

with open(sys.argv[1], "rb") as handle:
    snapshot = loads_snapshot(handle.read())
with open(sys.argv[2], "rb") as handle:
    suffix = handle.read()
engine = MultiQueryEvaluator()
session = engine.restore_session(snapshot)
pairs = session.feed_bytes(suffix)
pairs += session.finish()
out = {
    "pairs": [[name, list(solution.key())] for name, solution in pairs],
    "results": {
        name: [list(key) for key in result.keys()]
        for name, result in engine.results().items()
    },
}
print(json.dumps(out))
"""


class TestFreshProcessRestore:
    @pytest.mark.parametrize("parser", PARSERS)
    def test_subprocess_restore_matches_unbroken(self, parser, tmp_path):
        """Spot-check a handful of offsets through a real fresh interpreter."""
        data = FUZZ_DOC.encode("utf-8")
        expected_pairs, expected_results = _unbroken(parser, FUZZ_DOC)
        offsets = [1, len(data) // 3, len(data) // 2, len(data) - 7]
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            "src",
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        for offset in offsets:
            engine = MultiQueryEvaluator()
            _register(engine)
            session = engine.session(parser=parser)
            prefix_pairs = _pairs_key(session.feed_bytes(data[:offset]))
            snapshot_file = tmp_path / f"snap-{parser}-{offset}.json"
            snapshot_file.write_bytes(dumps_snapshot(session.snapshot()))
            engine.close()
            suffix_file = tmp_path / f"suffix-{parser}-{offset}.bin"
            suffix_file.write_bytes(data[offset:])
            completed = subprocess.run(
                [sys.executable, "-c", _CHILD_SCRIPT, str(snapshot_file), str(suffix_file)],
                capture_output=True,
                text=True,
                env=env,
                timeout=60,
            )
            assert completed.returncode == 0, completed.stderr
            out = json.loads(completed.stdout)
            child_pairs = [(name, tuple(key)) for name, key in out["pairs"]]
            assert prefix_pairs + child_pairs == expected_pairs
            child_results = {
                name: [tuple(key) for key in keys]
                for name, keys in out["results"].items()
            }
            assert child_results == expected_results
