"""Tests for the optional eager-emission optimisation.

Eager emission must never change the answer set; it may only change *when*
solutions are emitted (earlier) and how many candidates are held (fewer).
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_machine
from repro.core.engine import TwigMEvaluator, evaluate
from repro.datasets.figures import FIGURE_1_QUERY, FIGURE_1_XML
from repro.datasets.newsfeed import NewsFeedConfig, NewsFeedGenerator
from repro.datasets.randomtree import RandomTreeConfig, RandomTreeGenerator
from repro.xmlstream.tokenizer import tokenize
from repro.xpath.generator import QueryGenerator, QueryGeneratorConfig


class TestBuilderAnnotations:
    def test_unconditional_flags(self):
        machine = build_machine("//a[b]//c//d")
        by_label = {node.label: node for node in machine.nodes}
        assert not by_label["a"].is_unconditional          # has predicate [b]
        assert by_label["b"].is_unconditional
        assert by_label["c"].is_unconditional
        assert by_label["d"].is_unconditional

    def test_ancestors_unconditional_chain(self):
        machine = build_machine("//a[b]//c//d")
        by_label = {node.label: node for node in machine.nodes}
        assert by_label["a"].ancestors_unconditional        # root: no ancestors
        assert by_label["b"].ancestors_unconditional is False  # parent a has predicate
        assert by_label["c"].ancestors_unconditional is False
        assert by_label["d"].ancestors_unconditional is False

    def test_fully_unconstrained_chain(self):
        machine = build_machine("/feed//update//price")
        assert all(node.ancestors_unconditional for node in machine.nodes)

    def test_value_test_makes_node_conditional(self):
        machine = build_machine("//a[.='x']//b")
        by_label = {node.label: node for node in machine.nodes}
        assert not by_label["a"].is_unconditional
        assert not by_label["b"].ancestors_unconditional


class TestAnswerEquivalence:
    QUERIES = [
        "//section[author]//table[position]//cell",
        "//section//table//cell",
        "/book//cell",
        "//table[position]",
        "//cell",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_answers_on_figure1(self, query):
        lazy = evaluate(query, FIGURE_1_XML).keys()
        eager = evaluate(query, FIGURE_1_XML, eager_emission=True).keys()
        assert lazy == eager

    def test_same_answers_on_random_documents(self):
        query_gen = QueryGenerator(
            config=QueryGeneratorConfig(vocabulary=("a", "b", "c"), attributes=("id",)),
            seed=17,
        )
        for seed in range(30):
            document = RandomTreeGenerator(
                config=RandomTreeConfig(vocabulary=("a", "b", "c")), seed=seed
            ).text()
            query = query_gen.generate_expression()
            lazy = evaluate(query, document).keys()
            eager = evaluate(query, document, eager_emission=True).keys()
            assert lazy == eager, (query, document)

    def test_same_answers_on_newsfeed(self):
        generator = NewsFeedGenerator(NewsFeedConfig(updates=150), seed=3)
        document = generator.text()
        query = generator.CANONICAL_QUERY
        assert (
            evaluate(query, document).keys()
            == evaluate(query, document, eager_emission=True).keys()
        )


class TestEmissionTiming:
    def test_eager_emits_before_root_closes(self):
        # /feed//update: with lazy emission everything waits for </feed>;
        # with eager emission each update is emitted at its own end tag.
        generator = NewsFeedGenerator(NewsFeedConfig(updates=50), seed=4)
        document = generator.text()
        query = "/feed//update[quote]"

        def first_emission_index(eager: bool) -> int:
            evaluator = TwigMEvaluator(query, eager_emission=eager)
            for index, event in enumerate(tokenize(document)):
                if evaluator.feed(event):
                    return index
            return -1

        events_total = sum(1 for _ in tokenize(document))
        lazy_first = first_emission_index(False)
        eager_first = first_emission_index(True)
        assert eager_first < lazy_first
        assert lazy_first >= events_total - 3  # lazy: only when the root closes
        assert eager_first < events_total * 0.2

    def test_eager_reduces_peak_candidates(self):
        generator = NewsFeedGenerator(NewsFeedConfig(updates=300), seed=4)
        document = generator.text()
        query = "/feed//update[quote]"

        lazy = TwigMEvaluator(query)
        lazy.evaluate(document)
        eager = TwigMEvaluator(query, eager_emission=True)
        eager.evaluate(document)

        assert len(lazy.collector.solutions()) == len(eager.collector.solutions())
        assert eager.statistics.peak_candidate_count < lazy.statistics.peak_candidate_count

    def test_eager_does_not_apply_under_predicated_ancestors(self):
        # //section[author]//cell: the section predicate may only be satisfied
        # after the cell closes, so eager emission must not fire early there.
        document = FIGURE_1_XML
        lazy = evaluate(FIGURE_1_QUERY, document).keys()
        eager = evaluate(FIGURE_1_QUERY, document, eager_emission=True).keys()
        assert lazy == eager == [("element", 7)]
