"""Containment sharing: one anchor machine serving a refinement family.

The contract under ``containment_sharing=True`` (see the
:mod:`repro.core.multi` docstring): per-subscription solution *sets*,
``delivered`` counters and :meth:`results` are identical to private
machines; only the interleaving of the ``(name, solution)`` stream across
subscriptions may differ, because a family anchor emits at the output
element's own end tag.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import dumps_snapshot, loads_snapshot
from repro.core.multi import MultiQueryEvaluator
from repro.errors import EngineError, XPathSyntaxError
from repro.xmlstream.sax import iter_events

#: A refinement family of ``//c``: every query is linear, predicate-free and
#: selects a ``c`` element, so all five share one anchor machine.
FAMILY_QUERIES = ["//a//c", "//a/c", "/r//c", "//b/c", "//r/a//c"]

#: Four ``c`` elements with distinct ancestor chains:
#: c1=(r,a,c)  c2=(r,b,c)  c3=(r,a,b,c)  c4=(r,c).
DOC = (
    "<r><a><c>1</c></a><b><c>2</c></b>"
    "<a><b><c>3</c></b></a><c>4</c></r>"
)


def _run(queries, document, sharing, parser="pure"):
    """Evaluate ``queries``; return (result keys, delivered) per name."""
    with MultiQueryEvaluator(containment_sharing=sharing) as evaluator:
        subscriptions = [
            evaluator.subscribe(query, name=f"q{i}")
            for i, query in enumerate(queries)
        ]
        results = evaluator.evaluate(document, parser=parser)
        keys = {name: results[name].keys() for name in results}
        delivered = {s.name: s.delivered for s in subscriptions}
    return keys, delivered


class TestParity:
    @pytest.mark.parametrize("parser", ["pure", "expat"])
    def test_family_matches_private_machines(self, parser):
        keys_on, delivered_on = _run(FAMILY_QUERIES, DOC, True, parser)
        keys_off, delivered_off = _run(FAMILY_QUERIES, DOC, False, parser)
        assert keys_on == keys_off
        assert delivered_on == delivered_off

    def test_event_pipeline_per_subscription_pair_sets_match(self):
        streams = {}
        for sharing in (True, False):
            with MultiQueryEvaluator(containment_sharing=sharing) as evaluator:
                for i, query in enumerate(FAMILY_QUERIES):
                    evaluator.subscribe(query, name=f"q{i}")
                pairs = list(evaluator.stream(list(iter_events(DOC))))
            grouped = {}
            for name, solution in pairs:
                grouped.setdefault(name, []).append(solution.key())
            streams[sharing] = {
                name: sorted(keys) for name, keys in grouped.items()
            }
        assert streams[True] == streams[False]

    def test_mixed_family_and_private_queries(self):
        queries = FAMILY_QUERIES + ["//a[c]", "//c/text()", "//b"]
        keys_on, delivered_on = _run(queries, DOC, True)
        keys_off, delivered_off = _run(queries, DOC, False)
        assert keys_on == keys_off
        assert delivered_on == delivered_off


class TestSharingStructure:
    def test_refinement_family_shares_one_anchor_machine(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            for i, query in enumerate(FAMILY_QUERIES):
                evaluator.subscribe(query, name=f"q{i}")
            stats = evaluator.stats()
            assert stats.subscriptions == len(FAMILY_QUERIES)
            assert stats.machines == 1
            assert stats.families == 1
            assert stats.containment_shared == len(FAMILY_QUERIES)

    def test_sharing_off_keeps_one_machine_per_shape(self):
        with MultiQueryEvaluator(containment_sharing=False) as evaluator:
            for i, query in enumerate(FAMILY_QUERIES):
                evaluator.subscribe(query, name=f"q{i}")
            stats = evaluator.stats()
            assert stats.machines == len(FAMILY_QUERIES)
            assert stats.families == 0
            assert stats.containment_shared == 0

    def test_ineligible_queries_fall_back_to_fingerprint_machines(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            evaluator.subscribe("//a//c", name="fam")
            evaluator.subscribe("//a[x]//c", name="pred")
            evaluator.subscribe("//a//c/@id", name="attr")
            stats = evaluator.stats()
            assert stats.machines == 3  # one anchor + two private
            assert stats.families == 1
            assert stats.containment_shared == 1

    def test_identical_members_pool_into_one_group(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            one = evaluator.subscribe("//a//c", name="one")
            two = evaluator.subscribe("//a//c", name="two")
            assert one.runtime is two.runtime
            assert one.group is two.group
            assert one.group is not None

    def test_mid_stream_member_gets_private_machine(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            evaluator.subscribe("//a//c", name="early")
            events = list(iter_events(DOC))
            for event in events[: len(events) // 2]:
                evaluator.push(event)
            late = evaluator.subscribe("//b/c", name="late")
            assert late.group is None
            assert evaluator.stats().machines == 2
            for event in events[len(events) // 2 :]:
                evaluator.push(event)


class TestLifecycle:
    def test_unregister_member_keeps_anchor_for_siblings(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            evaluator.subscribe("//a//c", name="one")
            evaluator.subscribe("//b/c", name="two")
            assert evaluator.stats().machines == 1
            evaluator.unregister("one")
            # The sibling shape still rides the anchor machine.
            assert evaluator.stats().machines == 1
            results = evaluator.evaluate(DOC)
            assert set(results) == {"two"}
            assert len(results["two"]) == 2  # c2=(r,b,c) and c3=(r,a,b,c)
            evaluator.unregister("two")
            stats = evaluator.stats()
            assert stats.machines == 0
            assert stats.trie_nodes == 0

    def test_unregister_duplicate_member_keeps_group(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            evaluator.subscribe("//a//c", name="one")
            kept = evaluator.subscribe("//a//c", name="two")
            evaluator.unregister("one")
            assert evaluator.stats().machines == 1
            assert kept.group.subscribers == [kept]
            results = evaluator.evaluate(DOC)
            assert len(results["two"]) == 2  # c1 and c3

    def test_paused_family_member_keeps_complete_results(self):
        seen = []
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            evaluator.subscribe("//a//c", name="one", callback=seen.append)
            evaluator.subscribe("/r//c", name="two")
            evaluator.pause("one")
            pairs = list(evaluator.stream(DOC, parser="pure"))
            names = {name for name, _ in pairs}
            assert names == {"two"}
            assert not seen
            subscriptions = {s.name: s for s in evaluator.subscriptions}
            assert subscriptions["one"].delivered == 0
            # The anchor kept running: pull-style results stay complete.
            assert len(evaluator.results()["one"]) == 2

    def test_reset_allows_second_stream(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            evaluator.subscribe("//a//c", name="one")
            first = evaluator.evaluate(DOC)
            evaluator.reset()
            second = evaluator.evaluate(DOC)
            assert first["one"].keys() == second["one"].keys()
            assert len(first["one"]) == 2


class TestSubscribeMany:
    def test_batch_registers_all_and_shares(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            subscriptions = evaluator.subscribe_many(
                [("//a//c", "one"), "//b/c", ("/r//c", "three")]
            )
            assert [s.name for s in subscriptions] == ["one", "q0", "three"]
            assert evaluator.stats().machines == 1

    def test_batch_callback_applies_to_every_member(self):
        seen = []
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            evaluator.subscribe_many(["//a//c", "//b/c"], callback=seen.append)
            evaluator.evaluate(DOC)
            assert len(seen) == 4  # //a//c -> c1,c3 ; //b/c -> c2,c3

    def test_batch_rolls_back_on_duplicate_name(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            evaluator.subscribe("//x/y", name="taken")
            with pytest.raises(EngineError):
                evaluator.subscribe_many(
                    [("//a//c", "fresh"), ("//b/c", "taken")]
                )
            assert {s.name for s in evaluator.subscriptions} == {"taken"}
            assert evaluator.stats().machines == 1

    def test_batch_rolls_back_on_syntax_error(self):
        with MultiQueryEvaluator(containment_sharing=True) as evaluator:
            with pytest.raises(XPathSyntaxError):
                evaluator.subscribe_many(["//a//c", "//b/c", "///"])
            assert not evaluator.subscriptions
            assert evaluator.stats().machines == 0
            assert evaluator.stats().trie_nodes == 0


class TestCheckpoint:
    def test_mid_stream_snapshot_roundtrips_family(self):
        evaluator = MultiQueryEvaluator(containment_sharing=True)
        evaluator.subscribe("//a//c", name="one")
        evaluator.subscribe("//b/c", name="two")
        session = evaluator.session(parser="pure")
        split = DOC.index("<a><b>")  # after c1 and c2 delivered
        prefix_pairs = session.feed_text(DOC[:split])
        snapshot = session.snapshot()

        fresh = MultiQueryEvaluator(containment_sharing=True)
        restored = fresh.restore_session(loads_snapshot(dumps_snapshot(snapshot)))
        assert fresh.stats().machines == 1
        assert fresh.stats().families == 1
        suffix_pairs = restored.feed_text(DOC[split:]) + restored.finish()

        with MultiQueryEvaluator(containment_sharing=True) as unbroken:
            unbroken.subscribe("//a//c", name="one")
            unbroken.subscribe("//b/c", name="two")
            expected = list(unbroken.stream(DOC, parser="pure"))
            expected_results = {
                name: unbroken.results()[name].keys() for name in ("one", "two")
            }
        combined = [
            (name, solution.key())
            for name, solution in prefix_pairs + suffix_pairs
        ]
        assert combined == [
            (name, solution.key()) for name, solution in expected
        ]
        assert {
            name: fresh.results()[name].keys() for name in ("one", "two")
        } == expected_results
        fresh.close()
        evaluator.close()


# --------------------------------------------------------------------------
# Property-based parity: random linear-path families over random documents.
# --------------------------------------------------------------------------

_LABELS = ("a", "b", "c", "d")


@st.composite
def _documents(draw):
    """A small random tree (depth <= 4) under a fixed ``r`` root."""

    def element(depth):
        tag = draw(st.sampled_from(_LABELS))
        if depth >= 3 or draw(st.booleans()):
            return f"<{tag}>x</{tag}>"
        children = "".join(
            element(depth + 1) for _ in range(draw(st.integers(1, 3)))
        )
        return f"<{tag}>{children}</{tag}>"

    body = "".join(element(1) for _ in range(draw(st.integers(1, 4))))
    return f"<r>{body}</r>"


@st.composite
def _linear_queries(draw):
    """A batch of containment-eligible queries (2-4 linear steps each)."""
    queries = []
    for _ in range(draw(st.integers(2, 6))):
        steps = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["/", "//"]),
                    st.sampled_from(_LABELS + ("r", "*")),
                ),
                min_size=2,
                max_size=4,
            )
        )
        queries.append("".join(axis + label for axis, label in steps))
    return queries


class TestPropertyParity:
    @settings(max_examples=30, deadline=None)
    @given(document=_documents(), queries=_linear_queries())
    def test_sharing_never_changes_answers(self, document, queries):
        keys_on, delivered_on = _run(queries, document, True)
        keys_off, delivered_off = _run(queries, document, False)
        assert keys_on == keys_off
        assert delivered_on == delivered_off

    @settings(max_examples=15, deadline=None)
    @given(document=_documents(), queries=_linear_queries())
    def test_expat_backend_agrees_with_pure(self, document, queries):
        keys_pure, _ = _run(queries, document, True, parser="pure")
        keys_expat, _ = _run(queries, document, True, parser="expat")
        assert keys_pure == keys_expat
