"""Unit tests for the TwigMachine structure and bookkeeping helpers."""

from __future__ import annotations

from repro.core.builder import build_machine
from repro.core.engine import TwigMEvaluator
from repro.xmlstream.tokenizer import tokenize


class TestMachineQueries:
    def test_size_matches_element_query_nodes(self):
        assert build_machine("//a[b]//c").size == 3
        assert build_machine("//a/@id").size == 1
        assert build_machine("//a[@id]/text()").size == 1

    def test_text_nodes_index(self):
        machine = build_machine("//a[b='x']//c[.='y']/text()")
        labels = sorted(node.label for node in machine.text_nodes)
        assert labels == ["b", "c"]

    def test_total_live_entries_and_candidates(self):
        machine = build_machine("//a//b")
        assert machine.total_live_entries() == 0
        assert machine.total_live_candidates() == 0
        assert machine.stacks_empty()

    def test_reset_clears_stacks(self):
        evaluator = TwigMEvaluator("//a//b")
        events = list(tokenize("<a><b></b></a>"))
        # Feed only the prefix up to (and including) <b> so stacks stay populated.
        for event in events[:3]:
            evaluator.feed(event)
        assert not evaluator.machine.stacks_empty()
        evaluator.machine.reset()
        assert evaluator.machine.stacks_empty()

    def test_nodes_matching_tags_and_wildcards(self):
        machine = build_machine("//a[*]//b")
        assert [node.label for node in machine.nodes_matching("a")] == ["a", "*"]
        assert [node.label for node in machine.nodes_matching("b")] == ["*", "b"]
        assert [node.label for node in machine.nodes_matching("zzz")] == ["*"]

    def test_describe_marks_roles(self):
        text = build_machine("//a[@lang]//b[c]/@id").describe()
        assert "attribute predicates: @lang" in text
        assert "attribute output: @id" in text
        assert "predicate branch" in text


class TestMachineDuringExecution:
    def test_live_entries_track_open_elements(self):
        evaluator = TwigMEvaluator("//a//a")
        events = list(tokenize("<a><a><a></a></a></a>"))
        live_after_each = []
        for event in events:
            evaluator.feed(event)
            live_after_each.append(evaluator.machine.total_live_entries())
        # After the three start tags: 1 (root a), then 1+2, then 1+2... the
        # exact values depend on the machine shape, but the peak must exceed
        # the value after everything closed (0).
        assert max(live_after_each) >= 3
        assert live_after_each[-1] == 0

    def test_statistics_live_counters_match_machine_state(self):
        evaluator = TwigMEvaluator("//a[b]//c")
        events = list(tokenize("<a><b/><c/><a><c/></a></a>"))
        for event in events:
            evaluator.feed(event)
            assert evaluator.statistics.live_entries == evaluator.machine.total_live_entries()
            assert (
                evaluator.statistics.live_candidates
                == evaluator.machine.total_live_candidates()
            )
