"""Unit tests for the TwigM transition functions (push / bookkeep / pop)."""

from __future__ import annotations

from repro.core.builder import build_machine
from repro.core.results import ResultCollector
from repro.core.statistics import EngineStatistics
from repro.core.transitions import (
    process_characters,
    process_end_element,
    process_start_element,
)
from repro.xmlstream.events import Characters, EndElement, StartElement


class Driver:
    """Small helper that drives a machine with hand-built events."""

    def __init__(self, query):
        self.machine = build_machine(query)
        self.statistics = EngineStatistics()
        self.collector = ResultCollector()
        self._order = 0
        self._position = 0
        self._level = 0
        self._open = []

    def start(self, tag, **attributes):
        self._level += 1
        event = StartElement(
            position=self._position,
            name=tag,
            level=self._level,
            attributes=tuple(attributes.items()),
        )
        self._position += 1
        self._open.append(tag)
        process_start_element(
            self.machine,
            event.name,
            event.level,
            event.attributes,
            event.line,
            self._order,
            self.statistics,
        )
        self._order += 1
        return event

    def text(self, content):
        event = Characters(position=self._position, text=content, level=self._level)
        self._position += 1
        process_characters(self.machine, event.text, event.level, self.statistics)

    def end(self):
        tag = self._open.pop()
        event = EndElement(position=self._position, name=tag, level=self._level)
        self._position += 1
        emitted = process_end_element(
            self.machine, event.name, event.level, self.statistics, self.collector
        )
        self._level -= 1
        return emitted

    def node(self, label):
        return next(node for node in self.machine.nodes if node.label == label)


class TestStartElementTransitions:
    def test_descendant_root_pushes_at_any_level(self):
        driver = Driver("//b")
        driver.start("a")
        driver.start("b")
        assert len(driver.node("b").stack) == 1
        assert driver.node("b").stack.top.level == 2

    def test_child_root_only_pushes_document_element(self):
        driver = Driver("/b")
        driver.start("a")
        driver.start("b")
        assert len(driver.node("b").stack) == 0

    def test_child_axis_requires_parent_on_top(self):
        driver = Driver("//a/b")
        driver.start("a")
        driver.start("x")
        driver.start("b")  # parent of b is x, not a
        assert len(driver.node("b").stack) == 0

    def test_child_axis_pushes_when_parent_matches(self):
        driver = Driver("//a/b")
        driver.start("a")
        driver.start("b")
        assert len(driver.node("b").stack) == 1

    def test_descendant_axis_requires_proper_ancestor(self):
        driver = Driver("//a//a")
        driver.start("a")
        # The same element must not satisfy its own descendant edge.
        assert len(driver.node("a").stack) == 1  # machine root 'a'
        inner = driver.machine.nodes[1]
        assert inner.label == "a"
        assert len(inner.stack) == 0
        driver.start("a")
        assert len(inner.stack) == 1

    def test_same_element_can_sit_on_multiple_stacks(self):
        driver = Driver("//a//a")
        driver.start("a")
        driver.start("a")
        total = sum(len(node.stack) for node in driver.machine.nodes)
        assert total == 3  # outer on root, inner on both root and child

    def test_attribute_predicate_resolved_at_push(self):
        driver = Driver("//a[@id]")
        driver.start("a", id="7")
        entry = driver.node("a").stack.top
        assert entry.satisfied
        driver2 = Driver("//a[@id]")
        driver2.start("a")
        assert not driver2.node("a").stack.top.satisfied

    def test_attribute_output_candidate_created_at_push(self):
        driver = Driver("//a/@id")
        driver.start("a", id="7")
        entry = driver.node("a").stack.top
        assert entry.candidate_count == 1
        assert list(entry.candidates.values())[0].value == "7"

    def test_wildcard_pushes_for_every_tag(self):
        driver = Driver("//*")
        driver.start("anything")
        driver.start("other")
        assert len(driver.node("*").stack) == 2


class TestEndElementTransitions:
    def test_pop_only_at_matching_level(self):
        driver = Driver("//a")
        driver.start("a")
        driver.start("a")
        driver.end()
        assert len(driver.node("a").stack) == 1
        assert driver.node("a").stack.top.level == 1

    def test_predicate_flag_propagates_to_ancestor_entries(self):
        driver = Driver("//a[.//b]")
        driver.start("a")
        driver.start("a")
        driver.start("b")
        driver.end()  # close b → both open 'a' entries gain the flag (descendant axis)
        stack = driver.node("a").stack
        assert len(stack.entries) == 2
        assert all(entry.satisfied for entry in stack.entries)

    def test_child_axis_flag_only_reaches_direct_parent(self):
        driver = Driver("//a[b]")
        # Query predicate uses the child axis: only the immediate parent
        # 'a' entry may be satisfied by closing b.
        driver.start("a")          # level 1
        driver.start("a")          # level 2
        driver.start("b")          # level 3, child of the level-2 a
        driver.end()               # </b>
        entries = driver.node("a").stack.entries
        assert not entries[0].satisfied   # level-1 entry: b is not its child
        assert entries[1].satisfied       # level-2 entry: direct parent

    def test_failed_predicate_discards_candidates(self):
        driver = Driver("//a[flag]//c")
        driver.start("a")
        driver.start("c")
        emitted = driver.end()    # </c> — candidate propagates to the open a entry
        assert emitted == []
        emitted = driver.end()    # </a> — no flag was ever seen, candidate dies
        assert emitted == []
        assert len(driver.collector) == 0

    def test_candidates_emitted_when_root_satisfied(self):
        driver = Driver("//a[flag]//c")
        driver.start("a")
        driver.start("c")
        driver.end()              # </c>
        driver.start("flag")
        driver.end()              # </flag>
        emitted = driver.end()    # </a> — flag satisfied, candidate emitted
        assert len(emitted) == 1
        assert emitted[0].node.tag == "c"

    def test_value_test_checked_at_pop(self):
        driver = Driver("//a[b='yes']")
        driver.start("a")
        driver.start("b")
        driver.text("no")
        driver.end()
        emitted = driver.end()
        assert emitted == []

        driver = Driver("//a[b='yes']")
        driver.start("a")
        driver.start("b")
        driver.text("yes")
        driver.end()
        emitted = driver.end()
        assert len(emitted) == 1

    def test_text_output_candidate(self):
        driver = Driver("//a/text()")
        driver.start("a")
        driver.text("hello ")
        driver.start("b")
        driver.text("nested")
        driver.end()
        driver.text("world")
        emitted = driver.end()
        assert len(emitted) == 1
        # Only the direct text of <a> is the text() result, not <b>'s.
        assert emitted[0].value == "hello world"


class TestCharactersTransitions:
    def test_text_ignored_without_collecting_nodes(self):
        driver = Driver("//a")
        driver.start("a")
        driver.text("irrelevant")
        entry = driver.node("a").stack.top
        assert entry.string_parts is None

    def test_string_value_includes_descendant_text(self):
        driver = Driver("//a[.='xy']")
        driver.start("a")
        driver.text("x")
        driver.start("b")
        driver.text("y")
        driver.end()
        emitted = driver.end()
        assert len(emitted) == 1

    def test_statistics_counters(self):
        driver = Driver("//a[b]")
        driver.start("a")
        driver.start("b")
        driver.end()
        driver.end()
        stats = driver.statistics
        assert stats.pushes == 2
        assert stats.pops == 2
        assert stats.flags_set == 1
        assert stats.live_entries == 0
