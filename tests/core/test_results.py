"""Unit tests for the result model (NodeRef, Solution, collectors)."""

from __future__ import annotations

from repro.core.results import (
    NodeRef,
    ResultCollector,
    ResultSet,
    Solution,
    SolutionKind,
)


def element_solution(order, tag="a", level=1, line=None):
    return Solution(kind=SolutionKind.ELEMENT, node=NodeRef(order=order, tag=tag, level=level, line=line))


class TestNodeRef:
    def test_label_with_line(self):
        assert NodeRef(order=3, tag="table", level=5, line=5).label() == "table_5"

    def test_label_without_line(self):
        assert NodeRef(order=3, tag="table", level=5).label() == "table#3"


class TestSolution:
    def test_element_key(self):
        assert element_solution(4).key() == ("element", 4)

    def test_attribute_key_includes_name(self):
        ref = NodeRef(order=2, tag="a", level=1)
        solution = Solution(kind=SolutionKind.ATTRIBUTE, node=ref, attribute="id", value="1")
        assert solution.key() == ("attribute", 2, "id")

    def test_text_key(self):
        ref = NodeRef(order=2, tag="a", level=1)
        assert Solution(kind=SolutionKind.TEXT, node=ref, value="x").key() == ("text", 2)

    def test_describe_variants(self):
        ref = NodeRef(order=2, tag="a", level=1, line=9)
        assert "a_9" in element_solution(2, line=9).describe()
        attr = Solution(kind=SolutionKind.ATTRIBUTE, node=ref, attribute="id", value="1")
        assert "@id" in attr.describe()
        text = Solution(kind=SolutionKind.TEXT, node=ref, value="hello")
        assert "hello" in text.describe()

    def test_order_key_sorts_by_document_order(self):
        solutions = [element_solution(5), element_solution(1), element_solution(3)]
        ordered = sorted(solutions, key=Solution.order_key)
        assert [s.node.order for s in ordered] == [1, 3, 5]


class TestResultCollector:
    def test_deduplicates_by_key(self):
        collector = ResultCollector()
        assert collector.add(element_solution(1))
        assert not collector.add(element_solution(1))
        assert len(collector) == 1
        assert collector.emitted == 2

    def test_extend_returns_new_only(self):
        collector = ResultCollector()
        new = collector.extend([element_solution(1), element_solution(1), element_solution(2)])
        assert [s.node.order for s in new] == [1, 2]

    def test_contains(self):
        collector = ResultCollector()
        collector.add(element_solution(1))
        assert element_solution(1) in collector
        assert element_solution(2) not in collector

    def test_in_document_order(self):
        collector = ResultCollector()
        collector.add(element_solution(9))
        collector.add(element_solution(2))
        ordered = collector.in_document_order()
        assert [s.node.order for s in ordered] == [2, 9]

    def test_keys_sorted(self):
        collector = ResultCollector()
        collector.add(element_solution(9))
        collector.add(element_solution(2))
        assert collector.keys() == [("element", 2), ("element", 9)]


class TestResultSet:
    def test_basic_accessors(self):
        collector = ResultCollector()
        collector.add(element_solution(3, tag="cell", line=8))
        result = ResultSet.from_collector("//cell", collector)
        assert len(result) == 1
        assert bool(result)
        assert result.keys() == [("element", 3)]
        assert result.elements()[0].tag == "cell"

    def test_empty_result_set_is_falsy(self):
        assert not ResultSet(query="//x", solutions=[])

    def test_values_in_document_order(self):
        ref1 = NodeRef(order=5, tag="a", level=1)
        ref2 = NodeRef(order=1, tag="a", level=1)
        result = ResultSet(
            query="//a/@id",
            solutions=[
                Solution(kind=SolutionKind.ATTRIBUTE, node=ref1, attribute="id", value="later"),
                Solution(kind=SolutionKind.ATTRIBUTE, node=ref2, attribute="id", value="earlier"),
            ],
        )
        assert result.values() == ["earlier", "later"]

    def test_describe_lists_solutions(self):
        result = ResultSet(query="//a", solutions=[element_solution(1, tag="a", line=2)])
        text = result.describe()
        assert "1 solution" in text
        assert "a_2" in text
