"""Unit tests for the multi-query (indexed subscription) evaluator."""

from __future__ import annotations

import pytest

from repro.core.engine import TwigMEvaluator, evaluate
from repro.core.multi import MultiQueryEvaluator, evaluate_many
from repro.datasets.newsfeed import NewsFeedConfig, NewsFeedGenerator
from repro.errors import EngineError
from repro.xmlstream.sax import iter_events
from repro.xmlstream.tokenizer import tokenize


QUERIES = ["//book/@id", "//book[author]/title", "//journal//title/text()"]


def reference_pairs(queries, document, parser="native"):
    """The pre-index reference semantics: feed every event to every machine.

    This is the per-machine loop the indexed engine replaced; the dispatch
    index must produce byte-identical ``(name, solution)`` streams.
    """
    evaluators = [(f"q{i}", TwigMEvaluator(q)) for i, q in enumerate(queries)]
    pairs = []
    for event in iter_events(document, parser=parser):
        for name, evaluator in evaluators:
            for solution in evaluator.feed(event):
                pairs.append((name, solution))
    return pairs


class TestRegistration:
    def test_register_returns_subscription(self):
        evaluator = MultiQueryEvaluator()
        subscription = evaluator.register("//a", name="mine")
        assert subscription.name == "mine"
        assert subscription.query == "//a"
        assert len(evaluator) == 1

    def test_auto_names_are_unique(self):
        evaluator = MultiQueryEvaluator()
        first = evaluator.register("//a")
        second = evaluator.register("//b")
        assert first.name != second.name

    def test_duplicate_name_rejected(self):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//a", name="dup")
        with pytest.raises(EngineError):
            evaluator.register("//b", name="dup")

    def test_feed_without_queries_rejected(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        with pytest.raises(EngineError):
            evaluator.feed(next(iter(tokenize(simple_doc))))


class TestSharedPassCorrectness:
    def test_results_match_individual_evaluation(self, simple_doc):
        combined = evaluate_many(QUERIES, simple_doc)
        for query in QUERIES:
            assert combined[query].keys() == evaluate(query, simple_doc).keys()

    def test_results_by_subscription_name(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books")
        evaluator.register("//journal", name="journals")
        results = evaluator.evaluate(simple_doc)
        assert len(results["books"]) == 2
        assert len(results["journals"]) == 1

    def test_statistics_per_subscription(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books")
        evaluator.register("//title", name="titles")
        evaluator.evaluate(simple_doc)
        stats = evaluator.statistics()
        assert stats["books"]["solutions_distinct"] == 2
        assert stats["titles"]["solutions_distinct"] == 3

    def test_incremental_stream_pairs(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book/@id", name="ids")
        evaluator.register("//author/text()", name="authors")
        pairs = list(evaluator.stream(simple_doc))
        names = {name for name, _ in pairs}
        assert names == {"ids", "authors"}
        assert len([p for p in pairs if p[0] == "ids"]) == 2
        assert len([p for p in pairs if p[0] == "authors"]) == 3

    def test_callbacks_invoked(self, simple_doc):
        seen = []
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book/@id", name="ids", callback=seen.append)
        evaluator.evaluate(simple_doc)
        assert sorted(s.value for s in seen) == ["b1", "b2"]
        assert evaluator.subscriptions[0].delivered == 2

    def test_reset_allows_second_stream(self, simple_doc, recursive_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//b", name="bs")
        first = evaluator.evaluate(recursive_doc)
        evaluator.reset()
        second = evaluator.evaluate(simple_doc)
        assert len(first["bs"]) == 5
        assert len(second["bs"]) == 0

    def test_register_after_run_rejected(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book")
        evaluator.evaluate(simple_doc)
        with pytest.raises(EngineError):
            evaluator.register("//title")


class TestIndexedDispatchParity:
    """The indexed engine must match the per-machine reference loop exactly."""

    @pytest.mark.parametrize("parser", ["pure", "expat"])
    def test_stream_pairs_byte_identical(self, simple_doc, parser):
        evaluator = MultiQueryEvaluator()
        for index, query in enumerate(QUERIES):
            evaluator.register(query, name=f"q{index}")
        pairs = list(evaluator.stream(simple_doc, parser=parser))
        assert pairs == reference_pairs(QUERIES, simple_doc, parser=parser)

    @pytest.mark.parametrize("parser", ["pure", "expat"])
    def test_recursive_document_parity(self, recursive_doc, parser):
        queries = ["//a//b", "//a[b]/c", "//a[@key='1']//b/text()", "//*[c]"]
        evaluator = MultiQueryEvaluator()
        for index, query in enumerate(queries):
            evaluator.register(query, name=f"q{index}")
        pairs = list(evaluator.stream(recursive_doc, parser=parser))
        assert pairs == reference_pairs(queries, recursive_doc, parser=parser)

    @pytest.mark.parametrize("parser", ["pure", "expat"])
    def test_fused_evaluate_matches_stream(self, simple_doc, parser):
        streamed = MultiQueryEvaluator()
        fused = MultiQueryEvaluator()
        for index, query in enumerate(QUERIES):
            streamed.register(query, name=f"q{index}")
            fused.register(query, name=f"q{index}")
        pairs = list(streamed.stream(simple_doc, parser=parser))
        results = fused.evaluate(simple_doc, parser=parser)
        for index in range(len(QUERIES)):
            name = f"q{index}"
            assert results[name].keys() == sorted(
                {s.key() for n, s in pairs if n == name}
            )


class TestSubscriptionLifecycle:
    def test_unregister_removes_subscription(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books")
        evaluator.register("//title", name="titles")
        evaluator.unregister("titles")
        assert len(evaluator) == 1
        assert evaluator.machine_count == 1
        results = evaluator.evaluate(simple_doc)
        assert set(results) == {"books"}

    def test_unregister_unknown_name_rejected(self):
        evaluator = MultiQueryEvaluator()
        with pytest.raises(EngineError):
            evaluator.unregister("ghost")

    def test_unregister_mid_stream(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books")
        evaluator.register("//author", name="authors")
        pairs = []
        for index, event in enumerate(tokenize(simple_doc)):
            pairs.extend(evaluator.feed(event))
            if index == 12:  # after the first book closed
                evaluator.unregister("authors")
        names = [name for name, _ in pairs]
        assert names.count("books") == 2
        # Only deliveries up to the unregistration point remain.
        assert 0 < names.count("authors") < 3

    def test_unregister_keeps_shared_machine_for_remaining_duplicate(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="first")
        evaluator.register("//book", name="second")
        assert evaluator.machine_count == 1
        evaluator.unregister("first")
        assert evaluator.machine_count == 1
        results = evaluator.evaluate(simple_doc)
        assert len(results["second"]) == 2

    def test_register_mid_stream_sees_stream_suffix(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="early")
        late = None
        pairs = []
        for index, event in enumerate(tokenize(simple_doc)):
            pairs.extend(evaluator.feed(event))
            if index == 12 and late is None:  # after the first book closed
                late = evaluator.register("//book", name="late")
        by_name = {}
        for name, solution in pairs:
            by_name.setdefault(name, []).append(solution)
        assert len(by_name["early"]) == 2
        # The late machine missed the first book entirely.
        assert len(by_name["late"]) == 1
        assert by_name["late"][0].key() == by_name["early"][1].key()

    def test_pause_and_resume_delivery(self, simple_doc):
        seen = []
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books", callback=seen.append)
        paused_pairs = []
        resumed_pairs = []
        events = list(tokenize(simple_doc))
        evaluator.pause("books")
        for event in events[:13]:  # first book closes while paused
            paused_pairs.extend(evaluator.feed(event))
        assert paused_pairs == [] and seen == []  # nothing delivered while paused
        assert evaluator.subscriptions[0].delivered == 0
        evaluator.resume("books")
        for event in events[13:]:
            resumed_pairs.extend(evaluator.feed(event))
        assert len(resumed_pairs) == 1  # second book delivered after resume
        assert len(seen) == 1
        assert evaluator.subscriptions[0].delivered == 1
        # The machine kept running: pull-style results remain complete.
        assert len(evaluator.results()["books"]) == 2

    def test_callback_exceptions_are_isolated(self, simple_doc):
        good = []

        def bad_callback(solution):
            raise RuntimeError("subscriber bug")

        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="bad", callback=bad_callback)
        evaluator.register("//book", name="good", callback=good.append)
        results = evaluator.evaluate(simple_doc)
        assert len(good) == 2  # the healthy subscriber saw everything
        assert len(results["bad"]) == 2  # pull-style results unaffected
        bad = evaluator._subscriptions["bad"]
        assert bad.callback_errors == 2
        assert isinstance(bad.last_callback_error, RuntimeError)
        assert bad.delivered == 2  # the solution still counts as delivered

    def test_structurally_identical_queries_share_one_machine(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        first = evaluator.register("//book[author]/title", name="first")
        second = evaluator.register("//book[ author ]/title", name="second")
        assert evaluator.machine_count == 1
        assert first.runtime is second.runtime
        assert first.evaluator is second.evaluator
        results = evaluator.evaluate(simple_doc)
        assert results["first"].keys() == results["second"].keys()
        # Each result set reports the query text as registered.
        assert results["first"].query == "//book[author]/title"
        assert results["second"].query == "//book[ author ]/title"

    def test_duplicate_subscribers_both_receive_pairs(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="first")
        evaluator.register("//book", name="second")
        pairs = list(evaluator.stream(simple_doc))
        names = [name for name, _ in pairs]
        assert names.count("first") == 2
        assert names.count("second") == 2

    def test_auto_names_stay_unique_after_unregister(self):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//a")
        evaluator.register("//b")
        evaluator.unregister("q0")
        third = evaluator.register("//c")
        assert third.name not in ("q1",)
        assert len({sub.name for sub in evaluator.subscriptions}) == 2

    def test_empty_event_list_is_an_empty_stream(self):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//a", name="as")
        assert list(evaluator.stream([])) == []
        results = evaluator.results()
        assert len(results["as"]) == 0

    def test_register_after_stream_finished_rejected(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book")
        list(evaluator.stream(simple_doc))
        with pytest.raises(EngineError):
            evaluator.register("//title")

    def test_replay_after_fused_bailout_fires_callbacks_once(self, simple_doc, monkeypatch):
        """A fused-scan bail-out must not double-deliver via the replay.

        Deliveries are buffered during the fused scan and discarded when it
        returns None; the event-pipeline replay is then the only source of
        callbacks.
        """
        import repro.core.multi as multi_module

        monkeypatch.setattr(
            multi_module, "fused_pure_multi_evaluate", lambda *args: None
        )
        seen = []
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books", callback=seen.append)
        results = evaluator.evaluate(simple_doc, parser="pure")
        assert len(seen) == 2
        assert len(results["books"]) == 2
        assert evaluator.subscriptions[0].delivered == 2

    def test_failed_expat_run_leaves_machines_clean(self, simple_doc):
        """A fused expat parse failure must not leak state into a later run."""
        from repro.errors import XMLSyntaxError

        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books")
        with pytest.raises(XMLSyntaxError):
            evaluator.evaluate("<library><book id='b0'/></library>junk", parser="expat")
        results = evaluator.evaluate(simple_doc, parser="expat")
        # Only the clean document's two books — nothing from the failed run.
        assert len(results["books"]) == 2
        assert all(s.node.tag == "book" for s in results["books"])

    def test_failed_expat_run_leaves_single_evaluator_clean(self, simple_doc):
        from repro.errors import XMLSyntaxError

        evaluator = TwigMEvaluator("//book")
        with pytest.raises(XMLSyntaxError):
            evaluator.evaluate("<library><book id='b0'/></library>junk", parser="expat")
        assert len(evaluator.evaluate(simple_doc, parser="expat")) == 2

    def test_mid_stream_duplicate_gets_private_machine(self, simple_doc):
        """Mid-stream registration never inherits a warm shared machine."""
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="early")
        pairs = []
        late = None
        for index, event in enumerate(tokenize(simple_doc)):
            pairs.extend(evaluator.feed(event))
            if index == 12 and late is None:  # after the first book closed
                late = evaluator.register("//book", name="late")
        assert late.runtime is not evaluator.subscriptions[0].runtime
        assert evaluator.machine_count == 2
        by_name = {}
        for name, solution in pairs:
            by_name.setdefault(name, []).append(solution)
        assert len(by_name["early"]) == 2
        assert len(by_name["late"]) == 1  # remainder-only, despite the dupe
        # Lifecycle of the private runtime stays consistent.
        evaluator.unregister("early")
        assert evaluator.machine_count == 1
        assert len(evaluator.results()["late"]) == 1

    def test_close_releases_compiled_cache_references(self):
        from repro.core.builder import shared_compiled_cache

        before = len(shared_compiled_cache)
        evaluator = MultiQueryEvaluator()
        evaluator.register("//unique-close-test-a/b", name="one")
        evaluator.register("//unique-close-test-a/b", name="two")
        evaluator.register("//unique-close-test-c", name="three")
        assert len(shared_compiled_cache) == before + 2
        evaluator.close()
        assert len(shared_compiled_cache) == before
        assert len(evaluator) == 0
        evaluator.close()  # idempotent

    def test_context_manager_closes(self, simple_doc):
        from repro.core.builder import shared_compiled_cache

        before = len(shared_compiled_cache)
        with MultiQueryEvaluator() as evaluator:
            evaluator.register("//unique-ctx-test/book", name="books")
            assert len(shared_compiled_cache) == before + 1
        assert len(shared_compiled_cache) == before

    def test_reset_clears_callback_error_state(self, simple_doc):
        def bad_callback(solution):
            raise ValueError("boom")

        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books", callback=bad_callback)
        evaluator.evaluate(simple_doc)
        evaluator.reset()
        subscription = evaluator.subscriptions[0]
        assert subscription.callback_errors == 0
        assert subscription.last_callback_error is None
        assert subscription.delivered == 0


class TestSubscriptionScenario:
    def test_ticker_subscriptions_share_one_pass(self):
        generator = NewsFeedGenerator(NewsFeedConfig(updates=200), seed=5)
        document = generator.text()
        evaluator = MultiQueryEvaluator()
        evaluator.register(generator.CANONICAL_QUERY, name="acme")
        evaluator.register("//headline[@section='markets']/title/text()", name="markets")
        evaluator.register("//update/quote[price>450]/@symbol", name="movers")
        results = evaluator.evaluate(generator.chunks())
        assert len(results["acme"]) == generator.expected_symbol_updates("ACME")
        for name in ("acme", "markets", "movers"):
            assert results[name].keys() == evaluate(
                evaluator._subscriptions[name].query, document
            ).keys()
