"""Unit tests for the multi-query (shared single pass) evaluator."""

from __future__ import annotations

import pytest

from repro.core.engine import evaluate
from repro.core.multi import MultiQueryEvaluator, evaluate_many
from repro.datasets.newsfeed import NewsFeedConfig, NewsFeedGenerator
from repro.errors import EngineError
from repro.xmlstream.tokenizer import tokenize


QUERIES = ["//book/@id", "//book[author]/title", "//journal//title/text()"]


class TestRegistration:
    def test_register_returns_subscription(self):
        evaluator = MultiQueryEvaluator()
        subscription = evaluator.register("//a", name="mine")
        assert subscription.name == "mine"
        assert subscription.query == "//a"
        assert len(evaluator) == 1

    def test_auto_names_are_unique(self):
        evaluator = MultiQueryEvaluator()
        first = evaluator.register("//a")
        second = evaluator.register("//b")
        assert first.name != second.name

    def test_duplicate_name_rejected(self):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//a", name="dup")
        with pytest.raises(EngineError):
            evaluator.register("//b", name="dup")

    def test_feed_without_queries_rejected(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        with pytest.raises(EngineError):
            evaluator.feed(next(iter(tokenize(simple_doc))))


class TestSharedPassCorrectness:
    def test_results_match_individual_evaluation(self, simple_doc):
        combined = evaluate_many(QUERIES, simple_doc)
        for query in QUERIES:
            assert combined[query].keys() == evaluate(query, simple_doc).keys()

    def test_results_by_subscription_name(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books")
        evaluator.register("//journal", name="journals")
        results = evaluator.evaluate(simple_doc)
        assert len(results["books"]) == 2
        assert len(results["journals"]) == 1

    def test_statistics_per_subscription(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book", name="books")
        evaluator.register("//title", name="titles")
        evaluator.evaluate(simple_doc)
        stats = evaluator.statistics()
        assert stats["books"]["solutions_distinct"] == 2
        assert stats["titles"]["solutions_distinct"] == 3

    def test_incremental_stream_pairs(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book/@id", name="ids")
        evaluator.register("//author/text()", name="authors")
        pairs = list(evaluator.stream(simple_doc))
        names = {name for name, _ in pairs}
        assert names == {"ids", "authors"}
        assert len([p for p in pairs if p[0] == "ids"]) == 2
        assert len([p for p in pairs if p[0] == "authors"]) == 3

    def test_callbacks_invoked(self, simple_doc):
        seen = []
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book/@id", name="ids", callback=seen.append)
        evaluator.evaluate(simple_doc)
        assert sorted(s.value for s in seen) == ["b1", "b2"]
        assert evaluator.subscriptions[0].delivered == 2

    def test_reset_allows_second_stream(self, simple_doc, recursive_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//b", name="bs")
        first = evaluator.evaluate(recursive_doc)
        evaluator.reset()
        second = evaluator.evaluate(simple_doc)
        assert len(first["bs"]) == 5
        assert len(second["bs"]) == 0

    def test_register_after_run_rejected(self, simple_doc):
        evaluator = MultiQueryEvaluator()
        evaluator.register("//book")
        evaluator.evaluate(simple_doc)
        with pytest.raises(EngineError):
            evaluator.register("//title")


class TestSubscriptionScenario:
    def test_ticker_subscriptions_share_one_pass(self):
        generator = NewsFeedGenerator(NewsFeedConfig(updates=200), seed=5)
        document = generator.text()
        evaluator = MultiQueryEvaluator()
        evaluator.register(generator.CANONICAL_QUERY, name="acme")
        evaluator.register("//headline[@section='markets']/title/text()", name="markets")
        evaluator.register("//update/quote[price>450]/@symbol", name="movers")
        results = evaluator.evaluate(generator.chunks())
        assert len(results["acme"]) == generator.expected_symbol_updates("ACME")
        for name in ("acme", "markets", "movers"):
            assert results[name].keys() == evaluate(
                evaluator._subscriptions[name].query, document
            ).keys()
