"""DocumentStreamSession: unbounded multi-document streams, bounded memory.

The contract under test (ISSUE 10 tentpole): an endless feed of
concatenated or length-framed documents, boundaries autodetected at
root-close, machine state reset between documents while subscriptions and
stream-global counters stay alive — with per-document delivery identical to
evaluating each document one-shot, at any chunk split, on both backends.
"""

from __future__ import annotations

import pytest

from repro.core.docstream import (
    DocumentBoundaryScanner,
    DocumentStreamSession,
    RetentionSpool,
    frame_document,
)
from repro.core.multi import MultiQueryEvaluator
from repro.errors import EngineError

DOCS = [
    '<?xml version="1.0"?><a><b i="1">x&amp;y</b><c><b i="2">z</b></c></a>',
    "<doc/>",
    '<r att="&gt;"><!-- > --><b i="3"><![CDATA[ a>b ]]> raw</b></r>',
    "<a><c/><b>last</b></a>",
]
STREAM = "\n".join(DOCS)
PARSERS = ("native", "expat")


def per_document_reference(query: str, docs=DOCS):
    """Evaluate each document one-shot; returns the concatenated reprs."""
    out = []
    for doc in docs:
        with MultiQueryEvaluator() as engine:
            engine.subscribe(query, name="q")
            results = engine.evaluate(doc)
            out.extend(repr(s) for s in results["q"].solutions)
    return out


# --------------------------------------------------------------------------
# boundary scanner


class TestBoundaryScanner:
    def test_basic_split(self):
        scanner = DocumentBoundaryScanner()
        segments = scanner.feed("<a><b/></a>\n<c/> <d>x</d>")
        assert segments == [
            ("<a><b/></a>", True),
            ("<c/>", True),
            ("<d>x</d>", True),
        ]

    def test_tricky_gt_characters_do_not_split(self):
        doc = (
            "<!DOCTYPE r [ <!ENTITY e \"v\"> ]>"
            "<r a='>' b=\">\"><!-- > --><![CDATA[ > ]]><?pi > ?>x</r>"
        )
        scanner = DocumentBoundaryScanner()
        segments = scanner.feed(doc + "<n/>")
        assert segments == [(doc, True), ("<n/>", True)]

    def test_self_closing_root(self):
        scanner = DocumentBoundaryScanner()
        assert scanner.feed("<only/>") == [("<only/>", True)]

    def test_every_split_offset_reassembles(self):
        whole = DocumentBoundaryScanner().feed(STREAM)
        assert [seg for seg, done in whole if done] == DOCS
        for offset in range(1, len(STREAM)):
            scanner = DocumentBoundaryScanner()
            segments = scanner.feed(STREAM[:offset]) + scanner.feed(STREAM[offset:])
            docs = []
            current = []
            for text, completed in segments:
                current.append(text)
                if completed:
                    docs.append("".join(current))
                    current = []
            assert docs == DOCS, offset
            assert not "".join(current).strip()

    def test_interdocument_whitespace_is_discarded(self):
        scanner = DocumentBoundaryScanner()
        segments = scanner.feed("  \n <a/>  \n\t  <b/> \n")
        assert segments == [("<a/>", True), ("<b/>", True)]

    def test_incomplete_document_reported_by_finish(self):
        scanner = DocumentBoundaryScanner()
        scanner.feed("<a><b>")
        assert scanner.in_document
        scanner2 = DocumentBoundaryScanner()
        scanner2.feed("<a/>")
        assert not scanner2.in_document

    def test_snapshot_roundtrip_mid_construct(self):
        for offset in range(1, len(STREAM)):
            scanner = DocumentBoundaryScanner()
            first = scanner.feed(STREAM[:offset])
            restored = DocumentBoundaryScanner.restore_state(
                scanner.snapshot_state()
            )
            second = restored.feed(STREAM[offset:])
            docs = []
            current = []
            for text, completed in first + second:
                current.append(text)
                if completed:
                    docs.append("".join(current))
                    current = []
            assert docs == DOCS, offset


# --------------------------------------------------------------------------
# retention spool


class TestRetentionSpool:
    def test_needs_a_limit(self):
        with pytest.raises(EngineError):
            RetentionSpool()

    def test_document_count_eviction(self):
        spool = RetentionSpool(max_documents=2)
        from repro.xmlstream.events import StartElement

        for seq in range(4):
            spool.begin_document(seq)
            spool.add_events([StartElement(0, "a", 1, (), None)], 1)
            spool.seal_document()
        assert spool.documents == 2
        assert spool.evicted_documents == 2
        assert [sealed for sealed, _ in spool.replay_units()] == [True, True]

    def test_byte_eviction(self):
        from repro.xmlstream.events import Characters

        spool = RetentionSpool(max_bytes=64)
        for seq in range(8):
            spool.begin_document(seq)
            spool.add_events([Characters(0, "x" * 32, 1)], 0)
            spool.seal_document()
        assert spool.byte_size <= 64
        assert spool.evicted_documents > 0


# --------------------------------------------------------------------------
# the session


class TestDocumentStream:
    @pytest.mark.parametrize("parser", PARSERS)
    def test_per_document_parity_any_split(self, parser):
        reference = per_document_reference("//b")
        for step in (1, 3, 7, len(STREAM)):
            engine = MultiQueryEvaluator()
            engine.subscribe("//b", name="q")
            session = engine.document_stream(parser=parser)
            pairs = []
            for start in range(0, len(STREAM), step):
                pairs.extend(session.feed_text(STREAM[start : start + step]))
            session.close()
            assert [repr(m.solution) for m in pairs] == reference, (parser, step)
            assert session.documents == len(DOCS)
            engine.close()

    @pytest.mark.parametrize("parser", PARSERS)
    def test_feed_bytes(self, parser):
        engine = MultiQueryEvaluator()
        engine.subscribe("//b", name="q")
        session = engine.document_stream(parser=parser)
        data = STREAM.encode("utf-8")
        pairs = []
        for start in range(0, len(data), 5):
            pairs.extend(session.feed_bytes(data[start : start + 5]))
        session.close()
        assert [repr(m.solution) for m in pairs] == per_document_reference("//b")
        engine.close()

    def test_framed_mode(self):
        engine = MultiQueryEvaluator()
        engine.subscribe("//b", name="q")
        session = engine.document_stream(framing="framed")
        wire = b"".join(frame_document(doc) for doc in DOCS)
        pairs = []
        for start in range(0, len(wire), 3):
            pairs.extend(session.feed_framed(wire[start : start + 3]))
        session.close()
        assert [repr(m.solution) for m in pairs] == per_document_reference("//b")
        assert session.documents == len(DOCS)
        framed = engine.document_stream(framing="framed")
        with pytest.raises(EngineError):
            framed.feed_text("<a/>")
        with pytest.raises(EngineError):
            framed.feed_bytes(b"<a/>")
        framed.close()
        engine.close()

    def test_feed_document_explicit(self):
        engine = MultiQueryEvaluator()
        engine.subscribe("//b", name="q")
        session = engine.document_stream()
        pairs = []
        for doc in DOCS:
            pairs.extend(session.feed_document(doc))
        session.close()
        assert [repr(m.solution) for m in pairs] == per_document_reference("//b")
        engine.close()

    def test_auto_mode_rejects_feed_framed(self):
        engine = MultiQueryEvaluator()
        session = engine.document_stream()
        with pytest.raises(EngineError):
            session.feed_framed(b"\x03<a/>")
        engine.close()

    @pytest.mark.parametrize("parser", PARSERS)
    def test_zero_subscription_feeding_advances_counters(self, parser):
        """Satellite: unbounded feeding with no subscribers stays flat."""
        engine = MultiQueryEvaluator()
        session = engine.document_stream(parser=parser)
        for round_ in range(20):
            session.feed_text("<a><b>1</b><c><b>2</b></c></a>\n")
            assert session.live_entries() == 0
        session.close()
        assert session.documents == 20
        assert session.elements == 20 * 4
        assert engine._element_order == 0  # between documents after reset
        engine.close()

    def test_delivered_counters_survive_document_boundaries(self):
        engine = MultiQueryEvaluator()
        sub = engine.subscribe("//b", name="q")
        session = engine.document_stream()
        for _ in range(5):
            session.feed_text("<a><b>x</b></a>")
        assert sub.delivered == 5  # engine.reset() would have zeroed this
        session.close()
        assert sub.delivered == 5
        engine.close()

    def test_subscriber_at_document_n_remainder_semantics(self):
        """Satellite: without replay_window, coverage starts at join time."""
        engine = MultiQueryEvaluator()
        session = engine.document_stream(retain_documents=10)
        session.feed_text("<a><b>1</b></a><a><b>2</b></a>")
        late = session.subscribe("//b", name="late")
        pairs = session.feed_text("<a><b>3</b></a>")
        session.close()
        assert late.delivered == 1
        assert [m.name for m in pairs] == ["late"]
        engine.close()

    def test_mid_document_join_sees_remainder_only(self):
        engine = MultiQueryEvaluator()
        session = engine.document_stream()
        session.feed_text("<a><b>1</b><c>")
        late = session.subscribe("//b", name="late")
        session.feed_text("</c><b>2</b></a>")
        session.close()
        assert late.delivered == 1
        engine.close()

    @pytest.mark.parametrize("parser", PARSERS)
    def test_on_error_skip_resumes_at_next_boundary(self, parser):
        engine = MultiQueryEvaluator()
        engine.subscribe("//b", name="q")
        session = engine.document_stream(parser=parser, on_error="skip")
        # the middle document is well-bounded for the scanner but rejected by
        # both parsers (undefined entity), so skipping resumes cleanly
        pairs = session.feed_text(
            "<a><b>1</b></a><broken>&undefined;</broken><a><b>2</b></a>"
        )
        session.close()
        assert session.documents == 2
        assert session.documents_failed >= 1
        assert len(pairs) == 2
        engine.close()

    def test_on_error_raise_marks_failed(self):
        engine = MultiQueryEvaluator()
        session = engine.document_stream()
        with pytest.raises(Exception):
            session.feed_text("<a><</a>")
        assert session.failed
        with pytest.raises(EngineError):
            session.feed_text("<a/>")
        # engine is left clean for other surfaces
        assert engine._element_order == 0 and not engine._started
        engine.close()

    def test_window_stats(self):
        windows = []
        engine = MultiQueryEvaluator()
        engine.subscribe("//b", name="q")
        session = engine.document_stream(
            window_documents=3, on_window=windows.append
        )
        for _ in range(7):
            # split each document so a chunk boundary lands mid-document and
            # the live-entry sampler observes open stacks
            session.feed_text("<a><b>x")
            session.feed_text("</b></a>")
        session.close()
        assert len(windows) >= 2
        first = windows[0]
        assert first.documents == 3
        assert first.elements == 6
        assert first.matches == 3
        assert first.docs_per_s > 0
        assert first.peak_live_entries >= 1
        payload = first.as_dict()
        assert payload["documents"] == 3
        assert session.windows  # bounded history retained on the session
        engine.close()

    def test_stats_payload(self):
        engine = MultiQueryEvaluator()
        engine.subscribe("//b", name="q")
        session = engine.document_stream(retain_documents=2)
        session.feed_text("<a><b>x</b></a><a><b>y</b></a><a><b>")
        stats = session.stats()
        assert stats["documents"] == 2
        assert stats["in_document"] is True
        assert stats["matches"] == 2
        assert stats["spool"]["documents"] == 2
        assert stats["subscriptions"] == 1
        session.close()
        assert session.documents_failed == 1  # the partial document
        engine.close()

    def test_close_is_idempotent_and_leaves_engine_usable(self):
        engine = MultiQueryEvaluator()
        engine.subscribe("//b", name="q")
        session = engine.document_stream()
        session.feed_text("<a><b>1</b></a>")
        session.close()
        session.close()
        # the same engine can run a bounded document afterwards
        results = engine.evaluate("<a><b>2</b></a>")
        assert len(results["q"]) == 1
        engine.close()

    def test_needs_fresh_engine_position(self):
        engine = MultiQueryEvaluator()
        engine.subscribe("//b", name="q")
        engine.evaluate("<a><b>1</b></a>")
        with pytest.raises(EngineError):
            engine.document_stream()
        engine.reset()
        session = engine.document_stream()
        session.close()
        engine.close()

    def test_context_manager(self):
        engine = MultiQueryEvaluator()
        with engine.document_stream() as session:
            session.feed_text("<a/>")
        assert session.closed
        engine.close()


class TestFacade:
    def test_engine_document_stream_delivers_matches(self):
        from repro.api import Engine, Match

        engine = Engine()
        received = []
        session = engine.document_stream(retain_documents=4)
        session.subscribe("//b", callback=received.append, name="q")
        session.feed_text("<a><b>1</b></a><a><b>2</b></a>")
        session.close()
        assert [type(m) for m in received] == [Match, Match]
        assert all(m.name == "q" for m in received)
        engine.close()

    def test_facade_replay_callback_gets_matches(self):
        from repro.api import Engine, Match

        engine = Engine()
        session = engine.document_stream(retain_documents=4)
        session.feed_text("<a><b>1</b></a>")
        received = []
        session.subscribe(
            "//b", callback=received.append, name="late", replay_window=True
        )
        session.feed_text("<a><b>2</b></a>")
        session.close()
        assert len(received) == 2
        assert all(isinstance(m, Match) and m.name == "late" for m in received)
        engine.close()
