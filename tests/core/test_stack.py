"""Unit tests for machine stacks and stack entries."""

from __future__ import annotations

import pytest

from repro.core.results import NodeRef, Solution, SolutionKind
from repro.core.stack import MachineStack, StackEntry
from repro.errors import StreamStateError


def entry(level, order=0, tag="a"):
    return StackEntry(level=level, element=NodeRef(order=order, tag=tag, level=level))


def solution(order):
    return Solution(kind=SolutionKind.ELEMENT, node=NodeRef(order=order, tag="x", level=1))


class TestStackEntry:
    def test_string_value_requires_collection(self):
        plain = entry(1)
        assert plain.string_value() is None
        collecting = StackEntry(level=1, element=NodeRef(order=0, tag="a", level=1), string_parts=[])
        collecting.string_parts.extend(["ab", "cd"])
        assert collecting.string_value() == "abcd"

    def test_direct_text(self):
        collecting = StackEntry(level=1, element=NodeRef(order=0, tag="a", level=1), direct_parts=["x"])
        assert collecting.direct_text() == "x"
        assert entry(1).direct_text() is None

    def test_add_candidate_is_idempotent(self):
        e = entry(1)
        e.add_candidate(solution(5))
        e.add_candidate(solution(5))
        assert e.candidate_count == 1

    def test_absorb_candidates_counts_new_only(self):
        target = entry(1)
        source = entry(2)
        source.add_candidate(solution(1))
        source.add_candidate(solution(2))
        target.add_candidate(solution(1))
        added = target.absorb_candidates(source)
        assert added == 1
        assert target.candidate_count == 2


class TestMachineStack:
    def test_push_and_pop_order(self):
        stack = MachineStack()
        stack.push(entry(1))
        stack.push(entry(3))
        assert len(stack) == 2
        assert stack.top_level() == 3
        popped = stack.pop()
        assert popped.level == 3
        assert stack.top_level() == 1

    def test_push_requires_increasing_levels(self):
        stack = MachineStack()
        stack.push(entry(2))
        with pytest.raises(StreamStateError):
            stack.push(entry(2))
        with pytest.raises(StreamStateError):
            stack.push(entry(1))

    def test_pop_empty_rejected(self):
        with pytest.raises(StreamStateError):
            MachineStack().pop()

    def test_top_and_bottom(self):
        stack = MachineStack()
        assert stack.top is None
        assert stack.bottom is None
        stack.push(entry(1))
        stack.push(entry(4))
        assert stack.bottom.level == 1
        assert stack.top.level == 4

    def test_has_open_at_level(self):
        stack = MachineStack()
        stack.push(entry(1))
        stack.push(entry(3))
        assert stack.has_open_at_level(1)
        assert stack.has_open_at_level(3)
        assert not stack.has_open_at_level(2)
        assert not stack.has_open_at_level(4)

    def test_has_open_below(self):
        stack = MachineStack()
        assert not stack.has_open_below(5)
        stack.push(entry(2))
        assert stack.has_open_below(3)
        assert not stack.has_open_below(2)
        assert not stack.has_open_below(1)

    def test_entries_for_axis_child(self):
        stack = MachineStack()
        stack.push(entry(1))
        stack.push(entry(2))
        stack.push(entry(4))
        child_targets = stack.entries_for_axis(3, descendant=False)
        assert [e.level for e in child_targets] == [2]

    def test_entries_for_axis_descendant(self):
        stack = MachineStack()
        stack.push(entry(1))
        stack.push(entry(2))
        stack.push(entry(4))
        descendant_targets = stack.entries_for_axis(4, descendant=True)
        assert [e.level for e in descendant_targets] == [1, 2]

    def test_candidate_total(self):
        stack = MachineStack()
        first = entry(1)
        first.add_candidate(solution(1))
        second = entry(2)
        second.add_candidate(solution(2))
        second.add_candidate(solution(3))
        stack.push(first)
        stack.push(second)
        assert stack.candidate_total() == 3

    def test_clear(self):
        stack = MachineStack()
        stack.push(entry(1))
        stack.clear()
        assert len(stack) == 0
        assert not stack

    def test_iteration_bottom_to_top(self):
        stack = MachineStack()
        stack.push(entry(1))
        stack.push(entry(2))
        assert [e.level for e in stack] == [1, 2]
