"""Unit tests for engine statistics counters."""

from __future__ import annotations

from repro.core.engine import TwigMEvaluator
from repro.core.statistics import EngineStatistics
from repro.datasets.recursive import small_recursive_document


class TestEngineStatisticsUnit:
    def test_record_push_tracks_per_label(self):
        stats = EngineStatistics()
        stats.record_push("a")
        stats.record_push("a")
        stats.record_push("b")
        assert stats.pushes == 3
        assert stats.pushes_by_node == {"a": 2, "b": 1}

    def test_observe_state_tracks_peaks(self):
        stats = EngineStatistics()
        stats.observe_state(5, 2)
        stats.observe_state(3, 9)
        stats.observe_state(4, 4)
        assert stats.peak_stack_entries == 5
        assert stats.peak_candidate_count == 9

    def test_work_units_sums_components(self):
        stats = EngineStatistics(
            pushes=2, pops=2, flags_set=1, candidates_created=3, candidates_propagated=4
        )
        assert stats.work_units() == 12

    def test_as_dict_contains_all_scalars(self):
        data = EngineStatistics().as_dict()
        for key in (
            "events",
            "elements",
            "pushes",
            "pops",
            "flags_set",
            "candidates_created",
            "candidates_propagated",
            "solutions_emitted",
            "solutions_distinct",
            "peak_stack_entries",
            "peak_candidate_count",
            "max_depth",
        ):
            assert key in data


class TestEngineStatisticsBehaviour:
    def test_pushes_equal_pops_on_complete_documents(self):
        document = small_recursive_document(section_depth=4, table_depth=3)
        evaluator = TwigMEvaluator("//section[author]//table[position]//cell")
        evaluator.evaluate(document)
        stats = evaluator.statistics
        assert stats.pushes == stats.pops
        assert stats.live_entries == 0
        assert stats.live_candidates >= 0

    def test_peak_stack_entries_bounded_by_depth_times_query(self):
        document = small_recursive_document(section_depth=6, table_depth=5)
        evaluator = TwigMEvaluator("//section//table//cell")
        evaluator.evaluate(document)
        stats = evaluator.statistics
        machine_size = evaluator.machine.size
        assert stats.peak_stack_entries <= stats.max_depth * machine_size

    def test_solutions_distinct_matches_result_count(self):
        document = small_recursive_document(section_depth=3, table_depth=3)
        evaluator = TwigMEvaluator("//table//cell")
        result = evaluator.evaluate(document)
        assert evaluator.statistics.solutions_distinct == len(result)

    def test_deeper_documents_do_more_work(self):
        shallow = small_recursive_document(section_depth=2, table_depth=2)
        deep = small_recursive_document(section_depth=8, table_depth=8)
        query = "//section//table//cell"
        small_eval = TwigMEvaluator(query)
        small_eval.evaluate(shallow)
        big_eval = TwigMEvaluator(query)
        big_eval.evaluate(deep)
        assert big_eval.statistics.work_units() > small_eval.statistics.work_units()
