"""Tests for optional XML-fragment capture on element solutions."""

from __future__ import annotations

from repro.core.engine import TwigMEvaluator, evaluate
from repro.xmlstream.dom import parse_document


DOC = (
    "<catalog>"
    "<product id='p1'><name>Lamp</name><price>20</price></product>"
    "<product id='p2'><name>Desk &amp; Chair</name><price>120</price></product>"
    "</catalog>"
)


class TestFragmentCapture:
    def test_disabled_by_default(self):
        result = evaluate("//product", DOC)
        assert all(solution.fragment is None for solution in result)

    def test_fragments_captured_when_enabled(self):
        result = evaluate("//product", DOC, capture_fragments=True)
        fragments = [solution.fragment for solution in result.solutions]
        assert len(fragments) == 2
        assert all(fragment is not None for fragment in fragments)
        assert fragments[0].startswith('<product id="p1">')
        assert "<name>Lamp</name>" in fragments[0]

    def test_fragment_is_reparseable_and_escaped(self):
        result = evaluate("//product[price>100]", DOC, capture_fragments=True)
        assert len(result) == 1
        fragment = result.solutions[0].fragment
        tree = parse_document(fragment)
        assert tree.root.tag == "product"
        assert tree.root.find_all("name")[0].string_value() == "Desk & Chair"

    def test_fragments_for_filtered_solutions_only(self):
        result = evaluate("//product[price>100]", DOC, capture_fragments=True)
        assert [s.node.order for s in result.solutions] == [4]

    def test_nested_solution_fragments(self):
        document = "<a><a><b>inner</b></a><b>outer</b></a>"
        result = evaluate("//a", document, capture_fragments=True)
        fragments = {s.node.level: s.fragment for s in result.solutions}
        assert fragments[2] == "<a><b>inner</b></a>"
        assert fragments[1] == "<a><a><b>inner</b></a><b>outer</b></a>"

    def test_attribute_solutions_have_no_fragment(self):
        result = evaluate("//product/@id", DOC, capture_fragments=True)
        assert all(solution.fragment is None for solution in result)

    def test_capture_does_not_change_answers(self):
        plain = evaluate("//product[name]/price", DOC).keys()
        captured = evaluate("//product[name]/price", DOC, capture_fragments=True).keys()
        assert plain == captured

    def test_reset_clears_capture_state(self):
        evaluator = TwigMEvaluator("//product", capture_fragments=True)
        evaluator.evaluate(DOC)
        evaluator.reset()
        result = evaluator.evaluate(DOC)
        assert len(result) == 2
        assert all(solution.fragment for solution in result)
