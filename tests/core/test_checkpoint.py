"""Checkpoint/restore unit tests: format, engine state, session carry-over.

The every-byte-offset parity fuzz lives in ``test_checkpoint_fuzz.py`` (it
is also a dedicated CI step); these tests pin down the format contract and
the restore semantics piece by piece.
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    dumps_snapshot,
    loads_snapshot,
)
from repro.core.multi import MultiQueryEvaluator
from repro.errors import CheckpointError

DOC_PREFIX = '<feed><r seq="1"><s1><v1>aé&amp;b</v1></s1></r><r><s1><v1>sp'
DOC_SUFFIX = "lit</v1></s1></r></feed>"

QUERIES = (("a", "//s1/v1"), ("b", "//v1/text()"), ("c", "//r/@seq"))

PARSERS = ("pure", "expat")


def _engine_with_queries():
    engine = MultiQueryEvaluator()
    for name, query in QUERIES:
        engine.register(query, name=name)
    return engine


def _snapshot_mid_document(parser):
    engine = _engine_with_queries()
    session = engine.session(parser=parser)
    pairs = session.feed_text(DOC_PREFIX)
    snapshot = session.snapshot()
    engine.close()
    return pairs, snapshot


class TestEnvelope:
    @pytest.mark.parametrize("parser", PARSERS)
    def test_snapshot_envelope_fields(self, parser):
        _, snapshot = _snapshot_mid_document(parser)
        assert snapshot["format"] == SNAPSHOT_FORMAT
        assert snapshot["version"] == SNAPSHOT_VERSION
        assert snapshot["session"]["parser"] == parser
        assert snapshot["engine"]["subscriptions"][0]["name"] == "a"

    @pytest.mark.parametrize("parser", PARSERS)
    def test_serialization_is_deterministic(self, parser):
        _, first = _snapshot_mid_document(parser)
        _, second = _snapshot_mid_document(parser)
        assert dumps_snapshot(first) == dumps_snapshot(second)

    @pytest.mark.parametrize("parser", PARSERS)
    def test_bytes_round_trip(self, parser):
        _, snapshot = _snapshot_mid_document(parser)
        assert loads_snapshot(dumps_snapshot(snapshot)) == snapshot

    def test_loads_rejects_garbage(self):
        with pytest.raises(CheckpointError):
            loads_snapshot(b"not json")
        with pytest.raises(CheckpointError):
            loads_snapshot(b'{"format": "something-else", "version": 1}')

    def test_loads_rejects_future_version(self):
        _, snapshot = _snapshot_mid_document("pure")
        snapshot["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(CheckpointError):
            loads_snapshot(dumps_snapshot(snapshot))


class TestRestoreSemantics:
    @pytest.mark.parametrize("parser", PARSERS)
    def test_prefix_snapshot_suffix_matches_unbroken(self, parser):
        with _engine_with_queries() as reference:
            expected = list(reference.stream(DOC_PREFIX + DOC_SUFFIX, parser=parser))
            expected_keys = [(n, s.key()) for n, s in expected]
            expected_results = {
                n: r.keys() for n, r in reference.results().items()
            }
        prefix_pairs, snapshot = _snapshot_mid_document(parser)
        blob = dumps_snapshot(snapshot)
        with MultiQueryEvaluator() as restored:
            session = restored.restore_session(loads_snapshot(blob))
            pairs = prefix_pairs + session.feed_text(DOC_SUFFIX) + session.finish()
            assert [(n, s.key()) for n, s in pairs] == expected_keys
            results = {n: r.keys() for n, r in restored.results().items()}
            assert results == expected_results

    @pytest.mark.parametrize("parser", PARSERS)
    def test_restored_session_can_be_snapshotted_again(self, parser):
        # Chained checkpoints: auto-checkpoint keeps running after a resume.
        _, snapshot = _snapshot_mid_document(parser)
        with MultiQueryEvaluator() as restored:
            session = restored.restore_session(snapshot)
            session.feed_text("li")
            second = session.snapshot()
        with MultiQueryEvaluator() as again:
            session = again.restore_session(second)
            pairs = session.feed_text("t</v1></s1></r></feed>") + session.finish()
            assert [s.key() for _, s in pairs if _ == "a"]

    @pytest.mark.parametrize("parser", PARSERS)
    def test_delivered_counters_survive(self, parser):
        engine = _engine_with_queries()
        session = engine.session(parser=parser)
        session.feed_text(DOC_PREFIX)
        delivered = {s.name: s.delivered for s in engine.subscriptions}
        snapshot = session.snapshot()
        engine.close()
        with MultiQueryEvaluator() as restored:
            restored.restore_session(snapshot)
            assert {s.name: s.delivered for s in restored.subscriptions} == delivered

    @pytest.mark.parametrize("parser", PARSERS)
    def test_callbacks_do_not_travel_and_fire_only_for_remainder(self, parser):
        received = []
        engine = MultiQueryEvaluator()
        engine.register("//s1/v1", name="cb", callback=received.append)
        session = engine.session(parser=parser)
        session.feed_text(DOC_PREFIX)
        fired_before = len(received)
        assert fired_before == 1  # the first v1 completed in the prefix
        snapshot = session.snapshot()
        engine.close()
        with MultiQueryEvaluator() as restored:
            session = restored.restore_session(snapshot)
            subscription = restored.subscriptions[0]
            assert subscription.callback is None
            tail = []
            subscription.callback = tail.append
            session.feed_text(DOC_SUFFIX)
            session.finish()
            assert len(received) == fired_before  # old callback never re-fires
            assert len(tail) == 1  # remainder solution reaches the rebound one

    def test_restore_requires_fresh_engine(self):
        _, snapshot = _snapshot_mid_document("pure")
        engine = MultiQueryEvaluator()
        engine.register("//x", name="occupied")
        with pytest.raises(CheckpointError):
            engine.restore_session(snapshot)
        engine.close()

    def test_truncated_payload_raises_checkpoint_error_not_keyerror(self):
        # A structurally broken payload past the envelope must surface as
        # the documented error type (vitex resume prints it), not a raw
        # KeyError traceback.
        _, snapshot = _snapshot_mid_document("pure")
        for breakage in (
            lambda s: s["engine"]["runtimes"][0].pop("source"),
            lambda s: s["engine"].pop("auto_name_counter"),
            lambda s: s["session"].pop("tokenizer"),
            lambda s: s["engine"]["runtimes"][0]["evaluator"]["stacks"][0][0].pop(
                "element"
            )
            if snapshot["engine"]["runtimes"][0]["evaluator"]["stacks"][0]
            else None,
        ):
            _, broken = _snapshot_mid_document("pure")
            breakage(broken)
            engine = MultiQueryEvaluator()
            with pytest.raises(CheckpointError):
                engine.restore_session(broken)
            assert len(engine) == 0
            engine.close()

    def test_restore_failure_leaves_engine_empty(self):
        _, snapshot = _snapshot_mid_document("pure")
        # Corrupt one runtime's stack list so restore fails mid-way.
        snapshot["engine"]["runtimes"][0]["evaluator"]["stacks"] = [[]]
        engine = MultiQueryEvaluator()
        with pytest.raises(CheckpointError):
            engine.restore_session(snapshot)
        assert len(engine) == 0
        assert engine.machine_count == 0
        engine.register("//x", name="still-usable")
        engine.close()

    @pytest.mark.parametrize("parser", PARSERS)
    def test_paused_subscription_stays_paused(self, parser):
        engine = _engine_with_queries()
        engine.pause("a")
        session = engine.session(parser=parser)
        session.feed_text(DOC_PREFIX)
        snapshot = session.snapshot()
        engine.close()
        with MultiQueryEvaluator() as restored:
            session = restored.restore_session(snapshot)
            pairs = session.feed_text(DOC_SUFFIX) + session.finish()
            assert not any(name == "a" for name, _ in pairs)
            # The shared machine kept running: pull-style results complete.
            assert len(restored.results()["a"]) == 2

    @pytest.mark.parametrize("parser", PARSERS)
    def test_mid_stream_private_machines_restore_private(self, parser):
        engine = MultiQueryEvaluator()
        engine.register("//s1/v1", name="early")
        session = engine.session(parser=parser)
        session.feed_text('<feed><r seq="1"><s1><v1>one</v1></s1></r>')
        # Mid-stream duplicate shape: must stay on a private machine so its
        # remainder-only answer is preserved across the checkpoint.
        engine.register("//s1/v1", name="late")
        assert engine.machine_count == 2
        snapshot = session.snapshot()
        engine.close()
        with MultiQueryEvaluator() as restored:
            session = restored.restore_session(snapshot)
            assert restored.machine_count == 2
            session.feed_text("<r><s1><v1>two</v1></s1></r></feed>")
            session.finish()
            results = restored.results()
            assert len(results["early"]) == 2
            assert len(results["late"]) == 1  # remainder only

    def test_snapshot_refused_after_finish_and_abort(self):
        engine = _engine_with_queries()
        session = engine.session(parser="pure")
        session.feed_text(DOC_PREFIX + DOC_SUFFIX)
        session.finish()
        with pytest.raises(CheckpointError):
            session.snapshot()
        engine.close()

    def test_engine_only_snapshot_between_documents(self):
        engine = _engine_with_queries()
        session = engine.session(parser="pure")
        session.feed_text(DOC_PREFIX + DOC_SUFFIX)
        session.finish()
        engine.reset()
        snapshot = engine.snapshot()
        assert snapshot["session"] is None
        engine.close()
        with MultiQueryEvaluator() as restored:
            assert restored.restore_session(snapshot) is None
            session = restored.session(parser="pure")
            pairs = session.feed_text("<feed><s1><v1>y</v1></s1></feed>")
            pairs += session.finish()
            # b (//v1/text()) resolves at </v1>, a (//s1/v1) at </s1>.
            assert [name for name, _ in pairs] == ["b", "a"]

    def test_expat_resumable_false_refuses_snapshot(self):
        engine = _engine_with_queries()
        session = engine.session(parser="expat", resumable=False)
        session.feed_text(DOC_PREFIX)
        with pytest.raises(CheckpointError):
            session.snapshot()
        engine.close()

    @pytest.mark.parametrize("parser", PARSERS)
    def test_statistics_survive_round_trip(self, parser):
        engine = _engine_with_queries()
        session = engine.session(parser=parser)
        session.feed_text(DOC_PREFIX)
        before = engine.statistics()
        snapshot = session.snapshot()
        engine.close()
        with MultiQueryEvaluator() as restored:
            restored.restore_session(snapshot)
            assert restored.statistics() == before
