"""Replay-splice parity: the acceptance property of the retention spool.

ISSUE 10 acceptance: *for every splice offset*, a late subscriber with
``replay_window=True`` sees exactly the one-shot result set — replayed
deliveries from the spool plus live deliveries from the stream joined with
no duplicate and no gap — on both the pure-python and expat backends.
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import dumps_snapshot, loads_snapshot
from repro.core.multi import MultiQueryEvaluator
from repro.errors import EngineError

DOCS = [
    '<a><b i="1">x</b><c><b i="2">y</b></c></a>',
    "<doc/>",
    '<r><b i="3">z</b><b i="4"><d/></b></r>',
]
STREAM = " ".join(DOCS)
QUERY = "//b"
PARSERS = ("native", "expat")


def reference(docs=DOCS):
    """What a from-the-start subscriber sees over the same documents."""
    out = []
    for doc in docs:
        with MultiQueryEvaluator() as engine:
            engine.subscribe(QUERY, name="q")
            out.extend(repr(s) for s in engine.evaluate(doc)["q"].solutions)
    return out


@pytest.mark.parametrize("parser", PARSERS)
def test_replay_splice_parity_at_every_offset(parser):
    """Property: replayed + live == one-shot, at *every* splice offset."""
    expected = reference()
    for splice in range(1, len(STREAM) + 1):
        engine = MultiQueryEvaluator()
        session = engine.document_stream(parser=parser, retain_documents=16)
        live = list(session.feed_text(STREAM[:splice]))
        sub, replayed = session.subscribe_replay(QUERY, name="late")
        live.extend(session.feed_text(STREAM[splice:]))
        session.close()
        got = [repr(m.solution) for m in replayed]
        got.extend(repr(m.solution) for m in live if m.name == "late")
        assert got == expected, (parser, splice)
        assert sub.delivered == len(expected), (parser, splice)
        engine.close()


@pytest.mark.parametrize("parser", PARSERS)
def test_replay_window_coexists_with_prior_subscriber(parser):
    """The pre-existing subscription's deliveries are untouched by a graft."""
    engine = MultiQueryEvaluator()
    early = engine.subscribe(QUERY, name="early")
    session = engine.document_stream(parser=parser, retain_documents=16)
    pairs = list(session.feed_text(STREAM[: len(STREAM) // 2]))
    _, replayed = session.subscribe_replay(QUERY, name="late")
    pairs.extend(session.feed_text(STREAM[len(STREAM) // 2 :]))
    session.close()
    expected = reference()
    assert [repr(m.solution) for m in pairs if m.name == "early"] == expected
    assert early.delivered == len(expected)
    late_total = len(replayed) + sum(1 for m in pairs if m.name == "late")
    assert late_total == len(expected)
    engine.close()


def test_replay_requires_retention():
    engine = MultiQueryEvaluator()
    session = engine.document_stream()  # no spool configured
    with pytest.raises(EngineError):
        session.subscribe(QUERY, replay_window=True)
    session.close()
    engine.close()


def test_replay_covers_only_retained_window():
    """Eviction bounds coverage: replay starts at the oldest retained doc."""
    engine = MultiQueryEvaluator()
    session = engine.document_stream(retain_documents=2)
    docs = [f'<a><b n="{i}"/></a>' for i in range(6)]
    for doc in docs[:5]:
        session.feed_text(doc)
    _, replayed = session.subscribe_replay(QUERY, name="late")
    live = session.feed_text(docs[5])
    session.close()
    got = [repr(m.solution) for m in replayed]
    got.extend(repr(m.solution) for m in live if m.name == "late")
    # docs 0..2 were evicted before the join; the subscriber's world starts
    # at doc 3 (doc 3 itself is evicted later, once doc 5 seals)
    assert got == reference(docs[3:])
    assert session.spool.evicted_documents == 4
    engine.close()


def test_replay_subscription_can_be_unregistered():
    engine = MultiQueryEvaluator()
    session = engine.document_stream(retain_documents=4)
    session.feed_text("<a><b>1</b></a>")
    sub, replayed = session.subscribe_replay(QUERY, name="late")
    assert len(replayed) == 1
    engine.unregister(sub.name)
    live = session.feed_text("<a><b>2</b></a>")
    assert not [m for m in live if m.name == "late"]
    session.close()
    engine.close()


@pytest.mark.parametrize("parser", PARSERS)
def test_replay_after_snapshot_restore(parser):
    """The spool survives checkpoint/restore; replay still splices cleanly."""
    for splice in (7, len(STREAM) // 2, len(STREAM) - 3):
        engine = MultiQueryEvaluator()
        session = engine.document_stream(parser=parser, retain_documents=16)
        session.feed_text(STREAM[:splice])
        payload = dumps_snapshot(session.snapshot())
        session.close()
        engine.close()

        restored_engine = MultiQueryEvaluator()
        restored = restored_engine.restore_session(loads_snapshot(payload))
        _, replayed = restored.subscribe_replay(QUERY, name="late")
        live = list(restored.feed_text(STREAM[splice:]))
        restored.close()
        got = [repr(m.solution) for m in replayed]
        got.extend(repr(m.solution) for m in live if m.name == "late")
        assert got == reference(), (parser, splice)
        restored_engine.close()


def test_byte_bounded_spool_replay():
    """A byte-capped spool evicts whole documents and replay tracks it."""
    engine = MultiQueryEvaluator()
    session = engine.document_stream(retain_bytes=256)
    docs = [f'<a><b pad="{"x" * 40}" n="{i}"/></a>' for i in range(8)]
    for doc in docs:
        session.feed_text(doc)
    kept = session.spool.documents
    assert 0 < kept < len(docs)
    _, replayed = session.subscribe_replay(QUERY, name="late")
    session.close()
    assert [repr(m.solution) for m in replayed] == reference(docs[-kept:])
    engine.close()
