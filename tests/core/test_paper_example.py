"""E6: the paper's Section 1 worked example, reproduced exactly.

The paper walks through query ``//section[author]//table[position]//cell``
over the Figure 1 document and concludes:

* ``cell_8`` has 9 pattern matches of the subquery ``//section//table//cell``
  (3 sections × 3 tables);
* the matches through ``table_6`` and ``table_7`` are discarded because those
  tables have no ``position`` child;
* the single surviving match ``(section_2, table_5, cell_8)``-shaped match
  qualifies ``cell_8`` as the only query solution.
"""

from __future__ import annotations

from repro.baselines.dom_eval import evaluate_with_dom
from repro.baselines.naive import NaiveStreamingEvaluator
from repro.core.engine import TwigMEvaluator, evaluate
from repro.datasets.figures import (
    FIGURE_1_CELL8_MATCH_COUNT,
    FIGURE_1_LINES,
    FIGURE_1_QUERY,
    FIGURE_1_XML,
)
from repro.xmlstream.dom import parse_document


class TestFigure1Document:
    def test_line_numbers_match_the_figure(self):
        document = parse_document(FIGURE_1_XML)
        lines = {}
        for element in document.iter():
            lines.setdefault(element.tag, []).append(element.line)
        assert lines["book"] == [FIGURE_1_LINES["book"]]
        assert lines["section"] == [2, 3, 4]
        assert lines["table"] == [5, 6, 7]
        assert lines["cell"] == [FIGURE_1_LINES["cell_8"]]
        assert lines["position"] == [FIGURE_1_LINES["position_11"]]
        assert lines["author"] == [FIGURE_1_LINES["author_15"]]

    def test_document_depth(self):
        document = parse_document(FIGURE_1_XML)
        assert document.max_depth == 8


class TestPaperWalkthrough:
    def test_twigm_returns_exactly_cell_8(self):
        result = evaluate(FIGURE_1_QUERY, FIGURE_1_XML)
        assert len(result) == 1
        solution = result.solutions[0]
        assert solution.node.tag == "cell"
        assert solution.node.line == FIGURE_1_LINES["cell_8"]

    def test_all_engines_agree_on_the_walkthrough(self):
        twigm = evaluate(FIGURE_1_QUERY, FIGURE_1_XML).keys()
        dom = evaluate_with_dom(FIGURE_1_QUERY, FIGURE_1_XML).keys()
        naive = NaiveStreamingEvaluator(FIGURE_1_QUERY).evaluate(FIGURE_1_XML).keys()
        assert twigm == dom == naive

    def test_without_predicates_cell_is_still_the_only_match(self):
        result = evaluate("//section//table//cell", FIGURE_1_XML)
        assert len(result) == 1

    def test_predicate_on_table_prunes_nothing_for_table5(self):
        # table_5 has the position child, so //table[position] matches exactly it.
        result = evaluate("//table[position]", FIGURE_1_XML)
        assert [s.node.line for s in result.solutions] == [FIGURE_1_LINES["table_5"]]

    def test_tables_6_and_7_fail_the_position_predicate(self):
        result = evaluate("//table[not(position)]", FIGURE_1_XML)
        assert sorted(s.node.line for s in result.solutions) == [
            FIGURE_1_LINES["table_6"],
            FIGURE_1_LINES["table_7"],
        ]

    def test_author_predicate_is_satisfied_only_by_outer_section(self):
        result = evaluate("//section[author]", FIGURE_1_XML)
        assert [s.node.line for s in result.solutions] == [FIGURE_1_LINES["section_outer"]]


class TestPatternMatchAccounting:
    def test_naive_enumeration_counts_nine_matches_for_cell8(self):
        """The naive evaluator stores 9 explicit (section, table, cell) embeddings.

        Total records = 3 section bindings + 3x3 section/table pairs + 9 full
        triples for ``cell_8`` — the 9 is exactly the pattern-match count the
        paper derives in Section 1.
        """
        naive = NaiveStreamingEvaluator("//section//table//cell")
        naive.evaluate(FIGURE_1_XML)
        assert naive.statistics.records_created == 3 + 9 + FIGURE_1_CELL8_MATCH_COUNT

    def test_twigm_stores_linearly_many_entries_instead(self):
        twigm = TwigMEvaluator("//section//table//cell")
        twigm.evaluate(FIGURE_1_XML)
        # One push per matching element per machine node: 3 sections + 3
        # tables + 1 cell = 7, versus the naive evaluator's 21 records.
        assert twigm.statistics.pushes == 7
        assert twigm.statistics.peak_stack_entries <= 7

    def test_paper_query_naive_vs_twigm_work_gap(self):
        naive = NaiveStreamingEvaluator(FIGURE_1_QUERY)
        naive.evaluate(FIGURE_1_XML)
        twigm = TwigMEvaluator(FIGURE_1_QUERY)
        twigm.evaluate(FIGURE_1_XML)
        assert naive.statistics.records_created > twigm.statistics.pushes

    def test_incremental_emission_happens_at_outer_section_close(self):
        """The solution is only confirmed once the author element has been seen."""
        evaluator = TwigMEvaluator(FIGURE_1_QUERY)
        emission_lines = []
        from repro.xmlstream.tokenizer import tokenize

        for event in tokenize(FIGURE_1_XML):
            solutions = evaluator.feed(event)
            if solutions:
                emission_lines.append(getattr(event, "line", None))
        # Exactly one emission, and it happens when the outer section (which
        # owns the author predicate) closes — after line 15.
        assert len(emission_lines) == 1
        assert emission_lines[0] >= FIGURE_1_LINES["author_15"]
