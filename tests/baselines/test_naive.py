"""Unit tests for the naive enumerating streaming evaluator."""

from __future__ import annotations

import pytest

from repro.baselines.naive import NaiveStreamingEvaluator, evaluate_naive
from repro.core.engine import evaluate
from repro.datasets.recursive import small_recursive_document
from repro.errors import StreamStateError
from repro.xmlstream.tokenizer import tokenize
from repro.xpath.generator import linear_descendant_query


class TestCorrectness:
    @pytest.mark.parametrize(
        "query",
        [
            "//book",
            "//book/@id",
            "//book[author]/title",
            "//book[@year]/price/text()",
            "//book[price>20]/@id",
            "//*[title]",
            "/library/journal/title",
        ],
    )
    def test_agrees_with_twigm_on_simple_doc(self, query, simple_doc):
        assert evaluate_naive(query, simple_doc).keys() == evaluate(query, simple_doc).keys()

    @pytest.mark.parametrize(
        "query",
        ["//a//b", "//a/b", "//a//a//b", "//a[b]//c", "//a[@key]//b", "//a[.//c]//b"],
    )
    def test_agrees_with_twigm_on_recursive_doc(self, query, recursive_doc):
        assert evaluate_naive(query, recursive_doc).keys() == evaluate(query, recursive_doc).keys()

    def test_incremental_stream_api(self, simple_doc):
        values = [s.value for s in NaiveStreamingEvaluator("//book/@id").stream(simple_doc)]
        assert sorted(values) == ["b1", "b2"]

    def test_feed_api(self, simple_doc):
        evaluator = NaiveStreamingEvaluator("//book")
        for event in tokenize(simple_doc):
            evaluator.feed(event)
        assert len(evaluator.finish()) == 2

    def test_feed_after_finish_rejected(self, simple_doc):
        evaluator = NaiveStreamingEvaluator("//book")
        evaluator.evaluate(simple_doc)
        evaluator.finish()
        with pytest.raises(StreamStateError):
            evaluator.feed(list(tokenize("<x/>"))[1])


class TestEnumerationCost:
    def test_match_records_grow_exponentially_with_query_size(self):
        document = small_recursive_document(section_depth=8, table_depth=1)
        record_counts = []
        for steps in (1, 2, 3, 4):
            naive = NaiveStreamingEvaluator(linear_descendant_query("section", steps))
            naive.evaluate(document)
            record_counts.append(naive.statistics.records_created)
        # Strictly growing, and growing faster than linearly: the increase
        # between consecutive sizes must itself increase (binomial growth).
        assert record_counts == sorted(record_counts)
        deltas = [b - a for a, b in zip(record_counts, record_counts[1:])]
        assert deltas[1] > deltas[0]
        assert deltas[2] > deltas[1]

    def test_twigm_work_grows_much_slower(self):
        document = small_recursive_document(section_depth=8, table_depth=1)
        steps = 4
        query = linear_descendant_query("section", steps)
        naive = NaiveStreamingEvaluator(query)
        naive.evaluate(document)
        from repro.core.engine import TwigMEvaluator

        twigm = TwigMEvaluator(query)
        twigm.evaluate(document)
        assert naive.statistics.records_created > 2 * twigm.statistics.pushes

    def test_statistics_dictionary(self, simple_doc):
        naive = NaiveStreamingEvaluator("//book[author]/@id")
        naive.evaluate(simple_doc)
        data = naive.statistics.as_dict()
        assert data["records_created"] > 0
        assert data["solutions_distinct"] == 2
        assert naive.statistics.work_units() > 0

    def test_live_records_drop_to_zero(self, simple_doc):
        naive = NaiveStreamingEvaluator("//book[author]//title")
        naive.evaluate(simple_doc)
        assert naive.statistics.live_records == 0
        assert naive.statistics.peak_live_records > 0


class TestPaperScenario:
    def test_predicate_arriving_late_still_filters(self):
        document = "<a><b><c>target</c></b><flag/></a>"
        assert len(evaluate_naive("//a[flag]//c", document)) == 1
        assert len(evaluate_naive("//a[missing]//c", document)) == 0

    def test_duplicate_solutions_deduplicated(self, recursive_doc):
        keys = evaluate_naive("//a//b", recursive_doc).keys()
        assert len(keys) == len(set(keys))
