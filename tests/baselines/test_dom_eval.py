"""Unit tests for the DOM oracle evaluator."""

from __future__ import annotations

from repro.baselines.dom_eval import DomEvaluator, evaluate_with_dom
from repro.core.results import SolutionKind
from repro.xmlstream.dom import parse_document
from repro.xmlstream.tokenizer import tokenize


class TestBasicEvaluation:
    def test_descendant_query(self, simple_doc):
        result = evaluate_with_dom("//title", simple_doc)
        assert len(result) == 3

    def test_child_path(self, simple_doc):
        assert len(evaluate_with_dom("/library/book", simple_doc)) == 2
        assert len(evaluate_with_dom("/book", simple_doc)) == 0

    def test_attribute_output(self, simple_doc):
        result = evaluate_with_dom("//book/@id", simple_doc)
        assert sorted(s.value for s in result) == ["b1", "b2"]
        assert all(s.kind is SolutionKind.ATTRIBUTE for s in result)

    def test_text_output(self, simple_doc):
        assert evaluate_with_dom("//journal/title/text()", simple_doc).values() == ["Queries"]

    def test_predicates(self, simple_doc):
        assert evaluate_with_dom("//book[@year]/@id", simple_doc).values() == ["b1"]
        assert evaluate_with_dom("//book[price>20]/@id", simple_doc).values() == ["b1"]
        assert evaluate_with_dom("//book[not(@year)]/@id", simple_doc).values() == ["b2"]

    def test_results_in_document_order(self, simple_doc):
        orders = [s.node.order for s in evaluate_with_dom("//title", simple_doc)]
        assert orders == sorted(orders)

    def test_no_duplicate_solutions_on_recursive_data(self, recursive_doc):
        keys = evaluate_with_dom("//a//b", recursive_doc).keys()
        assert len(keys) == len(set(keys))


class TestSourceFlexibility:
    def test_accepts_document_object(self, simple_doc):
        document = parse_document(simple_doc)
        result = DomEvaluator("//book").evaluate_document(document)
        assert len(result) == 2

    def test_accepts_event_list(self, simple_doc):
        events = list(tokenize(simple_doc))
        assert len(evaluate_with_dom("//book", events)) == 2

    def test_accepts_file_path(self, simple_doc, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(simple_doc, encoding="utf-8")
        assert len(evaluate_with_dom("//book", str(path))) == 2

    def test_reusable_evaluator(self, simple_doc, recursive_doc):
        evaluator = DomEvaluator("//b")
        assert len(evaluator.evaluate(recursive_doc)) == 5
        assert len(evaluator.evaluate(simple_doc)) == 0


class TestOracleSemantics:
    """Spot-checks of the reference semantics on tricky constructs."""

    def test_predicate_child_vs_descendant(self):
        document = "<r><a><x><b/></x></a><a><b/></a></r>"
        assert len(evaluate_with_dom("//a[b]", document)) == 1
        assert len(evaluate_with_dom("//a[.//b]", document)) == 2

    def test_wildcard_predicate(self):
        document = "<r><a><anything/></a><a/></r>"
        assert len(evaluate_with_dom("//a[*]", document)) == 1

    def test_value_test_uses_string_value(self):
        document = "<r><a><b>he</b><c>llo</c></a></r>"
        assert len(evaluate_with_dom("//a[.='hello']", document)) == 1

    def test_numeric_comparisons(self):
        document = "<r><item><price>5</price></item><item><price>50</price></item></r>"
        assert len(evaluate_with_dom("//item[price>10]", document)) == 1
        assert len(evaluate_with_dom("//item[price<=5]", document)) == 1
        assert len(evaluate_with_dom("//item[price!=5]", document)) == 1

    def test_or_and_not_combinations(self):
        document = "<r><a><x/></a><a><y/></a><a><z/></a></r>"
        assert len(evaluate_with_dom("//a[x or y]", document)) == 2
        assert len(evaluate_with_dom("//a[not(x) and not(y)]", document)) == 1

    def test_attribute_value_comparison(self):
        document = "<r><a id='1'/><a id='2'/></r>"
        assert len(evaluate_with_dom("//a[@id='2']", document)) == 1
        assert len(evaluate_with_dom("//a[@id!='2']", document)) == 1

    def test_text_output_requires_direct_text(self):
        document = "<r><a><b>x</b></a><a>direct</a></r>"
        result = evaluate_with_dom("//a/text()", document)
        assert result.values() == ["direct"]
