"""Cross-substrate integration tests over every synthetic dataset.

For each dataset generator (at a small scale) we check that the whole stack
hangs together: both parser back-ends produce the same event shape, the
serializer round-trips the document, the DOM and the event statistics agree
on structure, and the engine invariants hold on realistic (not hand-written)
documents.
"""

from __future__ import annotations

import pytest

from repro.core.engine import TwigMEvaluator
from repro.datasets.auction import AuctionConfig, AuctionGenerator
from repro.datasets.newsfeed import NewsFeedConfig, NewsFeedGenerator
from repro.datasets.protein import ProteinConfig, ProteinDatabaseGenerator
from repro.datasets.recursive import RecursiveBookGenerator, RecursiveConfig
from repro.datasets.treebank import TreebankConfig, TreebankGenerator
from repro.xmlstream.dom import parse_document
from repro.xmlstream.events import Characters, EndElement, StartElement, EventStatistics
from repro.xmlstream.sax import iter_events
from repro.xmlstream.serializer import serialize_element
from repro.xmlstream.tokenizer import tokenize

GENERATORS = {
    "protein": ProteinDatabaseGenerator(ProteinConfig(entries=20), seed=41),
    "recursive": RecursiveBookGenerator(RecursiveConfig(section_depth=4, table_depth=3), seed=42),
    "auction": AuctionGenerator(AuctionConfig(items=10, people=6, open_auctions=6), seed=43),
    "newsfeed": NewsFeedGenerator(NewsFeedConfig(updates=40), seed=44),
    "treebank": TreebankGenerator(TreebankConfig(sentences=10), seed=45),
}

QUERY_FOR = {
    "protein": "//ProteinEntry[reference]/@id",
    "recursive": "//section[author]//table[position]//cell",
    "auction": "//item[price>100]/name",
    "newsfeed": "//update[quote]/@seq",
    "treebank": "//NP[PP]//NN",
}


def _shape(events):
    shape = []
    for event in events:
        if isinstance(event, StartElement):
            shape.append(("s", event.name, event.level, tuple(sorted(event.attributes))))
        elif isinstance(event, EndElement):
            shape.append(("e", event.name, event.level))
        elif isinstance(event, Characters):
            shape.append(("t", event.text))
    return shape


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestDatasetRoundTrips:
    def test_parser_backends_agree_on_dataset(self, name):
        document = GENERATORS[name].text()
        assert _shape(iter_events(document, parser="native")) == _shape(
            iter_events(document, parser="expat")
        )

    def test_serializer_roundtrip_preserves_structure(self, name):
        document = GENERATORS[name].text()
        original = parse_document(document)
        reparsed = parse_document(serialize_element(original.root))
        assert [e.tag for e in reparsed.iter()] == [e.tag for e in original.iter()]
        assert reparsed.max_depth == original.max_depth
        assert reparsed.root.string_value() == original.root.string_value()

    def test_dom_and_event_statistics_agree(self, name):
        document = GENERATORS[name].text()
        stats = EventStatistics.from_events(tokenize(document))
        tree = parse_document(document)
        assert stats.element_count == tree.element_count
        assert stats.max_depth == tree.max_depth

    def test_engine_invariants_on_dataset(self, name):
        document = GENERATORS[name].text()
        evaluator = TwigMEvaluator(QUERY_FOR[name])
        evaluator.evaluate(document)
        stats = evaluator.statistics
        assert evaluator.machine.stacks_empty()
        assert stats.pushes == stats.pops
        assert stats.live_entries == 0
        assert stats.peak_stack_entries <= stats.max_depth * evaluator.machine.size
