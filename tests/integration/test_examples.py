"""Smoke tests: every example script must run end-to-end and say what it promises."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "examples"
)
SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)


def run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


class TestExampleScripts:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "cell_8" in result.stdout
        assert "TwigM machine" in result.stdout
        assert "One-shot evaluation" in result.stdout

    def test_protein_pipeline(self):
        result = run_example("protein_pipeline.py", "--size-mb", "0.2")
        assert result.returncode == 0, result.stderr
        assert "//ProteinEntry[reference]/@id" in result.stdout
        assert "peak_alloc_mb" in result.stdout

    def test_stock_ticker(self):
        result = run_example("stock_ticker.py", "--updates", "120")
        assert result.returncode == 0, result.stderr
        assert "ACME quotes" in result.stdout
        assert "first alert" in result.stdout

    def test_recursive_documents(self):
        result = run_example("recursive_documents.py", "--depth", "6", "--max-steps", "3")
        assert result.returncode == 0, result.stderr
        assert "naive_records" in result.stdout
        assert "TwigM" in result.stdout

    def test_subscriptions(self):
        result = run_example("subscriptions.py", "--updates", "200")
        assert result.returncode == 0, result.stderr
        assert "acme-quotes" in result.stdout
        assert "speed-up" in result.stdout
        assert "eager emission" in result.stdout

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "protein_pipeline.py",
            "stock_ticker.py",
            "recursive_documents.py",
            "subscriptions.py",
        ],
    )
    def test_examples_exist_and_have_docstrings(self, script):
        path = os.path.join(EXAMPLES_DIR, script)
        assert os.path.exists(path)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        assert '"""' in source.split("\n", 2)[-1] or source.lstrip().startswith('#!/usr/bin/env python3')
        assert "def main()" in source
