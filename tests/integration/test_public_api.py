"""Tests of the top-level public API surface (what README documents)."""

from __future__ import annotations

import pytest

import repro
from repro import (
    ResultSet,
    Solution,
    SolutionKind,
    TwigMEvaluator,
    UnsupportedFeatureError,
    ViteXError,
    XPathSyntaxError,
    compile_query,
    evaluate,
    parse_xpath,
    stream_evaluate,
)


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_flow(self, simple_doc):
        results = evaluate("//book[author]/@id", simple_doc)
        assert isinstance(results, ResultSet)
        assert sorted(s.value for s in results) == ["b1", "b2"]
        assert all(isinstance(s, Solution) for s in results)

    def test_stream_evaluate_is_lazy(self, simple_doc):
        iterator = stream_evaluate("//book", simple_doc)
        first = next(iterator)
        assert first.kind is SolutionKind.ELEMENT

    def test_compile_once_run_many(self, simple_doc, recursive_doc):
        query = compile_query("//a//b")
        first = TwigMEvaluator(query).evaluate(recursive_doc)
        second = TwigMEvaluator(query).evaluate(simple_doc)
        assert len(first) == 5
        assert len(second) == 0

    def test_parse_xpath_exposed(self):
        path = parse_xpath("//a[b]")
        assert len(path.steps) == 1


class TestErrorHierarchy:
    def test_xpath_errors_are_vitex_errors(self):
        with pytest.raises(ViteXError):
            compile_query("//a[")
        with pytest.raises(XPathSyntaxError):
            compile_query("//a[")

    def test_unsupported_feature_is_vitex_error(self):
        with pytest.raises(UnsupportedFeatureError):
            compile_query("//a[count(b)=2]")

    def test_xml_errors_are_vitex_errors(self, simple_doc):
        with pytest.raises(ViteXError):
            evaluate("//a", "<a><b></a>")

    def test_catching_base_class_is_enough(self):
        for bad_call in (
            lambda: evaluate("//a[", "<a/>"),
            lambda: evaluate("//a", "<a>"),
            lambda: evaluate("//a/..", "<a/>"),
        ):
            with pytest.raises(ViteXError):
                bad_call()
