"""Tests of the top-level public API surface (what README documents)."""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.api
from repro import (
    ResultSet,
    Solution,
    SolutionKind,
    UnsupportedFeatureError,
    ViteXError,
    XPathSyntaxError,
    compile_query,
    evaluate,
    parse_xpath,
    stream_evaluate,
)

with warnings.catch_warnings():
    # The legacy class only warns on *construction*, but keep the import
    # explicit about its status.
    from repro import TwigMEvaluator

#: Every name the README documents as public.  This list is the contract:
#: a name disappearing from ``repro.__all__`` (or becoming unimportable)
#: fails this suite before it can break a downstream user.
REQUIRED_EXPORTS = frozenset(
    {
        # unified facade
        "Engine",
        "EngineConfig",
        "Match",
        "Query",
        "RemoteEngine",
        "RemoteSession",
        "RemoteSubscription",
        "Session",
        "connect",
        # evaluation helpers and result model
        "NodeRef",
        "ResultSet",
        "Solution",
        "SolutionKind",
        "Subscription",
        "compile_query",
        "evaluate",
        "evaluate_many",
        "parse_xpath",
        "stream_evaluate",
        # infinite-stream surface
        "DocumentStreamSession",
        "WindowStats",
        # legacy entry points (deprecated but still public)
        "MultiQueryEvaluator",
        "ServiceClient",
        "StreamSession",
        "TwigMEvaluator",
        # service + checkpoint surface
        "ServiceError",
        "dumps_snapshot",
        "loads_snapshot",
        # error hierarchy
        "CheckpointError",
        "DatasetError",
        "EngineError",
        "UnsupportedFeatureError",
        "ViteXError",
        "XMLSyntaxError",
        "XPathError",
        "XPathSyntaxError",
        # metadata
        "__version__",
    }
)


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_complete(self):
        """Every documented public name is exported — none silently missing."""
        missing = REQUIRED_EXPORTS - set(repro.__all__)
        assert not missing, f"public names missing from repro.__all__: {sorted(missing)}"

    def test_all_has_no_stowaways(self):
        """Conversely: nothing undocumented sneaks into ``__all__``."""
        extra = set(repro.__all__) - REQUIRED_EXPORTS
        assert not extra, f"undocumented names in repro.__all__: {sorted(extra)}"

    def test_all_is_sorted_and_unique(self):
        assert repro.__all__ == sorted(set(repro.__all__))

    def test_api_package_all_importable(self):
        for name in repro.api.__all__:
            assert hasattr(repro.api, name), name

    def test_facade_names_resolve_to_api_package(self):
        for name in ("Engine", "EngineConfig", "Match", "Query", "connect"):
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_historic_export_gap_is_closed(self):
        """The names PR 2–4 introduced but never re-exported at top level."""
        from repro import (  # noqa: F401
            CheckpointError,
            MultiQueryEvaluator,
            ServiceClient,
            StreamSession,
            dumps_snapshot,
            loads_snapshot,
        )

    def test_readme_quickstart_flow(self, simple_doc):
        results = evaluate("//book[author]/@id", simple_doc)
        assert isinstance(results, ResultSet)
        assert sorted(s.value for s in results) == ["b1", "b2"]
        assert all(isinstance(s, Solution) for s in results)

    def test_stream_evaluate_is_lazy(self, simple_doc):
        iterator = stream_evaluate("//book", simple_doc)
        first = next(iterator)
        assert first.kind is SolutionKind.ELEMENT

    def test_compile_once_run_many(self, simple_doc, recursive_doc):
        query = compile_query("//a//b")
        first = TwigMEvaluator(query).evaluate(recursive_doc)
        second = TwigMEvaluator(query).evaluate(simple_doc)
        assert len(first) == 5
        assert len(second) == 0

    def test_parse_xpath_exposed(self):
        path = parse_xpath("//a[b]")
        assert len(path.steps) == 1


class TestErrorHierarchy:
    def test_xpath_errors_are_vitex_errors(self):
        with pytest.raises(ViteXError):
            compile_query("//a[")
        with pytest.raises(XPathSyntaxError):
            compile_query("//a[")

    def test_unsupported_feature_is_vitex_error(self):
        with pytest.raises(UnsupportedFeatureError):
            compile_query("//a[count(b)=2]")

    def test_xml_errors_are_vitex_errors(self, simple_doc):
        with pytest.raises(ViteXError):
            evaluate("//a", "<a><b></a>")

    def test_catching_base_class_is_enough(self):
        for bad_call in (
            lambda: evaluate("//a[", "<a/>"),
            lambda: evaluate("//a", "<a>"),
            lambda: evaluate("//a/..", "<a/>"),
        ):
            with pytest.raises(ViteXError):
                bad_call()
