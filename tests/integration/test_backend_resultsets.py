"""Cross-backend result-set identity over the full workload corpus.

Acceptance property of the pluggable-backend refactor: for every dataset ×
query pair in the benchmark workload registry, the pure tokenizer and the
expat backend — each through its fused fast path and through the event
pipeline — return byte-identical solution sets.
"""

from __future__ import annotations

import pytest

from repro.core.engine import TwigMEvaluator
from repro.xmlstream.sax import iter_events
from repro.bench.workloads import iter_workloads

SCALE = 0.1  # small but structurally representative documents


def workload_cases():
    for workload in iter_workloads():
        for query in workload.queries:
            yield pytest.param(workload.name, query, id=f"{workload.name}:{query}")


@pytest.fixture(scope="module")
def documents():
    cache = {}
    for workload in iter_workloads():
        cache[workload.name] = workload.dataset(SCALE).text()
    return cache


@pytest.mark.parametrize("workload_name,query", list(workload_cases()))
def test_backends_produce_identical_result_sets(documents, workload_name, query):
    document = documents[workload_name]
    pure = TwigMEvaluator(query).evaluate(document, parser="pure")
    expat = TwigMEvaluator(query).evaluate(document, parser="expat")
    assert pure.keys() == expat.keys()

    # The event pipeline (push API) must agree with both fused paths.
    pushed = TwigMEvaluator(query)
    for event in iter_events(document, parser="pure"):
        pushed.feed(event)
    assert pushed.finish().keys() == pure.keys()
