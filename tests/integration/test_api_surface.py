"""The committed API-surface snapshot and the README snippets stay honest.

Mirrors the CI ``api-surface`` job so the gate also runs under plain
``pytest``: ``tools/check_api_surface.py`` must report no drift against the
committed ``api_surface.txt``, and every runnable python block in README.md
must execute cleanly against the live package.
"""

from __future__ import annotations

import os
import subprocess
import sys

ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC_DIR = os.path.join(ROOT, "src")


def run_tool(script: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(ROOT, "tools", script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=ROOT,
    )


class TestApiSurfaceSnapshot:
    def test_committed_snapshot_matches_live_package(self):
        result = run_tool("check_api_surface.py")
        assert result.returncode == 0, (
            "public API surface drifted from api_surface.txt — regenerate "
            "with `PYTHONPATH=src python tools/check_api_surface.py --write` "
            f"if intentional.\n{result.stderr}"
        )

    def test_snapshot_mentions_the_facade(self):
        with open(os.path.join(ROOT, "api_surface.txt"), encoding="utf-8") as handle:
            surface = handle.read()
        for needle in (
            "class repro.Engine",
            "class repro.Query",
            "class repro.Match",
            "repro.connect(",
            "[repro.api]",
        ):
            assert needle in surface, needle


class TestReadmeSnippets:
    def test_every_runnable_snippet_executes(self):
        result = run_tool("run_readme_snippets.py")
        assert result.returncode == 0, result.stderr
        assert "0 skipped" in result.stdout or "skipped" in result.stdout

    def test_readme_documents_migration_and_stability(self):
        with open(os.path.join(ROOT, "README.md"), encoding="utf-8") as handle:
            readme = handle.read()
        assert "## Migrating from the pre-1.1 API" in readme
        assert "## API stability policy" in readme
        assert "DeprecationWarning" in readme
