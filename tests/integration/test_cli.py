"""Integration tests for the ``vitex`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets.figures import FIGURE_1_QUERY, FIGURE_1_XML


@pytest.fixture
def figure1_file(tmp_path):
    path = tmp_path / "figure1.xml"
    path.write_text(FIGURE_1_XML, encoding="utf-8")
    return str(path)


class TestRunCommand:
    def test_run_prints_solutions_and_count(self, figure1_file, capsys):
        exit_code = main(["run", FIGURE_1_QUERY, figure1_file])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "1 solution(s)" in captured.out
        assert "cell_8" in captured.out

    def test_run_quiet(self, figure1_file, capsys):
        main(["run", FIGURE_1_QUERY, figure1_file, "--quiet"])
        captured = capsys.readouterr()
        assert "1 solution(s)" in captured.out
        assert "cell_8" not in captured.out

    def test_run_with_stats(self, figure1_file, capsys):
        main(["run", "//table", figure1_file, "--stats"])
        captured = capsys.readouterr()
        assert "pushes" in captured.out

    def test_run_with_fragments(self, figure1_file, capsys):
        main(["run", "//cell", figure1_file, "--fragments"])
        captured = capsys.readouterr()
        assert "<cell>" in captured.out

    def test_run_expat_backend(self, figure1_file, capsys):
        exit_code = main(["run", "//table", figure1_file, "--parser", "expat"])
        assert exit_code == 0
        assert "3 solution(s)" in capsys.readouterr().out

    def test_run_eager_flag_same_answers(self, figure1_file, capsys):
        main(["run", FIGURE_1_QUERY, figure1_file, "--eager"])
        assert "1 solution(s)" in capsys.readouterr().out

    def test_bad_query_reports_error(self, figure1_file, capsys):
        exit_code = main(["run", "//a[", figure1_file])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err

    def test_unsupported_query_reports_error(self, figure1_file, capsys):
        exit_code = main(["run", "//a[position()=1]", figure1_file])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err


class TestExplainCommand:
    def test_explain_shows_machine(self, capsys):
        exit_code = main(["explain", FIGURE_1_QUERY])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "TwigM machine" in captured.out
        assert "section" in captured.out
        assert "output" in captured.out


class TestGenerateCommand:
    @pytest.mark.parametrize("dataset", ["protein", "recursive", "auction", "newsfeed", "treebank"])
    def test_generate_writes_well_formed_file(self, dataset, tmp_path, capsys):
        output = tmp_path / f"{dataset}.xml"
        exit_code = main(["generate", dataset, str(output), "--size-mb", "0.05"])
        assert exit_code == 0
        assert output.exists()
        from repro.xmlstream.wellformed import check_well_formed

        assert check_well_formed(str(output)).well_formed
        assert "wrote" in capsys.readouterr().out


class TestBenchCommand:
    def test_bench_builder_linear_quick(self, capsys):
        exit_code = main(["bench", "builder-linear", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "E4" in captured.out

    def test_bench_incremental_latency_quick(self, capsys):
        exit_code = main(["bench", "incremental-latency", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "latency" in captured.out.lower()

    def test_bench_multiquery_quick_writes_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "BENCH_multiquery.json"
        exit_code = main(["bench", "multiquery", "--quick", "--json", str(target)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "M1" in captured.out
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["experiment"] == "multiquery"
        mixes = {row["mix"] for row in payload["rows"]}
        assert mixes == {"disjoint", "overlapping", "duplicate"}
        duplicate_rows = [
            row for row in payload["rows"]
            if row["mix"] == "duplicate" and row["queries"] > 1
        ]
        assert all(row["machines"] == 1 for row in duplicate_rows)


class TestWatchCommand:
    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            "# standing subscriptions\n"
            "tables: //table\n"
            "//cell\n"
            "\n",
            encoding="utf-8",
        )
        return str(path)

    def test_watch_streams_named_matches(self, query_file, figure1_file, capsys):
        exit_code = main(["watch", query_file, figure1_file])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[tables]" in captured.out
        assert "[q0]" in captured.out  # bare line was auto-named
        assert "tables: 3 solution(s)" in captured.out

    def test_watch_quiet_prints_totals_only(self, query_file, figure1_file, capsys):
        exit_code = main(["watch", query_file, figure1_file, "--quiet"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[tables]" not in captured.out
        assert "3 solution(s)" in captured.out

    def test_watch_expat_backend(self, query_file, figure1_file, capsys):
        exit_code = main(["watch", query_file, figure1_file, "--parser", "expat"])
        assert exit_code == 0
        assert "tables: 3 solution(s)" in capsys.readouterr().out

    def test_watch_bad_query_reports_error(self, tmp_path, figure1_file, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("//a[\n", encoding="utf-8")
        exit_code = main(["watch", str(path), figure1_file])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err

    def test_watch_empty_file_reports_error(self, tmp_path, figure1_file, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n", encoding="utf-8")
        exit_code = main(["watch", str(path), figure1_file])
        assert exit_code == 1
        assert "no queries" in capsys.readouterr().err


class TestWatchInterrupt:
    @pytest.fixture
    def query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text("tables: //table\ncells: //cell\n", encoding="utf-8")
        return str(path)

    def test_sigint_prints_counts_and_closes_engine(
        self, query_file, figure1_file, capsys, monkeypatch
    ):
        # Raise a *real* SIGINT mid-stream: the handler installed by the
        # watch command must convert it into the summary path (exit 130,
        # delivery counts, engine closed) instead of a traceback.
        import signal as signal_module

        from repro.core.builder import shared_compiled_cache
        from repro.core.multi import MultiQueryEvaluator

        baseline_cached = len(shared_compiled_cache)
        original_stream = MultiQueryEvaluator.stream

        def interrupted_stream(self, source, **kwargs):
            iterator = original_stream(self, source, **kwargs)
            yield next(iterator)
            signal_module.raise_signal(signal_module.SIGINT)
            yield from iterator  # the handler interrupts before this drains

        monkeypatch.setattr(MultiQueryEvaluator, "stream", interrupted_stream)
        exit_code = main(["watch", query_file, figure1_file])
        captured = capsys.readouterr()
        assert exit_code == 130
        assert "interrupted" in captured.err
        assert "solution(s)" in captured.out
        # close() ran: the compiled-query cache refs were released.
        assert len(shared_compiled_cache) == baseline_cached

    def test_sigint_handler_restored(self, query_file, figure1_file, capsys):
        import signal as signal_module

        before = signal_module.getsignal(signal_module.SIGINT)
        assert main(["watch", query_file, figure1_file]) == 0
        capsys.readouterr()
        assert signal_module.getsignal(signal_module.SIGINT) is before


class TestServiceCommands:
    def test_publish_unreachable_service_reports_error(self, tmp_path, capsys):
        document = tmp_path / "doc.xml"
        document.write_text("<a/>", encoding="utf-8")
        # Port 1 on loopback is essentially never listening.
        exit_code = main(
            ["publish", str(document), "--host", "127.0.0.1", "--port", "1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "cannot reach service" in captured.err

    def test_subscribe_unreachable_service_reports_error(self, capsys):
        exit_code = main(["subscribe", "//a", "--host", "127.0.0.1", "--port", "1"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "cannot reach service" in captured.err

    def test_publish_rejects_bad_chunk_size(self, tmp_path, capsys):
        document = tmp_path / "doc.xml"
        document.write_text("<a/>", encoding="utf-8")
        exit_code = main(["publish", str(document), "--chunk-size", "0"])
        assert exit_code == 1
        assert "chunk-size" in capsys.readouterr().err

    def test_serve_missing_watch_file_reports_error(self, tmp_path, capsys):
        exit_code = main(
            ["serve", "--watch", str(tmp_path / "empty.txt"), "--port", "0"]
        )
        assert exit_code == 1

    def test_publish_stream_flags_need_follow(self, tmp_path, capsys):
        document = tmp_path / "doc.xml"
        document.write_text("<a/>", encoding="utf-8")
        exit_code = main(["publish", str(document), "--retain-docs", "8"])
        assert exit_code == 1
        assert "--follow" in capsys.readouterr().err

    def test_publish_follow_rejects_no_finish(self, tmp_path, capsys):
        document = tmp_path / "doc.xml"
        document.write_text("<a/>", encoding="utf-8")
        exit_code = main(["publish", str(document), "--follow", "--no-finish"])
        assert exit_code == 1
        assert "no-finish" in capsys.readouterr().err

    def test_publish_follow_unreachable_service_reports_error(
        self, tmp_path, capsys
    ):
        document = tmp_path / "doc.xml"
        document.write_text("<a/>", encoding="utf-8")
        exit_code = main(
            ["publish", str(document), "--follow", "--host", "127.0.0.1", "--port", "1"]
        )
        assert exit_code == 1
        assert "cannot reach service" in capsys.readouterr().err


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "vitex-repro" in capsys.readouterr().out

    def test_build_parser_has_subcommands(self):
        parser = build_parser()
        assert parser.prog == "vitex"


#: Every verb that parses XML (or forwards a backend selection) must accept
#: the one shared ``--parser`` flag.
PARSING_VERBS = ("run", "watch", "serve", "resume", "publish", "bench")


def _subparsers():
    parser = build_parser()
    for action in parser._actions:  # noqa: SLF001 - argparse introspection
        if hasattr(action, "choices") and isinstance(action.choices, dict):
            return action.choices
    raise AssertionError("no subparsers found")


class TestSharedParserFlag:
    def test_every_parsing_verb_accepts_the_flag(self):
        subparsers = _subparsers()
        for verb in PARSING_VERBS:
            actions = [
                action
                for action in subparsers[verb]._actions
                if "--parser" in getattr(action, "option_strings", ())
            ]
            assert len(actions) == 1, f"vitex {verb} must accept --parser exactly once"

    def test_choices_stay_in_sync_with_engine_config(self):
        """The CLI spelling can never drift from the library's backends."""
        from repro.api import EngineConfig

        subparsers = _subparsers()
        for verb in PARSING_VERBS:
            action = next(
                action
                for action in subparsers[verb]._actions
                if "--parser" in getattr(action, "option_strings", ())
            )
            assert tuple(action.choices) == EngineConfig.PARSERS, verb

    def test_uniform_spelling_parses_on_every_verb(self):
        parser = build_parser()
        argv_by_verb = {
            "run": ["run", "//a", "f.xml"],
            "watch": ["watch", "q.txt", "f.xml"],
            "serve": ["serve"],
            "resume": ["resume", "ck.json"],
            "publish": ["publish", "f.xml"],
            "bench": ["bench", "pipeline"],
        }
        for verb, argv in argv_by_verb.items():
            for backend in ("pure", "native", "expat"):
                args = parser.parse_args(argv + ["--parser", backend])
                assert args.parser == backend, (verb, backend)
            args = parser.parse_args(argv)
            assert args.parser is None, f"{verb} default must defer to the verb"

    def test_run_expat_backend_works_end_to_end(self, figure1_file, capsys):
        exit_code = main(["run", FIGURE_1_QUERY, figure1_file, "--parser", "expat"])
        assert exit_code == 0
        assert "1 solution(s)" in capsys.readouterr().out
