"""Differential integration tests: TwigM vs naive vs DOM oracle on a fixed matrix.

Every (document, query) pair in the matrix is evaluated by the three engines;
they must produce identical canonical solution keys.  The matrix deliberately
mixes recursive documents, attribute/text outputs, value tests and boolean
predicate combinations — the places where streaming implementations usually
go wrong.
"""

from __future__ import annotations

import pytest

from repro.datasets.figures import FIGURE_1_XML
from repro.datasets.recursive import small_recursive_document
from tests.conftest import assert_engines_agree


DOCUMENTS = {
    "figure1": FIGURE_1_XML,
    "library": (
        "<library><book id='b1' lang='en'><title>Streams</title><author>Ada</author>"
        "<price>30.5</price></book><book id='b2'><title>Trees</title><author>Bob</author>"
        "<price currency='eur'>12</price></book>"
        "<magazine id='m1'><title>Streams</title></magazine></library>"
    ),
    "recursive": (
        "<a><a id='1'><b>x</b><a><b>y</b><c>z</c></a></a><b>top</b>"
        "<c><b>in c</b><a><c><b>deep</b></c></a></c></a>"
    ),
    "recursive_generated": small_recursive_document(section_depth=4, table_depth=4, seed=3),
    "mixed_text": (
        "<doc><p>alpha <em>beta</em> gamma</p><p>delta</p>"
        "<note lang='fr'>epsilon</note><note>zeta</note></doc>"
    ),
    "deep_chain": "<l1><l2><l3><l4><l5><x/></l5></l4></l3></l2></l1>",
    "empty_elements": "<r><a/><a></a><b><a/></b></r>",
}

QUERIES = [
    "//a",
    "//a//b",
    "//a/b",
    "//a//a//b",
    "//a[b]",
    "//a[b]//c",
    "//a[.//c]//b",
    "//a[@id]",
    "//a[@id='1']/b",
    "//*",
    "//*[b]",
    "/a//c",
    "//b/text()",
    "//a/@id",
    "//@id",
    "//section[author]//table[position]//cell",
    "//section//cell",
    "//table[not(position)]",
    "//book[author='Ada']/title",
    "//book[price>20]/@id",
    "//book[price<20 or @lang]/title/text()",
    "//book[title='Streams' and author]/@id",
    "//p[em]",
    "//note[@lang]/text()",
    "//note[not(@lang)]",
    "//l3//x",
    "/l1/l2/l3/l4/l5/x",
    "//r/a",
    "//b[a]",
    "//doc/p/em/text()",
]


@pytest.mark.parametrize("doc_name", sorted(DOCUMENTS))
@pytest.mark.parametrize("query", QUERIES)
def test_three_engines_agree(doc_name, query):
    assert_engines_agree(query, DOCUMENTS[doc_name])
