"""Property-based tests (hypothesis): random documents × random queries.

Two kinds of properties are checked:

* **Differential correctness** — for any document in the supported XML subset
  and any query in XP{/,//,*,[]}, the streaming TwigM engine, the naive
  enumerating streamer and the random-access DOM oracle return the same
  solution set.
* **Engine invariants** — stacks are empty at end of document, push/pop
  counts balance, levels on any stack increase strictly bottom-to-top, and
  the peak number of stack entries never exceeds document depth × query size.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.dom_eval import evaluate_with_dom
from repro.baselines.naive import NaiveStreamingEvaluator
from repro.core.engine import TwigMEvaluator, evaluate
from repro.core.multi import MultiQueryEvaluator
from repro.datasets.randomtree import RandomTreeConfig, RandomTreeGenerator
from repro.xmlstream.dom import parse_document
from repro.xmlstream.tokenizer import tokenize
from repro.xpath.generator import QueryGenerator, QueryGeneratorConfig

SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Documents and queries share a deliberately tiny vocabulary so that name
# collisions (and therefore recursive nesting and multi-matches) are frequent.
_DOC_CONFIG = RandomTreeConfig(
    vocabulary=("a", "b", "c"),
    attributes=("id", "key"),
    values=("1", "2"),
    max_depth=6,
    max_children=3,
)
_QUERY_CONFIG = QueryGeneratorConfig(
    vocabulary=("a", "b", "c"),
    attributes=("id", "key"),
    values=("1", "2"),
    min_steps=1,
    max_steps=4,
)


def make_document(seed: int) -> str:
    return RandomTreeGenerator(config=_DOC_CONFIG, seed=seed).text()


def make_query(seed: int) -> str:
    return QueryGenerator(config=_QUERY_CONFIG, seed=seed).generate_expression()


class TestDifferentialProperties:
    @SETTINGS
    @given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
    def test_twigm_matches_dom_oracle(self, doc_seed, query_seed):
        document = make_document(doc_seed)
        query = make_query(query_seed)
        assert evaluate(query, document).keys() == evaluate_with_dom(query, document).keys()

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
    def test_naive_matches_dom_oracle(self, doc_seed, query_seed):
        document = make_document(doc_seed)
        query = make_query(query_seed)
        naive = NaiveStreamingEvaluator(query).evaluate(document)
        assert naive.keys() == evaluate_with_dom(query, document).keys()

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
    def test_eager_emission_matches_lazy(self, doc_seed, query_seed):
        document = make_document(doc_seed)
        query = make_query(query_seed)
        lazy = evaluate(query, document).keys()
        eager = evaluate(query, document, eager_emission=True).keys()
        assert lazy == eager

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
    def test_parser_backends_agree(self, doc_seed, query_seed):
        document = make_document(doc_seed)
        query = make_query(query_seed)
        native = evaluate(query, document, parser="native").keys()
        expat = evaluate(query, document, parser="expat").keys()
        assert native == expat

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000), chunk=st.integers(1, 64))
    def test_chunking_does_not_change_answers(self, doc_seed, query_seed, chunk):
        document = make_document(doc_seed)
        query = make_query(query_seed)
        whole = evaluate(query, document).keys()
        chunks = [document[i:i + chunk] for i in range(0, len(document), chunk)]
        chunked = evaluate(query, iter(chunks)).keys()
        assert whole == chunked


class TestMultiQueryProperties:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        doc_seed=st.integers(0, 10_000),
        query_seed_a=st.integers(0, 10_000),
        query_seed_b=st.integers(0, 10_000),
    )
    def test_shared_pass_matches_individual_passes(self, doc_seed, query_seed_a, query_seed_b):
        document = make_document(doc_seed)
        query_a = make_query(query_seed_a)
        query_b = make_query(query_seed_b)
        multi = MultiQueryEvaluator()
        multi.register(query_a, name="a")
        multi.register(query_b, name="b")
        combined = multi.evaluate(document)
        assert combined["a"].keys() == evaluate(query_a, document).keys()
        assert combined["b"].keys() == evaluate(query_b, document).keys()


class TestEngineInvariants:
    @SETTINGS
    @given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
    def test_stacks_empty_and_counters_balanced(self, doc_seed, query_seed):
        document = make_document(doc_seed)
        query = make_query(query_seed)
        evaluator = TwigMEvaluator(query)
        evaluator.evaluate(document)
        assert evaluator.machine.stacks_empty()
        stats = evaluator.statistics
        assert stats.pushes == stats.pops
        assert stats.live_entries == 0

    @SETTINGS
    @given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
    def test_peak_entries_bounded_by_depth_times_query_size(self, doc_seed, query_seed):
        document = make_document(doc_seed)
        query = make_query(query_seed)
        evaluator = TwigMEvaluator(query)
        evaluator.evaluate(document)
        depth = parse_document(document).max_depth
        assert evaluator.statistics.peak_stack_entries <= depth * evaluator.machine.size

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
    def test_stack_levels_strictly_increase(self, doc_seed, query_seed):
        document = make_document(doc_seed)
        query = make_query(query_seed)
        evaluator = TwigMEvaluator(query)
        for event in tokenize(document):
            evaluator.feed(event)
            for node in evaluator.machine.nodes:
                levels = [entry.level for entry in node.stack.entries]
                assert levels == sorted(levels)
                assert len(levels) == len(set(levels))

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(doc_seed=st.integers(0, 10_000), query_seed=st.integers(0, 10_000))
    def test_solutions_unique_and_in_document_range(self, doc_seed, query_seed):
        document = make_document(doc_seed)
        query = make_query(query_seed)
        result = evaluate(query, document)
        keys = result.keys()
        assert len(keys) == len(set(keys))
        element_count = parse_document(document).element_count
        for solution in result:
            assert 0 <= solution.node.order < element_count


class TestSolutionSubsetProperties:
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(doc_seed=st.integers(0, 10_000), seed=st.integers(0, 10_000))
    def test_predicate_only_restricts_results(self, doc_seed, seed):
        """Adding a predicate can only shrink the result set."""
        rng = random.Random(seed)
        tag = rng.choice(["a", "b", "c"])
        pred = rng.choice(["a", "b", "c", "@id"])
        document = make_document(doc_seed)
        without = set(evaluate(f"//{tag}", document).keys())
        with_pred = set(evaluate(f"//{tag}[{pred}]", document).keys())
        assert with_pred <= without

    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(doc_seed=st.integers(0, 10_000), seed=st.integers(0, 10_000))
    def test_child_axis_results_subset_of_descendant(self, doc_seed, seed):
        rng = random.Random(seed)
        outer = rng.choice(["a", "b", "c"])
        inner = rng.choice(["a", "b", "c"])
        document = make_document(doc_seed)
        child = set(evaluate(f"//{outer}/{inner}", document).keys())
        descendant = set(evaluate(f"//{outer}//{inner}", document).keys())
        assert child <= descendant

    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(doc_seed=st.integers(0, 10_000), seed=st.integers(0, 10_000))
    def test_negated_predicate_partitions_matches(self, doc_seed, seed):
        rng = random.Random(seed)
        tag = rng.choice(["a", "b", "c"])
        pred = rng.choice(["a", "b", "@id"])
        document = make_document(doc_seed)
        base = set(evaluate(f"//{tag}", document).keys())
        positive = set(evaluate(f"//{tag}[{pred}]", document).keys())
        negative = set(evaluate(f"//{tag}[not({pred})]", document).keys())
        assert positive | negative == base
        assert positive & negative == set()
