"""Integration tests for streaming-specific behaviour.

These cover the three requirements the paper's motivation section lists for
streaming environments: single sequential scan, incremental result
production, and scalable memory.
"""

from __future__ import annotations

from repro.core.engine import TwigMEvaluator, stream_evaluate
from repro.datasets.newsfeed import NewsFeedConfig, NewsFeedGenerator
from repro.datasets.protein import ProteinConfig, ProteinDatabaseGenerator
from repro.xmlstream.events import EndDocument, StartElement
from repro.xmlstream.tokenizer import tokenize


class TestSingleSequentialScan:
    def test_engine_consumes_each_event_exactly_once(self, simple_doc):
        """The evaluator works from a generator that cannot be rewound."""

        consumed = []

        def one_shot_events():
            for event in tokenize(simple_doc):
                consumed.append(event.position)
                yield event

        evaluator = TwigMEvaluator("//book[author]/@id")
        for event in one_shot_events():
            evaluator.feed(event)
        result = evaluator.finish()
        assert sorted(s.value for s in result) == ["b1", "b2"]
        assert consumed == sorted(consumed)
        assert len(consumed) == len(set(consumed))

    def test_results_identical_to_buffered_run(self, simple_doc):
        streamed = sorted(s.value for s in stream_evaluate("//book/@id", simple_doc))
        evaluator = TwigMEvaluator("//book/@id")
        buffered = sorted(s.value for s in evaluator.evaluate(simple_doc))
        assert streamed == buffered


class TestIncrementalResults:
    def test_first_solution_emitted_early_in_the_stream(self):
        generator = NewsFeedGenerator(NewsFeedConfig(updates=500, first_match_at=3), seed=9)
        document = generator.text()
        events = list(tokenize(document))
        evaluator = TwigMEvaluator(generator.CANONICAL_QUERY)
        first_emission_index = None
        for index, event in enumerate(events):
            if evaluator.feed(event) and first_emission_index is None:
                first_emission_index = index
        assert first_emission_index is not None
        # The first matching update sits near the start of a 500-update feed,
        # so its solution must be known within the first few percent of events.
        assert first_emission_index < len(events) * 0.05

    def test_solution_count_matches_plan(self):
        generator = NewsFeedGenerator(NewsFeedConfig(updates=300), seed=10)
        count = sum(1 for _ in stream_evaluate(generator.CANONICAL_QUERY, generator.chunks()))
        assert count == generator.expected_symbol_updates("ACME")

    def test_emission_order_is_stream_order_for_independent_matches(self):
        document = "<r>" + "".join(f"<x n='{i}'/>" for i in range(20)) + "</r>"
        values = [s.value for s in stream_evaluate("//x/@n", document)]
        assert values == [str(i) for i in range(20)]


class TestBoundedState:
    def test_live_state_does_not_grow_with_stream_length(self):
        query = "//ProteinEntry[reference]/@id"
        small = ProteinDatabaseGenerator(ProteinConfig(entries=40), seed=6)
        large = ProteinDatabaseGenerator(ProteinConfig(entries=400), seed=6)

        def peak_state(generator):
            evaluator = TwigMEvaluator(query)
            evaluator.evaluate(generator.chunks())
            return evaluator.statistics.peak_stack_entries

        assert peak_state(large) <= peak_state(small) + 2

    def test_peak_candidates_track_pending_predicates_not_document_size(self):
        # All references sit inside the entry, so candidates never pile up
        # beyond one entry's worth regardless of entry count.
        query = "//ProteinEntry[reference]/@id"
        generator = ProteinDatabaseGenerator(ProteinConfig(entries=200), seed=6)
        evaluator = TwigMEvaluator(query)
        evaluator.evaluate(generator.chunks())
        assert evaluator.statistics.peak_candidate_count <= 4

    def test_stack_depth_tracks_document_depth(self):
        def nested(depth):
            return "".join(f"<d{i}>" for i in range(depth)) + "<x/>" + "".join(
                f"</d{i}>" for i in reversed(range(depth))
            )

        evaluator = TwigMEvaluator("//x")
        evaluator.evaluate(nested(30))
        shallow_peak = evaluator.statistics.peak_stack_entries
        evaluator2 = TwigMEvaluator("//x")
        evaluator2.evaluate(nested(31))
        assert evaluator2.statistics.peak_stack_entries <= shallow_peak + 1


class TestEventStreamEdgeCases:
    def test_document_with_only_root(self):
        evaluator = TwigMEvaluator("//a")
        result = evaluator.evaluate("<a/>")
        assert len(result) == 1

    def test_end_document_event_finalises(self, simple_doc):
        evaluator = TwigMEvaluator("//book")
        for event in tokenize(simple_doc):
            evaluator.feed(event)
            if isinstance(event, EndDocument):
                break
        result = evaluator.finish()
        assert len(result) == 2

    def test_events_without_document_markers(self):
        # Hand-built event lists (no StartDocument/EndDocument) also work.
        events = [event for event in tokenize("<a><b/></a>") if isinstance(event, StartElement) or event.__class__.__name__ == "EndElement"]
        evaluator = TwigMEvaluator("//b")
        for event in events:
            evaluator.feed(event)
        assert len(evaluator.finish()) == 1
