"""Unit tests for the shared exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    BenchmarkError,
    DatasetError,
    EncodingError,
    EngineError,
    StreamStateError,
    UnsupportedFeatureError,
    ViteXError,
    XMLError,
    XMLSyntaxError,
    XPathError,
    XPathSyntaxError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            XMLError,
            XMLSyntaxError,
            EncodingError,
            XPathError,
            XPathSyntaxError,
            UnsupportedFeatureError,
            EngineError,
            StreamStateError,
            DatasetError,
            BenchmarkError,
        ],
    )
    def test_everything_derives_from_vitex_error(self, exception_type):
        assert issubclass(exception_type, ViteXError)

    def test_xml_syntax_error_is_xml_error(self):
        assert issubclass(XMLSyntaxError, XMLError)

    def test_xpath_syntax_error_is_xpath_error(self):
        assert issubclass(XPathSyntaxError, XPathError)
        assert issubclass(UnsupportedFeatureError, XPathError)

    def test_stream_state_error_is_engine_error(self):
        assert issubclass(StreamStateError, EngineError)


class TestXMLSyntaxErrorFormatting:
    def test_message_with_line_and_column(self):
        error = XMLSyntaxError("broken tag", line=12, column=5)
        assert error.line == 12
        assert error.column == 5
        assert "line 12" in str(error)
        assert "column 5" in str(error)

    def test_message_with_line_only(self):
        error = XMLSyntaxError("broken tag", line=3)
        assert "line 3" in str(error)
        assert "column" not in str(error)

    def test_message_without_location(self):
        error = XMLSyntaxError("broken tag")
        assert str(error) == "broken tag"


class TestXPathSyntaxErrorFormatting:
    def test_pointer_rendering(self):
        error = XPathSyntaxError("unexpected ']'", position=4, expression="//a[]")
        text = str(error)
        assert "//a[]" in text
        assert "^" in text
        # The caret lines up with the reported position.
        caret_line = text.splitlines()[-1]
        assert caret_line.index("^") - 2 == 4  # two-space indent before the expression

    def test_message_without_expression(self):
        error = XPathSyntaxError("bad token", position=None, expression=None)
        assert str(error) == "bad token"
