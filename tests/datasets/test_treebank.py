"""Tests for the treebank-style recursive parse-tree generator."""

from __future__ import annotations

import pytest

from repro.core.engine import evaluate
from repro.baselines.dom_eval import evaluate_with_dom
from repro.datasets.treebank import TreebankConfig, TreebankGenerator, treebank_of
from repro.errors import DatasetError
from repro.xmlstream.dom import parse_document
from repro.xmlstream.paths import summarize_structure
from repro.xmlstream.wellformed import check_well_formed


class TestGeneration:
    def test_well_formed_and_deterministic(self):
        generator = treebank_of(sentences=20, seed=3)
        text = generator.text()
        assert check_well_formed(text).well_formed
        assert text == generator.text()

    def test_sentence_count(self):
        generator = treebank_of(sentences=12, seed=1)
        document = parse_document(generator.text())
        assert len(document.find_all("sentence")) == 12

    def test_grammar_tags_are_recursive(self):
        generator = treebank_of(sentences=40, max_depth=14, seed=2)
        summary = summarize_structure(parse_document(generator.text()))
        # The hallmark of treebank data: grammatical categories nest inside
        # themselves (NP within NP, S within S, ...).
        assert {"NP", "VP"} & set(summary.recursive_tags)
        assert summary.max_depth > 8

    def test_max_depth_bounds_nesting(self):
        shallow = parse_document(treebank_of(sentences=30, max_depth=6, seed=2).text())
        deep = parse_document(treebank_of(sentences=30, max_depth=18, seed=2).text())
        assert deep.max_depth > shallow.max_depth
        # The cap plus the bounded tail of terminal productions.
        assert shallow.max_depth <= 6 + 6

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            TreebankGenerator(TreebankConfig(sentences=0))
        with pytest.raises(DatasetError):
            TreebankGenerator(TreebankConfig(max_depth=1))
        with pytest.raises(DatasetError):
            TreebankGenerator(TreebankConfig(recursion_bias=1.5))


class TestQueriesOverTreebank:
    @pytest.mark.parametrize(
        "query",
        [
            "//S//NP//NN",
            "//NP[PP]//NN/text()",
            "//VP//VP//VB",
            "//S[VP/VB]//NP[not(PP)]/NN",
            "//sentence//PP//NNP",
        ],
    )
    def test_twigm_matches_oracle(self, query):
        text = treebank_of(sentences=25, seed=5).text()
        assert evaluate(query, text).keys() == evaluate_with_dom(query, text).keys()

    def test_descendant_queries_find_nested_matches(self):
        text = treebank_of(sentences=30, seed=6).text()
        nested_np = evaluate("//NP//NP", text)
        assert len(nested_np) > 0
