"""Tests for the embedded paper-figure documents."""

from __future__ import annotations

from repro.datasets.figures import (
    FIGURE_1_CELL8_MATCH_COUNT,
    FIGURE_1_LINES,
    FIGURE_1_QUERY,
    FIGURE_1_XML,
    PROTEIN_EXAMPLE_QUERY,
    figure_1_dataset,
    figure_1_expected_solution_lines,
)
from repro.xmlstream.dom import parse_document
from repro.xmlstream.wellformed import check_well_formed
from repro.xpath.normalize import compile_query


class TestFigure1:
    def test_well_formed(self):
        assert check_well_formed(FIGURE_1_XML).well_formed

    def test_element_inventory(self):
        document = parse_document(FIGURE_1_XML)
        tags = sorted(element.tag for element in document.iter())
        assert tags == sorted(
            ["book", "section", "section", "section", "table", "table", "table", "cell", "position", "author"]
        )

    def test_start_tag_lines(self):
        document = parse_document(FIGURE_1_XML)
        cell = document.find_all("cell")[0]
        author = document.find_all("author")[0]
        assert cell.line == FIGURE_1_LINES["cell_8"]
        assert author.line == FIGURE_1_LINES["author_15"]

    def test_match_count_constant(self):
        # 3 sections × 3 tables around cell_8.
        assert FIGURE_1_CELL8_MATCH_COUNT == 9

    def test_expected_solution_lines(self):
        assert figure_1_expected_solution_lines() == [8]

    def test_dataset_wrapper_round_trips(self):
        dataset = figure_1_dataset()
        assert dataset.text() == FIGURE_1_XML


class TestPaperQueries:
    def test_walkthrough_query_compiles(self):
        tree = compile_query(FIGURE_1_QUERY)
        assert tree.size == 5

    def test_protein_example_query_compiles(self):
        tree = compile_query(PROTEIN_EXAMPLE_QUERY)
        assert tree.size == 3
        assert tree.output_node.label == "id"
