"""Unit tests for the dataset generator framework."""

from __future__ import annotations

import pytest

from repro.datasets.base import DatasetGenerator, StringDataset, XMLWriter, chunked
from repro.errors import DatasetError


class TestXMLWriter:
    def test_simple_document(self):
        writer = XMLWriter()
        writer.start("a", {"id": 1})
        writer.element("b", "text")
        writer.end("a")
        assert writer.drain() == '<a id="1"><b>text</b></a>'

    def test_escaping_in_text_and_attributes(self):
        writer = XMLWriter()
        writer.start("a", {"title": 'x "<&>" y'})
        writer.text("1 < 2 & 3 > 2")
        writer.end()
        output = writer.drain()
        assert 'title="x &quot;&lt;&amp;&gt;&quot; y"' in output
        assert "1 &lt; 2 &amp; 3 &gt; 2" in output

    def test_mismatched_end_rejected(self):
        writer = XMLWriter()
        writer.start("a")
        with pytest.raises(DatasetError):
            writer.end("b")

    def test_end_without_open_rejected(self):
        with pytest.raises(DatasetError):
            XMLWriter().end()

    def test_open_depth_tracking(self):
        writer = XMLWriter()
        assert writer.open_depth == 0
        writer.start("a")
        writer.start("b")
        assert writer.open_depth == 2
        writer.end()
        assert writer.open_depth == 1

    def test_drain_clears_buffer(self):
        writer = XMLWriter()
        writer.element("a")
        assert writer.drain() == "<a></a>"
        assert writer.drain() == ""

    def test_pending_size(self):
        writer = XMLWriter()
        writer.element("abc")
        assert writer.pending_size() == len("<abc></abc>")


class TestStringDataset:
    def test_chunks_reassemble(self):
        dataset = StringDataset("<a>" + "x" * 1000 + "</a>", chunk_size=64)
        chunks = list(dataset.chunks())
        assert len(chunks) > 1
        assert "".join(chunks) == dataset.text()

    def test_invalid_chunk_size(self):
        with pytest.raises(DatasetError):
            StringDataset("<a/>", chunk_size=0)

    def test_size_bytes(self):
        dataset = StringDataset("<a>é</a>")
        assert dataset.size_bytes() == len("<a>é</a>".encode("utf-8"))

    def test_write_to_file(self, tmp_path):
        dataset = StringDataset("<a>content</a>")
        path = tmp_path / "out.xml"
        written = dataset.write_to(path)
        assert written == len("<a>content</a>")
        assert path.read_text(encoding="utf-8") == "<a>content</a>"


class TestChunked:
    def test_groups_small_parts(self):
        parts = ["ab"] * 100
        chunks = list(chunked(parts, chunk_size=32))
        assert all(len(chunk) >= 32 for chunk in chunks[:-1])
        assert "".join(chunks) == "ab" * 100

    def test_empty_input(self):
        assert list(chunked([], chunk_size=10)) == []


class TestBaseGenerator:
    def test_chunks_is_abstract(self):
        with pytest.raises(NotImplementedError):
            list(DatasetGenerator().chunks())

    def test_reset_reseeds_rng(self):
        generator = DatasetGenerator(seed=5)
        first = generator.rng.random()
        generator.reset()
        assert generator.rng.random() == first
