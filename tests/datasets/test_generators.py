"""Tests for the synthetic dataset generators (protein, recursive, auction, news)."""

from __future__ import annotations

import pytest

from repro.core.engine import evaluate
from repro.datasets.auction import AuctionConfig, AuctionGenerator
from repro.datasets.newsfeed import NewsFeedConfig, NewsFeedGenerator, ticker_stream
from repro.datasets.protein import ProteinConfig, ProteinDatabaseGenerator, protein_dataset_of_size
from repro.datasets.randomtree import RandomTreeConfig, RandomTreeGenerator, random_documents
from repro.datasets.recursive import (
    RecursiveBookGenerator,
    RecursiveConfig,
    small_recursive_document,
)
from repro.errors import DatasetError
from repro.xmlstream.dom import parse_document
from repro.xmlstream.paths import summarize_structure
from repro.xmlstream.wellformed import check_well_formed


ALL_GENERATORS = [
    ProteinDatabaseGenerator(ProteinConfig(entries=30), seed=1),
    RecursiveBookGenerator(RecursiveConfig(section_depth=3, table_depth=3), seed=2),
    AuctionGenerator(AuctionConfig(items=15, people=8, open_auctions=8), seed=3),
    NewsFeedGenerator(NewsFeedConfig(updates=60), seed=4),
    RandomTreeGenerator(seed=5),
]


class TestCommonGeneratorProperties:
    @pytest.mark.parametrize("generator", ALL_GENERATORS, ids=lambda g: g.name)
    def test_output_is_well_formed(self, generator):
        assert check_well_formed(generator.text()).well_formed

    @pytest.mark.parametrize("generator", ALL_GENERATORS, ids=lambda g: g.name)
    def test_generation_is_deterministic(self, generator):
        assert generator.text() == generator.text()

    @pytest.mark.parametrize("generator", ALL_GENERATORS, ids=lambda g: g.name)
    def test_chunks_match_text(self, generator):
        assert "".join(generator.chunks()) == generator.text()

    def test_different_seeds_give_different_documents(self):
        a = ProteinDatabaseGenerator(ProteinConfig(entries=5), seed=1).text()
        b = ProteinDatabaseGenerator(ProteinConfig(entries=5), seed=2).text()
        assert a != b


class TestProteinDataset:
    def test_entry_count(self):
        generator = ProteinDatabaseGenerator(ProteinConfig(entries=25), seed=1)
        document = parse_document(generator.text())
        assert len(document.find_all("ProteinEntry")) == 25

    def test_every_entry_has_id_attribute(self):
        generator = ProteinDatabaseGenerator(ProteinConfig(entries=10), seed=1)
        document = parse_document(generator.text())
        assert all(entry.get("id") for entry in document.find_all("ProteinEntry"))

    def test_reference_probability_zero_and_one(self):
        none = ProteinDatabaseGenerator(
            ProteinConfig(entries=10, reference_probability=0.0), seed=1
        ).text()
        all_refs = ProteinDatabaseGenerator(
            ProteinConfig(entries=10, reference_probability=1.0), seed=1
        ).text()
        assert len(evaluate("//ProteinEntry[reference]", none)) == 0
        assert len(evaluate("//ProteinEntry[reference]", all_refs)) == 10

    def test_paper_query_answers_match_reference_probability(self):
        generator = ProteinDatabaseGenerator(
            ProteinConfig(entries=40, reference_probability=0.5), seed=7
        )
        text = generator.text()
        with_refs = len(evaluate("//ProteinEntry[reference]/@id", text))
        total = len(evaluate("//ProteinEntry/@id", text))
        assert total == 40
        assert 0 < with_refs < 40

    def test_target_bytes_scaling(self):
        small = protein_dataset_of_size(50 * 1024, seed=1).size_bytes()
        large = protein_dataset_of_size(200 * 1024, seed=1).size_bytes()
        assert small >= 50 * 1024
        assert large >= 200 * 1024
        assert large > 2 * small

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            ProteinDatabaseGenerator(ProteinConfig(entries=0))
        with pytest.raises(DatasetError):
            ProteinDatabaseGenerator(ProteinConfig(target_bytes=10))
        with pytest.raises(DatasetError):
            ProteinDatabaseGenerator(ProteinConfig(reference_probability=1.5))


class TestRecursiveDataset:
    def test_sections_nest_recursively(self):
        text = RecursiveBookGenerator(
            RecursiveConfig(section_depth=4, table_depth=3), seed=1
        ).text()
        summary = summarize_structure(parse_document(text))
        assert "section" in summary.recursive_tags
        assert "table" in summary.recursive_tags

    def test_depth_controls_nesting(self):
        shallow = parse_document(small_recursive_document(section_depth=2, table_depth=2))
        deep = parse_document(small_recursive_document(section_depth=6, table_depth=6))
        assert deep.max_depth > shallow.max_depth

    def test_certain_probabilities_produce_expected_predicates(self):
        text = small_recursive_document(
            section_depth=3, table_depth=3, author_probability=1.0, position_probability=1.0
        )
        assert len(evaluate("//section[author]", text)) == 3
        assert len(evaluate("//table[position]", text)) == 3
        no_preds = small_recursive_document(
            section_depth=3, table_depth=3, author_probability=0.0, position_probability=0.0
        )
        assert len(evaluate("//section[author]", no_preds)) == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            RecursiveBookGenerator(RecursiveConfig(section_depth=0))
        with pytest.raises(DatasetError):
            RecursiveBookGenerator(RecursiveConfig(author_probability=2.0))


class TestAuctionDataset:
    def test_counts(self):
        generator = AuctionGenerator(AuctionConfig(items=12, people=7, open_auctions=9), seed=2)
        document = parse_document(generator.text())
        assert len(document.find_all("item")) == 12
        assert len(document.find_all("person")) == 7
        assert len(document.find_all("open_auction")) == 9

    def test_items_have_prices_and_names(self):
        generator = AuctionGenerator(AuctionConfig(items=10, people=5, open_auctions=5), seed=2)
        text = generator.text()
        assert len(evaluate("//item[price and name]", text)) == 10

    def test_description_recursion_present(self):
        generator = AuctionGenerator(
            AuctionConfig(items=30, people=5, open_auctions=5, description_depth=3), seed=3
        )
        summary = summarize_structure(parse_document(generator.text()))
        assert "parlist" in summary.recursive_tags or "listitem" in summary.recursive_tags

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            AuctionGenerator(AuctionConfig(items=0))


class TestNewsFeedDataset:
    def test_update_count(self):
        generator = NewsFeedGenerator(NewsFeedConfig(updates=50), seed=3)
        assert len(evaluate("//update", generator.text())) == 50

    def test_plan_predicts_engine_answer(self):
        generator = NewsFeedGenerator(NewsFeedConfig(updates=120), seed=5)
        expected = generator.expected_symbol_updates("ACME")
        got = len(evaluate(generator.CANONICAL_QUERY, generator.text()))
        assert got == expected
        assert expected >= 1

    def test_first_match_position_honoured(self):
        config = NewsFeedConfig(updates=50, first_match_at=7)
        generator = NewsFeedGenerator(config, seed=3)
        index = generator.first_symbol_update_index("ACME")
        assert index is not None
        assert index <= 7

    def test_ticker_stream_helper(self):
        generator = ticker_stream(updates=20, seed=1)
        assert len(evaluate("//update", generator.text())) == 20

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            NewsFeedGenerator(NewsFeedConfig(updates=0))
        with pytest.raises(DatasetError):
            NewsFeedGenerator(NewsFeedConfig(updates=10, first_match_at=20))


class TestRandomTreeDataset:
    def test_documents_are_distinct(self):
        documents = random_documents(10, seed=3)
        assert len(set(documents)) > 1

    def test_max_depth_respected(self):
        config = RandomTreeConfig(max_depth=3)
        for seed in range(10):
            text = RandomTreeGenerator(config=config, seed=seed).text()
            assert parse_document(text).max_depth <= 3

    def test_vocabulary_respected(self):
        config = RandomTreeConfig(vocabulary=("only",))
        document = parse_document(RandomTreeGenerator(config=config, seed=1).text())
        assert {element.tag for element in document.iter()} == {"only"}

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            RandomTreeGenerator(RandomTreeConfig(vocabulary=()))
        with pytest.raises(DatasetError):
            RandomTreeGenerator(RandomTreeConfig(branch_probability=3.0))
