"""Unit tests for the streaming event model."""

from __future__ import annotations

from repro.xmlstream.events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    EventRecorder,
    EventStatistics,
    StartDocument,
    StartElement,
    element_events,
    is_structural,
)


def _sample_events():
    return [
        StartDocument(position=0),
        StartElement(position=1, name="a", level=1, attributes=(("id", "1"),)),
        Characters(position=2, text="hello", level=1),
        StartElement(position=3, name="b", level=2),
        EndElement(position=4, name="b", level=2),
        Comment(position=5, text="note", level=1),
        EndElement(position=6, name="a", level=1),
        EndDocument(position=7),
    ]


class TestStartElement:
    def test_attribute_dict(self):
        event = StartElement(position=0, name="a", level=1, attributes=(("x", "1"), ("y", "2")))
        assert event.attribute_dict() == {"x": "1", "y": "2"}

    def test_get_present_attribute(self):
        event = StartElement(position=0, name="a", level=1, attributes=(("x", "1"),))
        assert event.get("x") == "1"

    def test_get_missing_attribute_returns_default(self):
        event = StartElement(position=0, name="a", level=1)
        assert event.get("x") is None
        assert event.get("x", "fallback") == "fallback"

    def test_events_are_immutable(self):
        event = StartElement(position=0, name="a", level=1)
        try:
            event.name = "b"  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover - would indicate a mutable dataclass
            raise AssertionError("StartElement should be frozen")


class TestStructuralHelpers:
    def test_is_structural(self):
        assert is_structural(StartElement(position=0, name="a", level=1))
        assert is_structural(EndElement(position=0, name="a", level=1))
        assert not is_structural(Characters(position=0, text="x", level=1))
        assert not is_structural(StartDocument(position=0))

    def test_element_events_filters(self):
        structural = list(element_events(_sample_events()))
        assert len(structural) == 4
        assert all(is_structural(event) for event in structural)


class TestEventStatistics:
    def test_counts_elements_and_attributes(self):
        stats = EventStatistics.from_events(_sample_events())
        assert stats.start_elements == 2
        assert stats.end_elements == 2
        assert stats.attributes == 1
        assert stats.element_count == 2

    def test_tracks_depth_and_text(self):
        stats = EventStatistics.from_events(_sample_events())
        assert stats.max_depth == 2
        assert stats.characters == 1
        assert stats.text_length == len("hello")

    def test_tag_histogram(self):
        stats = EventStatistics.from_events(_sample_events())
        assert stats.tag_names == {"a": 1, "b": 1}

    def test_summary_keys(self):
        summary = EventStatistics.from_events(_sample_events()).summary()
        assert summary["elements"] == 2
        assert summary["distinct_tags"] == 2
        assert summary["max_depth"] == 2


class TestEventRecorder:
    def test_records_while_passing_through(self):
        recorder = EventRecorder()
        passed = list(recorder(_sample_events()))
        assert passed == recorder.events
        assert len(recorder.events) == 8

    def test_structural_subset(self):
        recorder = EventRecorder()
        list(recorder(_sample_events()))
        assert len(recorder.structural()) == 4

    def test_clear(self):
        recorder = EventRecorder()
        list(recorder(_sample_events()))
        recorder.clear()
        assert recorder.events == []
