"""Chunk-boundary fuzzing for the push-mode byte APIs.

A push session receives bytes split wherever the network decided to split
them: inside a multibyte UTF-8 sequence, inside an entity reference, inside
a tag, even inside the byte-order mark.  These tests split a corpus
document at *every* byte offset (and into 1-byte chunks) and require the
event stream to be identical to the one-shot parse.
"""

from __future__ import annotations

import pytest

from repro.errors import EncodingError
from repro.xmlstream.expat_backend import ExpatEventSource
from repro.xmlstream.reader import IncrementalByteDecoder
from repro.xmlstream.tokenizer import StreamTokenizer, tokenize

#: Deliberately nasty corpus: multibyte UTF-8 (2-, 3- and 4-byte sequences),
#: entities and character references in text and attribute values, CDATA,
#: comments, a processing instruction and split-prone markup.
NASTY_DOC = (
    '<?xml version="1.0" encoding="utf-8"?>'
    "<catalog état=\"café &amp; crème\">"
    "<entry id='e1'>☃ snowman &lt;tag&gt; &#x10348; &#169;</entry>"
    "<entry id='e2'><![CDATA[raw & <unparsed> bits]]></entry>"
    "<!-- comment with ümläuts -->"
    "<?target some data?>"
    "<empty/>"
    "<deep><a><b>text</b></a></deep>"
    "</catalog>"
)


def _events_from_chunks(chunks):
    tokenizer = StreamTokenizer()
    events = []
    for chunk in chunks:
        events.extend(tokenizer.feed_bytes(chunk))
    events.extend(tokenizer.close())
    return events


class TestEveryByteOffset:
    def test_two_chunk_split_at_every_offset(self):
        data = NASTY_DOC.encode("utf-8")
        expected = list(tokenize(NASTY_DOC))
        for offset in range(len(data) + 1):
            events = _events_from_chunks([data[:offset], data[offset:]])
            assert events == expected, f"split at byte {offset} diverged"

    def test_one_byte_chunks(self):
        data = NASTY_DOC.encode("utf-8")
        expected = list(tokenize(NASTY_DOC))
        events = _events_from_chunks(data[i : i + 1] for i in range(len(data)))
        assert events == expected

    def test_one_byte_chunks_expat_structure_matches(self):
        # expat normalises differently in text details but the structural
        # events (names, levels, attribute values) must agree.
        data = NASTY_DOC.encode("utf-8")
        source = ExpatEventSource()
        events = []
        for i in range(len(data)):
            events.extend(source.feed_bytes(data[i : i + 1]))
        events.extend(source.close())
        names = [
            (type(e).__name__, getattr(e, "name", None))
            for e in events
            if type(e).__name__ in ("StartElement", "EndElement")
        ]
        expected = [
            (type(e).__name__, getattr(e, "name", None))
            for e in tokenize(NASTY_DOC)
            if type(e).__name__ in ("StartElement", "EndElement")
        ]
        assert names == expected

    def test_utf16_with_bom_one_byte_chunks(self):
        doc = "<r a='é'>☃</r>"
        data = doc.encode("utf-16")
        expected = list(tokenize(doc))
        events = _events_from_chunks(data[i : i + 1] for i in range(len(data)))
        assert events == expected

    def test_declaration_encoding_split_across_chunks(self):
        doc = "<?xml version='1.0' encoding='latin-1'?><r>café</r>"
        data = doc.encode("latin-1")
        expected = list(tokenize(doc))
        for offset in range(len(data) + 1):
            events = _events_from_chunks([data[:offset], data[offset:]])
            assert events == expected, f"split at byte {offset} diverged"


class TestDecoderEdges:
    def test_truncated_multibyte_at_eof_raises_encoding_error(self):
        data = "<r>☃</r>".encode("utf-8")
        tokenizer = StreamTokenizer()
        tokenizer.feed_bytes(data[:4])  # ends inside the 3-byte snowman
        with pytest.raises(EncodingError):
            # close() flushes the incremental decoder, which reports the
            # dangling partial sequence.
            tokenizer.close()

    def test_decoder_detects_bom_split_one_byte_at_a_time(self):
        decoder = IncrementalByteDecoder()
        data = "<r/>".encode("utf-8-sig")
        text = ""
        for i in range(len(data)):
            text += decoder.decode(data[i : i + 1])
        text += decoder.decode(b"", final=True)
        assert text == "<r/>"
        assert decoder.detected_encoding == "utf-8-sig"

    def test_decoder_unknown_encoding(self):
        decoder = IncrementalByteDecoder("no-such-codec")
        with pytest.raises(EncodingError):
            decoder.decode(b"<r/>", final=True)

    def test_entity_reference_split_everywhere(self):
        doc = "<r>x&amp;y &#xE9; &quot;q&quot;</r>"
        data = doc.encode("utf-8")
        expected = list(tokenize(doc))
        for offset in range(len(data) + 1):
            events = _events_from_chunks([data[:offset], data[offset:]])
            assert events == expected, f"split at byte {offset} diverged"
