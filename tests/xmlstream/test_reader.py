"""Unit tests for the chunked stream reader."""

from __future__ import annotations

import io

import pytest

from repro.errors import EncodingError
from repro.xmlstream.reader import DEFAULT_CHUNK_SIZE, StreamReader, read_document


DOC = "<root><child>héllo wörld</child></root>"


class TestStringSources:
    def test_document_string_roundtrip(self):
        assert read_document(DOC) == DOC

    def test_small_chunk_size_splits_string(self):
        chunks = list(StreamReader(DOC, chunk_size=5).chunks())
        assert all(len(chunk) <= 5 for chunk in chunks)
        assert "".join(chunks) == DOC

    def test_bytes_source_decoded_as_utf8(self):
        assert read_document(DOC.encode("utf-8")) == DOC

    def test_bytes_with_bom(self):
        data = "﻿".encode("utf-8") + DOC.encode("utf-8")
        text = read_document(data)
        assert text.endswith(DOC)
        assert "héllo" in text

    def test_utf16_detected_from_bom(self):
        data = DOC.encode("utf-16")
        assert read_document(data) == DOC

    def test_declared_encoding_honoured(self):
        doc = '<?xml version="1.0" encoding="iso-8859-1"?><a>café</a>'
        data = doc.encode("iso-8859-1")
        assert read_document(data) == doc

    def test_bad_encoding_raises(self):
        with pytest.raises(EncodingError):
            read_document(b"\xff\xff\xfe<a/>", encoding="utf-8")

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            StreamReader(DOC, chunk_size=0)


class TestFileSources:
    def test_path_source(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(DOC, encoding="utf-8")
        assert read_document(str(path)) == DOC

    def test_pathlike_source(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(DOC, encoding="utf-8")
        assert read_document(path) == DOC

    def test_binary_file_object(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_bytes(DOC.encode("utf-8"))
        with open(path, "rb") as handle:
            assert read_document(handle) == DOC

    def test_text_file_object(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(DOC, encoding="utf-8")
        with open(path, "r", encoding="utf-8") as handle:
            assert read_document(handle) == DOC

    def test_chunking_large_file(self, tmp_path):
        path = tmp_path / "big.xml"
        body = "<item>x</item>" * 20000
        path.write_text(f"<root>{body}</root>", encoding="utf-8")
        reader = StreamReader(str(path), chunk_size=1024)
        chunks = list(reader.chunks())
        assert len(chunks) > 1
        assert "".join(chunks) == f"<root>{body}</root>"

    def test_multibyte_character_split_across_chunks(self, tmp_path):
        path = tmp_path / "multibyte.xml"
        text = "<a>" + "é" * 5000 + "</a>"
        path.write_bytes(text.encode("utf-8"))
        # A chunk size of 3 guarantees many é characters straddle a boundary.
        joined = "".join(StreamReader(str(path), chunk_size=3).chunks())
        assert joined == text


class TestIterableSources:
    def test_iterable_of_text_chunks(self):
        chunks = ["<a>", "text", "</a>"]
        assert read_document(iter(chunks)) == "<a>text</a>"

    def test_iterable_of_byte_chunks(self):
        chunks = [b"<a>", "é".encode("utf-8"), b"</a>"]
        assert read_document(iter(chunks)) == "<a>é</a>"

    def test_generator_source(self):
        def produce():
            yield "<a>"
            for index in range(3):
                yield f"<b>{index}</b>"
            yield "</a>"

        assert read_document(produce()) == "<a><b>0</b><b>1</b><b>2</b></a>"


class TestDefaults:
    def test_default_chunk_size_positive(self):
        assert DEFAULT_CHUNK_SIZE > 0

    def test_empty_string_yields_nothing(self):
        assert list(StreamReader("").chunks()) == []
