"""Unit tests for event/tree serialization."""

from __future__ import annotations

from repro.xmlstream.dom import parse_document
from repro.xmlstream.serializer import (
    escape_attribute,
    escape_text,
    serialize_document,
    serialize_element,
    serialize_events,
)
from repro.xmlstream.tokenizer import tokenize


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_attribute_also_escapes_quotes(self):
        assert escape_attribute('say "hi" & <bye>') == "say &quot;hi&quot; &amp; &lt;bye&gt;"

    def test_escape_is_noop_for_plain_text(self):
        assert escape_text("plain") == "plain"


class TestEventSerialization:
    def test_roundtrip_simple_document(self):
        document = "<a x=\"1\"><b>text</b><c/></a>"
        serialized = serialize_events(tokenize(document))
        # Empty-element tags are expanded to start/end pairs.
        assert serialized == '<a x="1"><b>text</b><c></c></a>'

    def test_roundtrip_preserves_text_and_reescapes_entities(self):
        document = "<a>1 &lt; 2 &amp; 3</a>"
        serialized = serialize_events(tokenize(document))
        assert serialized == "<a>1 &lt; 2 &amp; 3</a>"

    def test_double_roundtrip_is_stable(self):
        document = "<a p='q'><b>x &amp; y</b> tail <c/></a>"
        once = serialize_events(tokenize(document))
        twice = serialize_events(tokenize(once))
        assert once == twice

    def test_comments_and_pis_preserved(self):
        document = "<a><!-- note --><?pi data?></a>"
        serialized = serialize_events(tokenize(document))
        assert "<!-- note -->" in serialized
        assert "<?pi data?>" in serialized

    def test_xml_declaration_flag(self):
        serialized = serialize_events(tokenize("<a/>"), xml_declaration=True)
        assert serialized.startswith("<?xml")


class TestElementSerialization:
    def test_exact_mode_preserves_mixed_content(self):
        document = parse_document("<a>x<b>y</b>z</a>")
        assert serialize_element(document.root) == "<a>x<b>y</b>z</a>"

    def test_attributes_rendered(self):
        document = parse_document('<a id="1" name="n"><b/></a>')
        text = serialize_element(document.root)
        assert text.startswith('<a id="1" name="n">')

    def test_pretty_mode_indents(self):
        document = parse_document("<a><b>x</b><c><d>y</d></c></a>")
        pretty = serialize_element(document.root, indent="  ")
        lines = pretty.splitlines()
        assert lines[0] == "<a>"
        assert lines[1] == "  <b>x</b>"
        assert lines[-1] == "</a>"

    def test_reparse_of_serialized_tree_matches(self):
        original = parse_document("<a p='1'>x<b>y</b>z<c><d>w</d></c></a>")
        reparsed = parse_document(serialize_element(original.root))
        assert [e.tag for e in reparsed.iter()] == [e.tag for e in original.iter()]
        assert reparsed.root.string_value() == original.root.string_value()

    def test_serialize_document_includes_declaration(self):
        document = parse_document("<a/>")
        assert serialize_document(document).startswith('<?xml version="1.0"')
