"""Unit tests for the direct ``xml.parsers.expat`` event source."""

from __future__ import annotations

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmlstream.expat_backend import ExpatEventSource


def drive(chunks, **kwargs):
    source = ExpatEventSource(**kwargs)
    events = []
    for chunk in chunks:
        events.extend(source.feed(chunk))
    events.extend(source.close())
    return events


def kinds(events):
    return [type(event).__name__ for event in events]


class TestBasicDocuments:
    def test_single_element(self):
        events = drive(["<a></a>"])
        assert kinds(events) == ["StartDocument", "StartElement", "EndElement", "EndDocument"]

    def test_levels_and_names(self):
        events = drive(["<a><b><c/></b></a>"])
        starts = [(e.name, e.level) for e in events if isinstance(e, StartElement)]
        assert starts == [("a", 1), ("b", 2), ("c", 3)]

    def test_attributes_in_document_order(self):
        events = drive(['<a zeta="1" alpha="2"/>'])
        start = next(e for e in events if isinstance(e, StartElement))
        assert start.attributes == (("zeta", "1"), ("alpha", "2"))

    def test_text_coalesced_across_cdata(self):
        events = drive(["<a>one<![CDATA[ two ]]>three</a>"])
        text = [e.text for e in events if isinstance(e, Characters)]
        assert text == ["one two three"]

    def test_comment_and_pi_events(self):
        events = drive(["<a><!--note--><?target data ?></a>"])
        comment = next(e for e in events if isinstance(e, Comment))
        pi = next(e for e in events if isinstance(e, ProcessingInstruction))
        assert comment.text == "note"
        assert pi.target == "target"
        assert pi.data == "data"

    def test_positions_are_monotonic(self):
        events = drive(["<a>x<b/>y</a>"])
        positions = [event.position for event in events]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)


class TestChunkedAndBytes:
    def test_split_inside_tag(self):
        events = drive(["<a", " x='1'", "><b", "/></a>"])
        starts = [e.name for e in events if isinstance(e, StartElement)]
        assert starts == ["a", "b"]

    def test_bytes_feeding(self):
        events = drive([b"<a>", "café".encode("utf-8"), b"</a>"])
        text = next(e for e in events if isinstance(e, Characters))
        assert text.text == "café"

    def test_utf16_bytes_with_bom(self):
        payload = '<?xml version="1.0" encoding="utf-16"?><a>hi</a>'.encode("utf-16")
        events = drive([payload])
        text = next(e for e in events if isinstance(e, Characters))
        assert text.text == "hi"


class TestErrors:
    def test_mismatched_tag(self):
        with pytest.raises(XMLSyntaxError):
            drive(["<a><b></a>"])

    def test_unclosed_document(self):
        with pytest.raises(XMLSyntaxError):
            drive(["<a><b>"])

    def test_empty_document(self):
        with pytest.raises(XMLSyntaxError):
            drive([])

    def test_error_carries_line(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            drive(["<a>\n<b>\n</c>\n</a>"])
        assert excinfo.value.line == 3

    def test_feed_after_close_rejected(self):
        source = ExpatEventSource()
        source.feed("<a/>")
        source.close()
        assert source.finished
        with pytest.raises(XMLSyntaxError):
            source.feed("<b/>")
