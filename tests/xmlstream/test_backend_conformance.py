"""Backend conformance: pure tokenizer vs direct expat backend.

The engine is backend-agnostic only if both producers emit the same event
sequence for the same document.  These tests check that property on a fixed
corpus and on hypothesis-generated random documents, and additionally check
that full query evaluation (which engages the fused fast paths) returns
identical result sets across backends and against the push-API event path.

Known, documented divergences excluded from the comparison:

* ``StartElement.line`` — the pure tokenizer reports the line of the tag's
  closing ``>``, expat the line of the opening ``<``;
* ``\r\n`` normalisation and DTD-defined entities (outside the supported
  subset; not generated here).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import TwigMEvaluator
from repro.datasets.randomtree import RandomTreeConfig, RandomTreeGenerator
from repro.xmlstream.events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmlstream.sax import iter_events
from repro.xpath.generator import QueryGenerator, QueryGeneratorConfig

SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_DOC_CONFIG = RandomTreeConfig(
    vocabulary=("a", "b", "c"),
    attributes=("id", "key"),
    values=("1", "2"),
    max_depth=6,
    max_children=3,
)
_QUERY_CONFIG = QueryGeneratorConfig(
    vocabulary=("a", "b", "c"),
    attributes=("id", "key"),
    values=("1", "2"),
    min_steps=1,
    max_steps=4,
)

CORPUS = [
    "<a/>",
    "<a><b>text</b><c x='1'/></a>",
    "<root>pre<child attr='v'>inner</child>post</root>",
    "<a>&lt;escaped&gt; &amp; more</a>",
    "<a>\n  <b>\n    <c>deep</c>\n  </b>\n</a>",
    '<?xml version="1.0"?><doc><!-- comment --><item id="1">x</item></doc>',
    "<m><m><m><leaf/></m></m></m>",
    "<a>one<!-- note -->two</a>",
    "<a><![CDATA[1 < 2 && x]]>tail</a>",
    "<a><?pi data here?><b/></a>",
    "<a x='1' y=\"2\" z='&amp;'>v</a>",
]


def projection(events):
    """Backend-independent view of an event sequence (line excluded)."""
    shape = []
    for event in events:
        if isinstance(event, StartElement):
            shape.append(("start", event.position, event.name, event.level, event.attributes))
        elif isinstance(event, EndElement):
            shape.append(("end", event.position, event.name, event.level))
        elif isinstance(event, Characters):
            shape.append(("text", event.position, event.text, event.level))
        elif isinstance(event, Comment):
            shape.append(("comment", event.position, event.text, event.level))
        elif isinstance(event, ProcessingInstruction):
            shape.append(("pi", event.position, event.target, event.data, event.level))
        elif isinstance(event, StartDocument):
            shape.append(("start-document", event.position))
        elif isinstance(event, EndDocument):
            shape.append(("end-document", event.position))
    return shape


class TestCorpusConformance:
    def test_identical_event_sequences_on_corpus(self):
        for document in CORPUS:
            pure = projection(iter_events(document, parser="pure"))
            expat = projection(iter_events(document, parser="expat"))
            assert pure == expat, f"event streams diverge for {document!r}"

    def test_identical_event_sequences_chunked(self):
        for document in CORPUS:
            for chunk_size in (1, 3, 7):
                pure = projection(
                    iter_events(document, parser="pure", chunk_size=chunk_size)
                )
                expat = projection(
                    iter_events(document, parser="expat", chunk_size=chunk_size)
                )
                assert pure == expat

    def test_pure_alias_matches_native(self):
        for document in CORPUS:
            native = projection(iter_events(document, parser="native"))
            pure = projection(iter_events(document, parser="pure"))
            assert native == pure


class TestRandomDocumentConformance:
    @SETTINGS
    @given(doc_seed=st.integers(min_value=0, max_value=10_000))
    def test_event_streams_identical(self, doc_seed):
        document = RandomTreeGenerator(config=_DOC_CONFIG, seed=doc_seed).text()
        pure = projection(iter_events(document, parser="pure"))
        expat = projection(iter_events(document, parser="expat"))
        assert pure == expat

    @SETTINGS
    @given(
        doc_seed=st.integers(min_value=0, max_value=10_000),
        query_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_result_sets_identical_across_backends(self, doc_seed, query_seed):
        document = RandomTreeGenerator(config=_DOC_CONFIG, seed=doc_seed).text()
        query = QueryGenerator(config=_QUERY_CONFIG, seed=query_seed).generate_expression()
        pure = TwigMEvaluator(query).evaluate(document, parser="pure")
        expat = TwigMEvaluator(query).evaluate(document, parser="expat")
        assert pure.keys() == expat.keys()

    @SETTINGS
    @given(
        doc_seed=st.integers(min_value=0, max_value=10_000),
        query_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_fused_paths_match_push_api(self, doc_seed, query_seed):
        """evaluate() (fused) must agree with event-at-a-time feed()."""
        document = RandomTreeGenerator(config=_DOC_CONFIG, seed=doc_seed).text()
        query = QueryGenerator(config=_QUERY_CONFIG, seed=query_seed).generate_expression()

        fused = TwigMEvaluator(query).evaluate(document, parser="pure")
        fused_expat = TwigMEvaluator(query).evaluate(document, parser="expat")

        pushed = TwigMEvaluator(query)
        for event in iter_events(document, parser="pure"):
            pushed.feed(event)
        push_results = pushed.finish()

        assert fused.keys() == push_results.keys()
        assert fused_expat.keys() == push_results.keys()

    @SETTINGS
    @given(
        doc_seed=st.integers(min_value=0, max_value=10_000),
        query_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_statistics_identical_across_paths(self, doc_seed, query_seed):
        """The fused fast paths maintain the same counters as the event path."""
        document = RandomTreeGenerator(config=_DOC_CONFIG, seed=doc_seed).text()
        query = QueryGenerator(config=_QUERY_CONFIG, seed=query_seed).generate_expression()

        fused = TwigMEvaluator(query)
        fused.evaluate(document, parser="pure")

        pushed = TwigMEvaluator(query)
        for event in iter_events(document, parser="pure"):
            pushed.feed(event)
        pushed.finish()

        assert fused.statistics.as_dict() == pushed.statistics.as_dict()
