"""Tests for the unified event producers (native tokenizer vs xml.sax bridge)."""

from __future__ import annotations

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import Characters, EndElement, StartElement
from repro.xmlstream.sax import PARSER_BACKENDS, iter_events


DOCUMENTS = [
    "<a/>",
    "<a><b>text</b><c x='1'/></a>",
    "<root>pre<child attr='v'>inner</child>post</root>",
    "<a>&lt;escaped&gt; &amp; more</a>",
    "<a>\n  <b>\n    <c>deep</c>\n  </b>\n</a>",
    '<?xml version="1.0"?><doc><!-- comment --><item id="1">x</item></doc>',
    "<m><m><m><leaf/></m></m></m>",
]


def _shape(events):
    """Project events to a back-end independent comparable form."""
    shape = []
    for event in events:
        if isinstance(event, StartElement):
            shape.append(("start", event.name, event.level, tuple(sorted(event.attributes))))
        elif isinstance(event, EndElement):
            shape.append(("end", event.name, event.level))
        elif isinstance(event, Characters):
            shape.append(("text", event.text, event.level))
    return shape


class TestBackendEquivalence:
    @pytest.mark.parametrize("document", DOCUMENTS)
    def test_native_and_expat_produce_same_shape(self, document):
        native = _shape(iter_events(document, parser="native"))
        expat = _shape(iter_events(document, parser="expat"))
        assert native == expat

    @pytest.mark.parametrize("parser", PARSER_BACKENDS)
    def test_levels_start_at_one(self, parser):
        events = list(iter_events("<a><b/></a>", parser=parser))
        starts = [event for event in events if isinstance(event, StartElement)]
        assert [start.level for start in starts] == [1, 2]

    @pytest.mark.parametrize("parser", PARSER_BACKENDS)
    def test_attributes_preserved(self, parser):
        events = list(iter_events("<a id='1' name='x'/>", parser=parser))
        start = next(event for event in events if isinstance(event, StartElement))
        assert start.attribute_dict() == {"id": "1", "name": "x"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            list(iter_events("<a/>", parser="sax2"))


class TestErrorTranslation:
    @pytest.mark.parametrize("parser", PARSER_BACKENDS)
    def test_malformed_document_raises_xml_syntax_error(self, parser):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><b></a>", parser=parser))

    @pytest.mark.parametrize("parser", PARSER_BACKENDS)
    def test_unclosed_document_raises(self, parser):
        with pytest.raises(XMLSyntaxError):
            list(iter_events("<a><b>", parser=parser))


class TestChunkedSources:
    @pytest.mark.parametrize("parser", PARSER_BACKENDS)
    def test_generator_of_chunks(self, parser):
        def chunks():
            yield "<root>"
            for index in range(5):
                yield f"<item n='{index}'>v{index}</item>"
            yield "</root>"

        events = list(iter_events(chunks(), parser=parser))
        starts = [event.name for event in events if isinstance(event, StartElement)]
        assert starts == ["root"] + ["item"] * 5

    @pytest.mark.parametrize("parser", PARSER_BACKENDS)
    def test_file_source(self, parser, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b>x</b></a>", encoding="utf-8")
        events = list(iter_events(str(path), parser=parser))
        assert _shape(events) == _shape(iter_events("<a><b>x</b></a>", parser=parser))

    def test_small_chunk_size_native(self):
        document = "<root><a>1</a><b attr='v'>2</b></root>"
        reference = _shape(iter_events(document, parser="native"))
        tiny = _shape(iter_events(document, parser="native", chunk_size=3))
        assert tiny == reference
