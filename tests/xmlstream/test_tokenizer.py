"""Unit tests for the from-scratch incremental XML tokenizer."""

from __future__ import annotations

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmlstream.tokenizer import (
    StreamTokenizer,
    decode_entities,
    tokenize,
    tokenize_chunks,
)


def kinds(events):
    return [type(event).__name__ for event in events]


def structural(events):
    return [
        (type(event).__name__, event.name, event.level)
        for event in events
        if isinstance(event, (StartElement, EndElement))
    ]


class TestBasicDocuments:
    def test_single_element(self):
        events = list(tokenize("<a></a>"))
        assert kinds(events) == ["StartDocument", "StartElement", "EndElement", "EndDocument"]

    def test_empty_element_shorthand(self):
        events = list(tokenize("<a/>"))
        assert kinds(events) == ["StartDocument", "StartElement", "EndElement", "EndDocument"]
        start = events[1]
        assert start.name == "a"
        assert start.level == 1

    def test_nested_levels(self):
        events = list(tokenize("<a><b><c/></b></a>"))
        assert structural(events) == [
            ("StartElement", "a", 1),
            ("StartElement", "b", 2),
            ("StartElement", "c", 3),
            ("EndElement", "c", 3),
            ("EndElement", "b", 2),
            ("EndElement", "a", 1),
        ]

    def test_text_content(self):
        events = list(tokenize("<a>hello</a>"))
        text = [event for event in events if isinstance(event, Characters)]
        assert len(text) == 1
        assert text[0].text == "hello"
        assert text[0].level == 1

    def test_mixed_content_coalesced_per_segment(self):
        events = list(tokenize("<a>one<b/>two</a>"))
        text = [event.text for event in events if isinstance(event, Characters)]
        assert text == ["one", "two"]

    def test_whitespace_between_elements_is_reported(self):
        events = list(tokenize("<a>\n  <b/>\n</a>"))
        text = [event.text for event in events if isinstance(event, Characters)]
        assert text == ["\n  ", "\n"]

    def test_xml_declaration_is_skipped(self):
        events = list(tokenize('<?xml version="1.0" encoding="UTF-8"?><a/>'))
        assert kinds(events) == ["StartDocument", "StartElement", "EndElement", "EndDocument"]

    def test_doctype_is_skipped(self):
        document = '<!DOCTYPE book SYSTEM "book.dtd"><book/>'
        events = list(tokenize(document))
        assert structural(events) == [("StartElement", "book", 1), ("EndElement", "book", 1)]

    def test_doctype_with_internal_subset(self):
        document = "<!DOCTYPE book [<!ENTITY x 'y'>]><book/>"
        events = list(tokenize(document))
        assert structural(events) == [("StartElement", "book", 1), ("EndElement", "book", 1)]


class TestAttributes:
    def test_double_and_single_quotes(self):
        events = list(tokenize("<a x=\"1\" y='2'/>"))
        start = events[1]
        assert start.attribute_dict() == {"x": "1", "y": "2"}

    def test_attribute_with_whitespace_around_equals(self):
        events = list(tokenize("<a x = '1'/>"))
        assert events[1].get("x") == "1"

    def test_attribute_value_with_entities(self):
        events = list(tokenize("<a title='Tom &amp; Jerry &lt;3'/>"))
        assert events[1].get("title") == "Tom & Jerry <3"

    def test_attribute_value_containing_gt(self):
        events = list(tokenize("<a expr='x > 3'/>"))
        assert events[1].get("expr") == "x > 3"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a x='1' x='2'/>"))

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a x=1/>"))

    def test_attribute_without_value_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a disabled/>"))


class TestEntitiesAndCdata:
    def test_predefined_entities_in_text(self):
        events = list(tokenize("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</a>"))
        text = next(event for event in events if isinstance(event, Characters))
        assert text.text == "<tag> & \"q\" 'a'"

    def test_numeric_character_references(self):
        events = list(tokenize("<a>&#65;&#x42;</a>"))
        text = next(event for event in events if isinstance(event, Characters))
        assert text.text == "AB"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a>&nbsp;</a>"))

    def test_cdata_section_text_not_expanded(self):
        events = list(tokenize("<a><![CDATA[1 < 2 && x]]></a>"))
        text = next(event for event in events if isinstance(event, Characters))
        assert text.text == "1 < 2 && x"

    def test_decode_entities_helper(self):
        assert decode_entities("a &amp; b") == "a & b"
        assert decode_entities("no entities") == "no entities"
        with pytest.raises(XMLSyntaxError):
            decode_entities("broken &amp")


class TestCommentsAndProcessingInstructions:
    def test_comment_event(self):
        events = list(tokenize("<a><!-- note --></a>"))
        comment = next(event for event in events if isinstance(event, Comment))
        assert comment.text == " note "

    def test_processing_instruction_event(self):
        events = list(tokenize('<a><?target data here?></a>'))
        pi = next(event for event in events if isinstance(event, ProcessingInstruction))
        assert pi.target == "target"
        assert pi.data == "data here"

    def test_comment_before_root(self):
        events = list(tokenize("<!-- header --><a/>"))
        assert structural(events) == [("StartElement", "a", 1), ("EndElement", "a", 1)]


class TestErrorHandling:
    @pytest.mark.parametrize(
        "document",
        [
            "<a><b></a>",          # mismatched end tag
            "<a>",                  # unclosed element
            "<a></a><b></b>",      # two root elements
            "text only",            # no root element
            "<a></a>trailing",     # trailing content
            "<a><!-- broken </a>", # unterminated comment
            "<a attr></a>",         # attribute without value
            "</a>",                 # end tag without start
            "<>",                   # empty tag
            "<1abc/>",              # invalid name start
        ],
    )
    def test_malformed_documents_rejected(self, document):
        with pytest.raises(XMLSyntaxError):
            list(tokenize(document))

    def test_error_reports_line_number(self):
        document = "<a>\n<b>\n</c>\n</a>"
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(tokenize(document))
        assert excinfo.value.line == 3

    def test_feed_after_close_rejected(self):
        tokenizer = StreamTokenizer()
        list(tokenizer.tokenize("<a/>"))
        with pytest.raises(XMLSyntaxError):
            tokenizer.feed("<b/>")


class TestIncrementalFeeding:
    def test_chunked_equivalent_to_whole(self):
        document = "<root a='1'>text<child>more &amp; stuff</child><!--c--><leaf/></root>"
        whole = list(tokenize(document))
        for chunk_size in (1, 2, 3, 7, 16):
            chunks = [document[i:i + chunk_size] for i in range(0, len(document), chunk_size)]
            chunked = list(tokenize_chunks(chunks))
            assert [type(e).__name__ for e in chunked] == [type(e).__name__ for e in whole]
            assert structural(chunked) == structural(whole)
            whole_text = "".join(e.text for e in whole if isinstance(e, Characters))
            chunk_text = "".join(e.text for e in chunked if isinstance(e, Characters))
            assert chunk_text == whole_text

    def test_split_inside_entity_reference(self):
        chunks = ["<a>left &a", "mp; right</a>"]
        events = list(tokenize_chunks(chunks))
        text = "".join(e.text for e in events if isinstance(e, Characters))
        assert text == "left & right"

    def test_split_inside_tag(self):
        chunks = ["<a", " x='1'", "><b", "/></a>"]
        events = list(tokenize_chunks(chunks))
        assert structural(events) == [
            ("StartElement", "a", 1),
            ("StartElement", "b", 2),
            ("EndElement", "b", 2),
            ("EndElement", "a", 1),
        ]

    def test_depth_property_tracks_open_elements(self):
        tokenizer = StreamTokenizer()
        tokenizer.feed("<a><b>")
        assert tokenizer.depth == 2
        tokenizer.feed("</b>")
        assert tokenizer.depth == 1
        tokenizer.feed("</a>")
        tokenizer.close()
        assert tokenizer.depth == 0
        assert tokenizer.finished


class TestLineNumbers:
    def test_start_tag_lines_match_figure_numbering(self):
        document = "<a>\n <b>\n  <c/>\n </b>\n</a>"
        events = list(tokenize(document))
        lines = {event.name: event.line for event in events if isinstance(event, StartElement)}
        assert lines == {"a": 1, "b": 2, "c": 3}

    def test_document_order_positions_increase(self):
        events = list(tokenize("<a><b/><c/></a>"))
        positions = [event.position for event in events]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)
