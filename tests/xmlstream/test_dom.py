"""Unit tests for the lightweight in-memory DOM."""

from __future__ import annotations

import pytest

from repro.errors import StreamStateError
from repro.xmlstream.dom import TreeBuilder, build_tree, parse_document
from repro.xmlstream.events import EndElement, StartElement
from repro.xmlstream.tokenizer import tokenize


DOC = (
    "<library><book id='b1'><title>Streams</title><author>Ada</author></book>"
    "<book id='b2'><title>Trees</title></book></library>"
)


class TestParsing:
    def test_root_tag(self):
        document = parse_document(DOC)
        assert document.root.tag == "library"
        assert document.root.level == 1

    def test_element_count_and_depth(self):
        document = parse_document(DOC)
        assert document.element_count == 6
        assert document.max_depth == 3

    def test_children_in_order(self):
        document = parse_document(DOC)
        tags = [child.tag for child in document.root.children]
        assert tags == ["book", "book"]

    def test_attributes(self):
        document = parse_document(DOC)
        books = document.find_all("book")
        assert [book.get("id") for book in books] == ["b1", "b2"]
        assert books[0].get("missing") is None
        assert books[0].get("missing", "x") == "x"

    def test_pre_order_indexes_are_consecutive(self):
        document = parse_document(DOC)
        orders = [element.order for element in document.iter()]
        assert orders == list(range(len(orders)))

    def test_parent_pointers(self):
        document = parse_document(DOC)
        title = document.find_all("title")[0]
        assert title.parent is not None
        assert title.parent.tag == "book"
        ancestor_tags = [ancestor.tag for ancestor in title.ancestors()]
        assert ancestor_tags == ["book", "library"]

    def test_line_numbers_recorded(self):
        document = parse_document("<a>\n<b/>\n<c/>\n</a>")
        lines = {element.tag: element.line for element in document.iter()}
        assert lines == {"a": 1, "b": 2, "c": 3}


class TestTextHandling:
    def test_string_value_concatenates_descendants(self):
        document = parse_document("<a>x<b>y</b>z<c><d>w</d></c></a>")
        assert document.root.string_value() == "xyzw"

    def test_direct_text_segments(self):
        document = parse_document("<a>x<b/>y<c/>z</a>")
        root = document.root
        assert root.text_before_children() == "x"
        assert root.text_segment(1) == "y"
        assert root.text_segment(2) == "z"
        assert root.text == "xyz"

    def test_text_segment_out_of_range_is_empty(self):
        document = parse_document("<a>x</a>")
        assert document.root.text_segment(5) == ""


class TestNavigation:
    def test_find_all_descendants(self):
        document = parse_document(DOC)
        assert len(document.find_all("title")) == 2
        assert len(document.root.find_all("library")) == 1  # includes self

    def test_descendants_excludes_self(self):
        document = parse_document(DOC)
        tags = [element.tag for element in document.root.descendants()]
        assert "library" not in tags
        assert tags.count("book") == 2

    def test_child_elements_filtered(self):
        document = parse_document(DOC)
        book = document.root.children[0]
        assert [child.tag for child in book.child_elements("title")] == ["title"]
        assert len(book.child_elements()) == 2

    def test_elements_at_line(self):
        document = parse_document("<a>\n<b/>\n</a>")
        assert [element.tag for element in document.elements_at_line(2)] == ["b"]


class TestTreeBuilder:
    def test_build_from_event_iterable(self):
        events = list(tokenize(DOC))
        document = build_tree(events)
        assert document.root.tag == "library"
        assert document.element_count == 6

    def test_mismatched_events_rejected(self):
        builder = TreeBuilder()
        builder.feed(StartElement(position=0, name="a", level=1))
        with pytest.raises(StreamStateError):
            builder.feed(EndElement(position=1, name="b", level=1))

    def test_unclosed_document_rejected(self):
        builder = TreeBuilder()
        builder.feed(StartElement(position=0, name="a", level=1))
        with pytest.raises(StreamStateError):
            builder.close()

    def test_end_without_start_rejected(self):
        builder = TreeBuilder()
        with pytest.raises(StreamStateError):
            builder.feed(EndElement(position=0, name="a", level=1))

    def test_multiple_roots_rejected(self):
        builder = TreeBuilder()
        builder.feed(StartElement(position=0, name="a", level=1))
        builder.feed(EndElement(position=1, name="a", level=1))
        with pytest.raises(StreamStateError):
            builder.feed(StartElement(position=2, name="b", level=1))

    def test_empty_stream_rejected(self):
        with pytest.raises(StreamStateError):
            TreeBuilder().close()
