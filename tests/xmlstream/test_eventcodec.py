"""Fuzz and round-trip tests for the binary event codec.

Protocol v2 ships these frames between the sharded front and its workers,
so the bar is *exact* round-trip: for any event stream the decoder must
return ``==``-identical NamedTuples, and any truncated or corrupted frame
must raise :class:`EventCodecError` rather than yield partial data.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlstream.eventcodec import (
    EVENTS_PER_FRAME,
    EventCodecError,
    EventFrameDecoder,
    EventFrameEncoder,
)
from repro.xmlstream.events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmlstream.tokenizer import StreamTokenizer


def roundtrip(events, frames=1):
    """Encode ``events`` split over ``frames`` frames; return the decode."""
    encoder = EventFrameEncoder()
    decoder = EventFrameDecoder()
    out = []
    step = max(1, (len(events) + frames - 1) // frames) if events else 1
    for start in range(0, max(len(events), 1), step):
        frame = encoder.encode(events[start : start + step])
        assert isinstance(frame, bytes)
        out.extend(decoder.decode(frame))
    return out


class TestEveryEventType:
    def test_all_seven_types_roundtrip(self):
        events = [
            StartDocument(0),
            ProcessingInstruction(1, "xml-stylesheet", 'href="a.css"', 0),
            Comment(2, " prologue ", 0),
            StartElement(3, "root", 1, (("id", "r1"), ("lang", "en")), 1),
            Characters(4, "hello", 1),
            StartElement(5, "child", 2, (), 2),
            Characters(6, "world", 2),
            EndElement(7, "child", 2, 2),
            Comment(8, " inline ", 1),
            ProcessingInstruction(9, "target", "", 1),
            EndElement(10, "root", 1, 3),
            EndDocument(11),
        ]
        assert roundtrip(events) == events

    def test_none_lines_and_empty_strings(self):
        events = [
            StartElement(0, "a", 1, (("empty", ""),), None),
            Characters(1, "", 1),
            EndElement(2, "a", 1, None),
        ]
        decoded = roundtrip(events)
        assert decoded == events
        assert decoded[0].line is None
        assert decoded[2].line is None

    def test_type_identity_preserved(self):
        decoded = roundtrip([Comment(0, "x", 1), Characters(1, "x", 1)])
        assert type(decoded[0]) is Comment
        assert type(decoded[1]) is Characters


class TestUnicode:
    def test_astral_plane_and_multibyte_text(self):
        text = "𝔘𝔫𝔦𝔠𝔬𝔡𝔢 — 中文 ▒ \U0001f40d\U0001f600 ﷽"
        events = [
            StartElement(0, "Δτ", 1, (("ключ", "значение\U0001f680"),), 1),
            Characters(1, text, 1),
            EndElement(2, "Δτ", 1, 1),
        ]
        assert roundtrip(events) == events

    def test_cdata_style_payload_roundtrips_verbatim(self):
        # CDATA sections surface as Characters events whose text may hold
        # markup characters; the codec must not interpret any of it.
        payload = "<not><xml> && \"quotes\" ]]> \x0b tail"
        events = [
            StartElement(0, "c", 1, (), None),
            Characters(1, payload, 1),
            EndElement(2, "c", 1, None),
        ]
        decoded = roundtrip(events)
        assert decoded[1].text == payload

    def test_huge_attribute_values(self):
        big = "v" * 2_000_000 + "\U0001f40d"
        events = [StartElement(0, "e", 1, (("big", big), ("b2", big)), 1)]
        decoded = roundtrip(events)
        assert decoded[0].attributes[0][1] == big
        assert decoded[0].attributes[1][1] == big


class TestInterning:
    def test_repeated_names_cost_one_byte_after_first(self):
        first = EventFrameEncoder().encode(
            [StartElement(i, "record", 2, (("k", "v"),), None) for i in range(2)]
        )
        # Same stream but with distinct names: must be strictly larger
        # because every name is spelled out.
        distinct = EventFrameEncoder().encode(
            [StartElement(i, f"record{i}", 2, ((f"k{i}", "v"),), None) for i in range(2)]
        )
        assert len(first) < len(distinct)

    def test_interning_table_persists_across_frames(self):
        encoder = EventFrameEncoder()
        decoder = EventFrameDecoder()
        frame1 = encoder.encode([StartElement(0, "tag", 1, (("a", "1"),), None)])
        frame2 = encoder.encode([StartElement(1, "tag", 2, (("a", "2"),), None)])
        assert len(frame2) < len(frame1)  # second frame references, not spells
        assert decoder.decode(frame1)[0].name == "tag"
        assert decoder.decode(frame2)[0] == StartElement(1, "tag", 2, (("a", "2"),), None)

    def test_decoding_frames_out_of_order_is_detected(self):
        encoder = EventFrameEncoder()
        encoder.encode([StartElement(0, "tag", 1, (), None)])  # interns "tag"
        frame2 = encoder.encode([StartElement(1, "tag", 1, (), None)])
        with pytest.raises(EventCodecError, match="name reference"):
            EventFrameDecoder().decode(frame2)

    def test_reset_starts_a_new_document(self):
        encoder = EventFrameEncoder()
        decoder = EventFrameDecoder()
        decoder.decode(encoder.encode([StartElement(5, "a", 1, (), None)]))
        encoder.reset()
        decoder.reset()
        events = [StartElement(0, "a", 1, (), None)]
        assert decoder.decode(encoder.encode(events)) == events


class TestRejection:
    def _frame(self):
        return EventFrameEncoder().encode(
            [
                StartElement(0, "name", 1, (("attr", "value"),), 3),
                Characters(1, "text body", 1),
                EndElement(2, "name", 1, 4),
            ]
        )

    def test_every_truncation_is_rejected(self):
        frame = self._frame()
        for cut in range(len(frame)):
            with pytest.raises(EventCodecError):
                EventFrameDecoder().decode(frame[:cut])

    def test_trailing_garbage_is_rejected(self):
        with pytest.raises(EventCodecError, match="trailing"):
            EventFrameDecoder().decode(self._frame() + b"\x00")

    def test_bad_magic_is_rejected(self):
        with pytest.raises(EventCodecError, match="magic"):
            EventFrameDecoder().decode(b"<xml>not a frame</xml>")
        with pytest.raises(EventCodecError, match="magic"):
            EventFrameDecoder().decode(b"")

    def test_unknown_type_code_is_rejected(self):
        frame = bytearray(EventFrameEncoder().encode([StartDocument(0)]))
        # byte layout: magic, count=1, type_code, delta
        frame[2] = 0x63
        with pytest.raises(EventCodecError, match="unknown type code"):
            EventFrameDecoder().decode(bytes(frame))

    def test_invalid_utf8_is_rejected(self):
        frame = bytearray(
            EventFrameEncoder().encode([Characters(0, "AAAA", 1)])
        )
        index = bytes(frame).index(b"AAAA")
        frame[index : index + 4] = b"\xff\xfe\xff\xfe"
        with pytest.raises(EventCodecError, match="UTF-8"):
            EventFrameDecoder().decode(bytes(frame))


# ---------------------------------------------------------------------------
# Property-based fuzz
# ---------------------------------------------------------------------------

_text = st.text(max_size=60)
_name = st.text(
    alphabet=st.characters(min_codepoint=ord("a"), max_codepoint=ord("z")),
    min_size=1,
    max_size=8,
)
_level = st.integers(min_value=0, max_value=200)
_line = st.one_of(st.none(), st.integers(min_value=0, max_value=10**9))
_position = st.integers(min_value=0, max_value=10**12)

_event = st.one_of(
    st.builds(StartDocument, _position),
    st.builds(EndDocument, _position),
    st.builds(
        StartElement,
        _position,
        _name,
        _level,
        st.lists(st.tuples(_name, _text), max_size=4).map(tuple),
        _line,
    ),
    st.builds(EndElement, _position, _name, _level, _line),
    st.builds(Characters, _position, _text, _level),
    st.builds(Comment, _position, _text, _level),
    st.builds(ProcessingInstruction, _position, _name, _text, _level),
)


class TestFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_event, max_size=40), st.integers(min_value=1, max_value=5))
    def test_random_streams_roundtrip(self, events, frames):
        assert roundtrip(events, frames=frames) == events

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=200))
    def test_random_bytes_never_crash_only_raise(self, data):
        decoder = EventFrameDecoder()
        try:
            decoder.decode(data)
        except EventCodecError:
            pass

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_event, min_size=1, max_size=10), st.data())
    def test_truncations_of_valid_frames_raise(self, events, data):
        frame = EventFrameEncoder().encode(events)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(EventCodecError):
            EventFrameDecoder().decode(frame[:cut])


class TestRealDocuments:
    DOC = (
        '<?xml version="1.0"?><?pi data?><!-- head -->'
        "<root a='1' b='two'><item id='i1'>text &amp; more</item>"
        "<item id='i2'><![CDATA[raw <cdata> ]]]]><![CDATA[> body]]></item>"
        "<nested><deep><deeper lang='中文'>𝔘nicode</deeper></deep></nested>"
        "</root><!-- tail -->"
    )

    def test_tokenizer_output_roundtrips(self):
        tokenizer = StreamTokenizer()
        events = list(tokenizer.feed(self.DOC)) + list(tokenizer.close())
        assert roundtrip(events, frames=3) == events

    def test_frame_batching_constant_is_sane(self):
        assert EVENTS_PER_FRAME >= 1
