"""Unit tests for well-formedness checking and depth tracking."""

from __future__ import annotations

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstream.events import EndElement, StartElement
from repro.xmlstream.tokenizer import tokenize
from repro.xmlstream.wellformed import (
    DepthTracker,
    check_well_formed,
    validate_event_stream,
)


class TestCheckWellFormed:
    def test_well_formed_document(self):
        report = check_well_formed("<a><b>x</b><c/></a>")
        assert report
        assert report.well_formed
        assert report.elements == 3
        assert report.max_depth == 2
        assert report.error is None

    def test_malformed_document(self):
        report = check_well_formed("<a><b></a>")
        assert not report
        assert not report.well_formed
        assert "does not match" in report.error
        assert report.line == 1

    def test_unclosed_document(self):
        report = check_well_formed("<a><b>")
        assert not report.well_formed

    def test_file_source(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b/></a>", encoding="utf-8")
        assert check_well_formed(str(path)).well_formed

    def test_counts_elements_of_large_flat_document(self):
        document = "<r>" + "<x/>" * 500 + "</r>"
        report = check_well_formed(document)
        assert report.elements == 501
        assert report.max_depth == 2


class TestDepthTracker:
    def test_tracks_depth_and_path(self):
        tracker = DepthTracker()
        events = list(tokenize("<a><b><c/></b></a>"))
        max_seen = 0
        for event in events:
            tracker.observe(event)
            max_seen = max(max_seen, tracker.depth)
        assert max_seen == 3
        assert tracker.max_depth == 3
        assert tracker.depth == 0

    def test_path_rendering(self):
        tracker = DepthTracker()
        tracker.observe(StartElement(position=0, name="a", level=1))
        tracker.observe(StartElement(position=1, name="b", level=2))
        assert tracker.path() == "/a/b"
        assert tracker.snapshot() == ("a", "b")

    def test_unbalanced_end_rejected(self):
        tracker = DepthTracker()
        with pytest.raises(XMLSyntaxError):
            tracker.observe(EndElement(position=0, name="a", level=1))


class TestValidateEventStream:
    def test_valid_stream(self):
        events = list(tokenize("<a><b/><c><d/></c></a>"))
        elements, depth = validate_event_stream(events)
        assert elements == 4
        assert depth == 3

    def test_unbalanced_stream_rejected(self):
        events = [StartElement(position=0, name="a", level=1)]
        with pytest.raises(XMLSyntaxError):
            validate_event_stream(events)

    def test_extra_end_rejected(self):
        events = [
            StartElement(position=0, name="a", level=1),
            EndElement(position=1, name="a", level=1),
            EndElement(position=2, name="a", level=1),
        ]
        with pytest.raises(XMLSyntaxError):
            validate_event_stream(events)
