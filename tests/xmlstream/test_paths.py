"""Unit tests for structural path utilities."""

from __future__ import annotations

from repro.xmlstream.dom import parse_document
from repro.xmlstream.paths import (
    element_label,
    element_path,
    path_counts,
    summarize_structure,
    tag_histogram,
)
from repro.xmlstream.tokenizer import tokenize


RECURSIVE = "<a><a><b/><a><b/></a></a><c><b/></c></a>"


class TestElementPath:
    def test_absolute_path(self):
        document = parse_document("<x><y><z/></y></x>")
        z = document.find_all("z")[0]
        assert element_path(z) == "/x/y/z"

    def test_root_path(self):
        document = parse_document("<x/>")
        assert element_path(document.root) == "/x"


class TestElementLabel:
    def test_label_uses_line_number(self):
        document = parse_document("<a>\n<b/>\n</a>")
        b = document.find_all("b")[0]
        assert element_label(b) == "b_2"

    def test_label_falls_back_to_order(self):
        document = parse_document("<a><b/></a>")
        b = document.find_all("b")[0]
        b.line = None
        assert element_label(b) == "b#1"


class TestCountsAndHistograms:
    def test_path_counts(self):
        counts = path_counts(parse_document(RECURSIVE))
        assert counts["/a"] == 1
        assert counts["/a/a"] == 1
        assert counts["/a/a/a"] == 1
        assert counts["/a/a/b"] == 1
        assert counts["/a/a/a/b"] == 1
        assert counts["/a/c/b"] == 1

    def test_tag_histogram_from_events(self):
        histogram = tag_histogram(tokenize(RECURSIVE))
        assert histogram == {"a": 3, "b": 3, "c": 1}


class TestStructureSummary:
    def test_recursive_tags_detected(self):
        summary = summarize_structure(parse_document(RECURSIVE))
        assert summary.element_count == 7
        assert summary.max_depth == 4
        assert "a" in summary.recursive_tags
        assert "b" not in summary.recursive_tags

    def test_non_recursive_document(self):
        summary = summarize_structure(parse_document("<x><y/><z/></x>"))
        assert summary.recursive_tags == ()
        assert summary.distinct_tags == 3
        assert summary.distinct_paths == 3

    def test_as_dict_keys(self):
        summary = summarize_structure(parse_document(RECURSIVE)).as_dict()
        assert set(summary) == {
            "elements",
            "max_depth",
            "distinct_tags",
            "distinct_paths",
            "recursive_tags",
        }
