"""Tests for the experiment drivers (small problem sizes, shape assertions)."""

from __future__ import annotations

import pytest

from repro.bench.runner import (
    run_builder_scaling,
    run_incremental_latency,
    run_memory_stability,
    run_multiquery_scaling,
    run_protein_breakdown,
    run_query_size_scaling,
    run_query_variety,
    run_soak,
    sweep,
)
from repro.errors import BenchmarkError


class TestMultiQueryScaling:
    def test_rows_have_expected_columns(self):
        rows = run_multiquery_scaling(
            counts=(1, 5), kinds=("disjoint", "duplicate"), records=150, sample=3
        )
        assert len(rows) == 4
        for row in rows:
            for key in (
                "mix", "queries", "machines", "shared_s",
                "independent_est_s", "speedup", "solutions",
            ):
                assert key in row

    def test_duplicate_mix_uses_one_machine(self):
        rows = run_multiquery_scaling(
            counts=(5,), kinds=("duplicate",), records=150, sample=3
        )
        assert rows[0]["machines"] == 1
        assert rows[0]["queries"] == 5

    def test_disjoint_machines_track_query_count(self):
        rows = run_multiquery_scaling(
            counts=(5,), kinds=("disjoint",), records=150, sample=3
        )
        assert rows[0]["machines"] == 5


class TestProteinBreakdown:
    def test_rows_have_expected_columns(self):
        rows = run_protein_breakdown(entries=(30,), parser="native")
        assert len(rows) == 1
        row = rows[0]
        for key in ("dataset", "query", "parse_s", "total_s", "twigm_s", "parse_fraction"):
            assert key in row
        assert row["solutions"] > 0

    def test_parse_time_below_total_time(self):
        row = run_protein_breakdown(entries=(50,), parser="native")[0]
        # Parse-only and total are two separate wall-clock measurements of a
        # sub-100ms workload; allow scheduler noise on loaded single-core
        # machines while still catching parse >> total regressions.
        assert row["parse_s"] <= row["total_s"] * 1.5 + 0.05
        assert 0 < row["parse_fraction"] <= 1.5


class TestMemoryStability:
    def test_peak_state_flat_across_sizes(self):
        rows = run_memory_stability(sizes_mb=(0.1, 0.4), measure_allocations=False)
        assert len(rows) == 2
        assert rows[1]["elements"] > rows[0]["elements"]
        # The engine's live state must not grow with the document: allow a
        # small constant wiggle but nothing proportional to the 4x size gap.
        assert rows[1]["peak_stack_entries"] <= rows[0]["peak_stack_entries"] + 2

    def test_allocation_measurement_optional(self):
        rows = run_memory_stability(sizes_mb=(0.1,), measure_allocations=True)
        assert "peak_alloc_mb" in rows[0]


class TestQuerySizeScaling:
    def test_naive_blows_up_and_agrees(self):
        rows = run_query_size_scaling(max_steps=3, nesting_depth=8)
        assert len(rows) == 3
        assert all(row.get("agrees", True) for row in rows)
        naive_records = [row["naive_records"] for row in rows if "naive_records" in row]
        twigm_work = [row["twigm_work"] for row in rows]
        # Naive record growth accelerates; TwigM work stays comparatively tame.
        assert naive_records == sorted(naive_records)
        assert naive_records[-1] > twigm_work[-1]

    def test_naive_can_be_limited(self):
        rows = run_query_size_scaling(max_steps=4, nesting_depth=6, naive_step_limit=2)
        assert "naive_records" in rows[0]
        assert "naive_records" not in rows[-1]


class TestBuilderScaling:
    def test_build_time_roughly_linear(self):
        rows = run_builder_scaling(step_counts=(1, 10, 50), repeats=5)
        assert [row["steps"] for row in rows] == [1, 10, 50]
        per_node = [row["build_us_per_node"] for row in rows]
        # Per-node cost may fluctuate but must not explode with query size.
        assert per_node[-1] < per_node[0] * 20


class TestQueryVariety:
    def test_all_workloads_covered(self):
        rows = run_query_variety(scale=0.05)
        datasets = {row["dataset"] for row in rows}
        assert datasets == {"protein", "recursive", "auction", "newsfeed", "treebank"}
        assert all(row["total_s"] >= 0 for row in rows)

    def test_subset_of_workloads(self):
        rows = run_query_variety(workload_names=["newsfeed"], scale=0.05)
        assert {row["dataset"] for row in rows} == {"newsfeed"}


class TestIncrementalLatency:
    def test_first_solution_well_before_end(self):
        row = run_incremental_latency(updates=400)
        assert row["solutions"] >= 1
        assert row["first_solution_s"] <= row["total_s"]
        assert row["latency_fraction"] < 0.6


class TestSoak:
    #: Tiny but valid soak: the warm-up (2 windows x 10 docs) outlasts the
    #: retention spool (6 docs) so the flatness baseline is taken warm.
    KWARGS = dict(
        documents=60,
        entries_per_document=40,
        window_documents=10,
        retain_documents=6,
    )

    def test_rows_and_flatness_assertions(self):
        rows = run_soak(**self.KWARGS)
        assert [row["phase"] for row in rows] == ["warmup", "steady"]
        warmup, steady = rows
        assert warmup["documents"] == 20 and steady["documents"] == 40
        # 1 root + 3 elements per entry, exact per document by construction.
        per_doc = 1 + 3 * 40
        assert warmup["elements"] == 20 * per_doc
        assert steady["elements"] == 40 * per_doc
        for key in (
            "elements_per_s", "docs_per_s", "peak_live_entries",
            "latency_p95_ms", "traced_mb",
        ):
            assert key in warmup and key in steady
        # The enforced claims are also reported.
        assert steady["traced_growth_pct"] <= 10.0 or steady["traced_mb"] < 1.5
        assert steady["spool_bytes"] > 0
        # Alert queries deliver sparsely but deliver.
        assert steady["matches"] > 0

    def test_expat_backend(self):
        rows = run_soak(parser="expat", **self.KWARGS)
        # Workload structure is backend-independent (the compare guard).
        assert rows[1]["elements"] == 40 * (1 + 3 * 40)
        assert rows[1]["matches"] == run_soak(**self.KWARGS)[1]["matches"]

    def test_too_few_windows_rejected(self):
        with pytest.raises(BenchmarkError, match="windows"):
            run_soak(documents=20, entries_per_document=10, window_documents=10)


class TestSweepHelper:
    def test_sweep_collects_rows(self):
        result = sweep("n", [1, 2, 3], lambda n: {"square": n * n})
        assert result.parameter == "n"
        assert [row["square"] for row in result.rows] == [1, 4, 9]
        assert [row["n"] for row in result.rows] == [1, 2, 3]
