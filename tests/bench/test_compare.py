"""Unit tests for the benchmark-regression gate (``vitex bench compare``)."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    compare_files,
    compare_reports,
    machine_calibration,
    merge_fresh_reports,
)
from repro.errors import BenchmarkError


def _pipeline_report(speedup=3.0, mbs=2.0, calibration=100.0):
    return {
        "experiment": "pipeline",
        "calibration_score": calibration,
        "rows": [
            {
                "backend": "pure",
                "doc_mb": 0.5,
                "query": "//a[b]//c",
                "speedup_vs_seed": speedup,
                "evaluate_mb_s": mbs,
            }
        ],
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        failures, lines = compare_reports(_pipeline_report(), _pipeline_report())
        assert failures == []
        assert any("ok" in line for line in lines)

    def test_relative_regression_fails(self):
        fresh = _pipeline_report(speedup=3.0 * (1 - DEFAULT_TOLERANCE) - 0.1)
        failures, _ = compare_reports(fresh, _pipeline_report())
        assert len(failures) == 1
        assert "speedup_vs_seed" in failures[0]

    def test_within_tolerance_passes(self):
        fresh = _pipeline_report(speedup=3.0 * 0.75, mbs=2.0 * 0.75)
        failures, _ = compare_reports(fresh, _pipeline_report())
        assert failures == []

    def test_absolute_metric_rescaled_by_calibration(self):
        # Runner probes at half the baseline machine's speed: half the MB/s
        # is exactly what the baseline predicts, so no failure.
        fresh = _pipeline_report(mbs=1.0, calibration=50.0)
        failures, lines = compare_reports(fresh, _pipeline_report())
        assert failures == []
        assert any("0.50x" in line for line in lines)

    def test_faster_runner_does_not_raise_the_bar(self):
        # Probe says 2x faster, throughput unchanged: clamped scale keeps ok.
        fresh = _pipeline_report(calibration=200.0)
        failures, _ = compare_reports(fresh, _pipeline_report())
        assert failures == []

    def test_absolute_informational_without_baseline_calibration(self):
        baseline = _pipeline_report()
        del baseline["calibration_score"]
        fresh = _pipeline_report(mbs=0.1, speedup=3.0)
        failures, lines = compare_reports(fresh, baseline)
        assert failures == []
        assert any("informational" in line for line in lines)

    def test_workload_drift_fails_with_regenerate_hint(self):
        fresh = _pipeline_report()
        fresh["rows"][0]["doc_mb"] = 2.0
        failures, _ = compare_reports(fresh, _pipeline_report())
        assert len(failures) == 1
        assert "regenerate" in failures[0]

    def test_no_matching_rows_fails(self):
        fresh = _pipeline_report()
        fresh["rows"][0]["backend"] = "imaginary"
        failures, _ = compare_reports(fresh, _pipeline_report())
        assert any("no fresh row matched" in failure for failure in failures)

    def test_experiment_mismatch_raises(self):
        other = _pipeline_report()
        other["experiment"] = "multiquery"
        with pytest.raises(BenchmarkError):
            compare_reports(_pipeline_report(), other)


class TestMergeFreshReports:
    def test_best_of_n_takes_per_metric_max(self):
        slow = _pipeline_report(speedup=2.0, mbs=2.5, calibration=90.0)
        fast = _pipeline_report(speedup=3.5, mbs=1.5, calibration=110.0)
        merged = merge_fresh_reports([slow, fast])
        row = merged["rows"][0]
        assert row["speedup_vs_seed"] == 3.5
        assert row["evaluate_mb_s"] == 2.5
        assert merged["calibration_score"] == 110.0

    def test_single_report_unchanged(self):
        report = _pipeline_report()
        assert merge_fresh_reports([report]) is report

    def test_mixed_experiments_rejected(self):
        other = _pipeline_report()
        other["experiment"] = "service"
        with pytest.raises(BenchmarkError):
            merge_fresh_reports([_pipeline_report(), other])


class TestCompareFiles:
    def _write(self, path, report):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle)

    def test_files_round_trip_and_merge(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        self._write(baseline_dir / "BENCH_pipeline.quick.json", _pipeline_report())
        run1 = tmp_path / "run1"
        run2 = tmp_path / "run2"
        run1.mkdir()
        run2.mkdir()
        self._write(run1 / "BENCH_pipeline.quick.json", _pipeline_report(speedup=1.0))
        self._write(run2 / "BENCH_pipeline.quick.json", _pipeline_report(speedup=3.1))
        failures, lines = compare_files(
            [
                str(run1 / "BENCH_pipeline.quick.json"),
                str(run2 / "BENCH_pipeline.quick.json"),
            ],
            baseline_dir=str(baseline_dir),
        )
        assert failures == []
        assert any("best-of-2" in line for line in lines)

    def test_missing_baseline_raises(self, tmp_path):
        report_path = tmp_path / "BENCH_pipeline.quick.json"
        self._write(report_path, _pipeline_report())
        with pytest.raises(BenchmarkError, match="baseline"):
            compare_files([str(report_path)], baseline_dir=str(tmp_path / "nowhere"))

    def test_comparing_baseline_to_itself_raises(self, tmp_path):
        report_path = tmp_path / "BENCH_pipeline.quick.json"
        self._write(report_path, _pipeline_report())
        with pytest.raises(BenchmarkError, match="baseline itself"):
            compare_files([str(report_path)], baseline_dir=str(tmp_path))

    def test_bad_tolerance_rejected(self, tmp_path):
        report_path = tmp_path / "BENCH_pipeline.quick.json"
        self._write(report_path, _pipeline_report())
        with pytest.raises(BenchmarkError, match="tolerance"):
            compare_files([str(report_path)], baseline_dir="/", tolerance=1.5)


class TestCalibration:
    def test_probe_returns_positive_score(self):
        score = machine_calibration(repeats=2)
        assert score > 0
