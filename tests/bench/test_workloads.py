"""Unit tests for the workload registry."""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    MULTIQUERY_MIXES,
    PROTEIN_PAPER_QUERY,
    WORKLOADS,
    build_multiquery_document,
    get_workload,
    iter_workloads,
    multiquery_mix,
)
from repro.core.engine import evaluate
from repro.errors import BenchmarkError
from repro.xpath.normalize import compile_query


class TestRegistry:
    def test_expected_workloads_present(self):
        assert set(WORKLOADS) == {"protein", "recursive", "auction", "newsfeed", "treebank"}

    def test_get_workload(self):
        assert get_workload("protein").name == "protein"
        with pytest.raises(BenchmarkError):
            get_workload("unknown")

    def test_iter_workloads_all_and_subset(self):
        assert len(iter_workloads()) == 5
        subset = iter_workloads(["protein", "newsfeed"])
        assert [w.name for w in subset] == ["protein", "newsfeed"]

    def test_paper_query_constant(self):
        assert PROTEIN_PAPER_QUERY == "//ProteinEntry[reference]/@id"


class TestWorkloadContents:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_queries_compile(self, name):
        workload = get_workload(name)
        assert workload.queries
        for query in workload.queries:
            assert compile_query(query).size >= 1

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_dataset_scales(self, name):
        workload = get_workload(name)
        small = workload.dataset(0.05).size_bytes()
        assert small > 0

    def test_invalid_scale_rejected(self):
        with pytest.raises(BenchmarkError):
            get_workload("protein").dataset(0)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_query_has_answers_at_small_scale(self, name):
        """Each canned query should return at least one solution on its dataset.

        Benchmarks that always return empty results would not exercise the
        candidate bookkeeping path at all.
        """
        workload = get_workload(name)
        text = workload.dataset(0.2).text()
        non_empty = 0
        for query in workload.queries:
            if len(evaluate(query, text)) > 0:
                non_empty += 1
        assert non_empty >= len(workload.queries) - 1


class TestMultiQueryWorkload:
    def test_document_is_deterministic_and_well_formed(self):
        first = build_multiquery_document(label_count=10, records=50, seed=3)
        second = build_multiquery_document(label_count=10, records=50, seed=3)
        assert first == second
        assert first.startswith("<feed>") and first.endswith("</feed>")
        assert first.count("<r ") == 50

    @pytest.mark.parametrize("kind", MULTIQUERY_MIXES)
    def test_mix_queries_compile_and_answer(self, kind):
        document = build_multiquery_document(label_count=10, records=200, seed=3)
        queries = multiquery_mix(kind, 5, label_count=10)
        assert len(queries) == 5
        non_empty = 0
        for query in queries:
            compile_query(query)
            if len(evaluate(query, document)) > 0:
                non_empty += 1
        assert non_empty >= 4

    def test_disjoint_mix_has_disjoint_label_sets(self):
        from repro.core.builder import build_machine
        from repro.core.queryindex import machine_label_profile

        queries = multiquery_mix("disjoint", 8, label_count=10)
        profiles = [machine_label_profile(build_machine(q))[0] for q in queries]
        for i, left in enumerate(profiles):
            for right in profiles[i + 1:]:
                assert not (left & right)

    def test_duplicate_mix_is_one_query_repeated(self):
        queries = multiquery_mix("duplicate", 4)
        assert len(set(queries)) == 1

    def test_unknown_mix_rejected(self):
        with pytest.raises(BenchmarkError):
            multiquery_mix("mystery", 3)
