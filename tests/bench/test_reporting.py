"""Unit tests for report rendering."""

from __future__ import annotations

from repro.bench.reporting import render_csv, render_series, render_table


ROWS = [
    {"dataset": "protein", "time_s": 1.25, "solutions": 40},
    {"dataset": "recursive", "time_s": 0.031, "solutions": 7},
]


class TestRenderTable:
    def test_contains_headers_and_values(self):
        table = render_table(ROWS)
        assert "dataset" in table
        assert "protein" in table
        assert "recursive" in table
        assert "40" in table

    def test_title_included(self):
        assert render_table(ROWS, title="My table").startswith("My table")

    def test_explicit_column_order(self):
        table = render_table(ROWS, columns=["solutions", "dataset"])
        header = table.splitlines()[0]
        assert header.index("solutions") < header.index("dataset")

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="Empty")

    def test_columns_aligned(self):
        lines = render_table(ROWS).splitlines()
        assert len(set(len(line.rstrip()) <= len(lines[0]) + 40 for line in lines)) >= 1

    def test_missing_cells_rendered_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        table = render_table(rows)
        assert "b" in table


class TestRenderCsv:
    def test_header_and_rows(self):
        csv = render_csv(ROWS)
        lines = csv.strip().splitlines()
        assert lines[0] == "dataset,time_s,solutions"
        assert lines[1].startswith("protein,")
        assert len(lines) == 3

    def test_empty(self):
        assert render_csv([]) == ""


class TestRenderSeries:
    def test_series_table_shape(self):
        text = render_series(
            {"twigm": [1, 2, 3], "naive": [1, 4, 9]},
            x_label="steps",
            x_values=[1, 2, 3],
            title="Scaling",
        )
        lines = text.splitlines()
        assert lines[0] == "Scaling"
        assert "steps" in lines[1]
        assert "twigm" in lines[1]
        assert "naive" in lines[1]
        # one row per x value
        assert len(lines) == 2 + 1 + 3

    def test_short_series_padded(self):
        text = render_series({"only": [5]}, x_label="x", x_values=[1, 2])
        assert "5" in text
