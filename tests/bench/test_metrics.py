"""Unit tests for the benchmark metering utilities."""

from __future__ import annotations

import time

import pytest

from repro.bench.metrics import (
    MemoryReport,
    RunMeasurement,
    Timer,
    document_byte_size,
    measure_peak_memory,
    measure_run,
    time_evaluation,
    time_parse_only,
)


class TestTimer:
    def test_accumulates_laps(self):
        timer = Timer()
        timer.start()
        lap = timer.stop()
        assert lap >= 0
        assert timer.elapsed == pytest.approx(lap)
        with timer.measure():
            pass
        assert timer.elapsed >= lap

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestMemoryMeasurement:
    def test_measures_allocation_peak(self):
        def allocate():
            return [bytearray(1024) for _ in range(512)]

        result, report = measure_peak_memory(allocate)
        assert len(result) == 512
        assert isinstance(report, MemoryReport)
        assert report.peak_bytes >= 512 * 1024
        assert report.peak_megabytes > 0.4

    def test_small_allocation_reports_small_peak(self):
        _, small = measure_peak_memory(lambda: [0] * 10)
        _, large = measure_peak_memory(lambda: [bytearray(1024) for _ in range(2048)])
        assert small.peak_bytes < large.peak_bytes


class TestTimingHelpers:
    def test_time_parse_only_counts_events(self):
        seconds, events = time_parse_only("<a><b/><c/></a>")
        assert seconds >= 0
        assert events == 8  # start/end doc + 3 start + 3 end

    def test_time_evaluation_returns_results(self):
        seconds, results, evaluator = time_evaluation("//b", "<a><b/><b/></a>")
        assert seconds >= 0
        assert len(results) == 2
        assert evaluator.statistics.elements == 3

    def test_document_byte_size(self):
        assert document_byte_size(["<a>", "é", "</a>"]) == len("<a>é</a>".encode("utf-8"))


class TestMeasureRun:
    def test_string_source(self):
        document = "<r>" + "<x id='1'/>" * 50 + "</r>"
        measurement = measure_run(
            query="//x/@id",
            dataset_name="inline",
            make_source=lambda: document,
        )
        assert measurement.solutions == 50
        assert measurement.document_bytes == len(document.encode("utf-8"))
        assert measurement.total_seconds >= 0
        assert measurement.query_seconds >= 0
        assert measurement.throughput_mb_per_s > 0

    def test_chunked_source_and_memory(self):
        def make_source():
            def chunks():
                yield "<r>"
                for index in range(100):
                    yield f"<x id='{index}'/>"
                yield "</r>"
            return chunks()

        measurement = measure_run(
            query="//x",
            dataset_name="chunked",
            make_source=make_source,
            measure_memory=True,
        )
        assert measurement.solutions == 100
        assert measurement.peak_memory_bytes is not None
        row = measurement.as_row()
        assert row["dataset"] == "chunked"
        assert "peak_mem_mb" in row
        assert "peak_stack_entries" in row

    def test_as_row_without_memory(self):
        measurement = RunMeasurement(
            query="//a",
            dataset="d",
            parse_seconds=0.5,
            total_seconds=1.0,
            document_bytes=2 * 1024 * 1024,
            solutions=3,
        )
        row = measurement.as_row()
        assert row["doc_mb"] == 2.0
        assert row["twigm_s"] == 0.5
        assert row["throughput_mb_s"] == 2.0
        assert "peak_mem_mb" not in row
