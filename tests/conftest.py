"""Shared pytest fixtures and helpers for the ViteX reproduction test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.baselines import evaluate_naive, evaluate_with_dom  # noqa: E402
from repro.core import evaluate  # noqa: E402
from repro.datasets import FIGURE_1_QUERY, FIGURE_1_XML  # noqa: E402


@pytest.fixture
def figure1_xml() -> str:
    """The paper's Figure 1 document."""
    return FIGURE_1_XML


@pytest.fixture
def figure1_query() -> str:
    """The paper's Section 1 walk-through query."""
    return FIGURE_1_QUERY


@pytest.fixture
def simple_doc() -> str:
    """A small non-recursive document used across unit tests."""
    return (
        "<library>"
        "<book id='b1' year='1999'><title>Streams</title>"
        "<author>Ada</author><price>30.50</price></book>"
        "<book id='b2'><title>Trees</title>"
        "<author>Grace</author><author>Linus</author><price>12</price></book>"
        "<journal id='j1'><title>Queries</title></journal>"
        "</library>"
    )


@pytest.fixture
def recursive_doc() -> str:
    """A small recursive document where tags nest inside themselves."""
    return (
        "<a>"
        "<a key='1'><b>x</b><a><b>y</b><c>z</c></a></a>"
        "<b>top</b>"
        "<c><b>inside c</b></c>"
        "<a><a><a><b>deep</b></a></a></a>"
        "</a>"
    )


def assert_engines_agree(query: str, document: str) -> None:
    """Assert that TwigM, the naive baseline and the DOM oracle agree."""
    twigm = evaluate(query, document).keys()
    dom = evaluate_with_dom(query, document).keys()
    naive = evaluate_naive(query, document).keys()
    assert twigm == dom, f"TwigM vs DOM mismatch for {query!r}: {twigm} != {dom}"
    assert naive == dom, f"naive vs DOM mismatch for {query!r}: {naive} != {dom}"


@pytest.fixture
def engines_agree():
    """Fixture exposing the cross-engine agreement assertion as a callable."""
    return assert_engines_agree
