"""Crash containment: a dying worker detaches only its own subscriptions.

The scenario the sharded design promises to survive: one worker process is
killed mid-document.  The owners of subscriptions routed to the dead worker
get an ``error`` push naming the subscription; every other subscription
keeps delivering, the document still finishes, and the server stays up for
the next document.
"""

from __future__ import annotations

import asyncio
import os
import signal

from repro.service.client import ServiceConnection
from repro.service.sharding import ShardedServiceServer

TIMEOUT = 10.0


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=60))


DOC_HEAD = "<feed><r><s1><v1>one</v1></s1>"
DOC_TAIL = "<s2><v2>two</v2></s2></r></feed>"


class TestWorkerCrashContainment:
    def test_kill_one_worker_mid_document(self):
        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            survivor = await ServiceConnection.connect(host, port)
            victim = await ServiceConnection.connect(host, port)
            publisher = await ServiceConnection.connect(host, port)
            try:
                # Two distinct queries spread least-loaded: one per worker.
                name_a = await survivor.subscribe("//s1/v1", name="keep")
                name_b = await victim.subscribe("//s2/v2", name="lost")
                assert (name_a, name_b) == ("keep", "lost")
                stats = await publisher.stats()
                assert sorted(w["subscriptions"] for w in stats["workers"]) == [1, 1]

                await publisher.feed(DOC_HEAD)
                first = await survivor.next_push(timeout=TIMEOUT)
                assert first["type"] == "solution" and first["name"] == "keep"

                # Kill the worker holding 'lost' (found via the routed pid).
                victim_index = server._routes["lost"]
                pid = stats["workers"][victim_index]["pid"]
                os.kill(pid, signal.SIGKILL)

                error = await victim.next_push(timeout=TIMEOUT)
                assert error["type"] == "error"
                assert error["name"] == "lost"
                assert f"worker {victim_index} died" in error["message"]

                # The survivor keeps delivering and the document finishes.
                await publisher.feed(DOC_TAIL)
                summary = await publisher.finish()
                assert summary["elements"] == 6
                eof = await survivor.next_push(timeout=TIMEOUT)
                assert eof["type"] == "eof" and eof["aborted"] is False
                assert eof["delivered"] == 1

                # Containment: the dead worker's subscription is gone, the
                # survivor's stays routed, and the next document still works.
                stats = await publisher.stats()
                assert stats["subscriptions"] == 1
                alive = [w["alive"] for w in stats["workers"]]
                assert sorted(alive) == [False, True]

                await publisher.feed(DOC_HEAD + DOC_TAIL)
                await publisher.finish()
                push = await survivor.next_push(timeout=TIMEOUT)
                assert push["type"] == "solution" and push["name"] == "keep"
                eof = await survivor.next_push(timeout=TIMEOUT)
                assert eof["type"] == "eof"
            finally:
                await survivor.close()
                await victim.close()
                await publisher.close()
                await server.close()

        run(scenario())
