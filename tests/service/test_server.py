"""Subscription-service behaviour tests (in-process asyncio stack).

Each test spins up a real :class:`ServiceServer` on an ephemeral loopback
port and drives it with :class:`ServiceClient` connections inside one
``asyncio.run`` — no external processes, no fixed ports, no sleeps longer
than the push round-trips being awaited.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceServer

TIMEOUT = 5.0

DOC_ONE = "<feed><r><s1><v1>hi</v1></s1></r></feed>"


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=30))


async def _start() -> ServiceServer:
    server = ServiceServer(parser="native")
    await server.start(port=0)
    return server


class TestSubscribeFeedSolve:
    def test_solution_pushed_to_subscriber(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                name = await subscriber.subscribe("//s1/v1", name="ticker")
                assert name == "ticker"
                await publisher.feed("<feed><r><s1><v1>h")
                await publisher.feed("i</v1></s1></r></feed>")
                push = await subscriber.next_push(timeout=TIMEOUT)
                assert push["type"] == "solution"
                assert push["name"] == "ticker"
                assert push["solution"]["tag"] == "v1"
                summary = await publisher.finish()
                assert summary["elements"] == 4
                eof = await subscriber.next_push(timeout=TIMEOUT)
                assert eof["type"] == "eof"
                assert eof["delivered"] == 1
                assert eof["aborted"] is False
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())

    def test_standing_query_spans_documents(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//s1/v1", name="q")
                for round_no in range(3):
                    await publisher.feed(DOC_ONE)
                    summary = await publisher.finish()
                    assert summary["document"] == round_no
                    push = await subscriber.next_push(timeout=TIMEOUT)
                    assert push["type"] == "solution"
                    eof = await subscriber.next_push(timeout=TIMEOUT)
                    assert eof["type"] == "eof" and eof["document"] == round_no
                stats = await subscriber.stats()
                assert stats["documents"] == 3
                assert stats["solutions"] == 3
                assert stats["machine_count"] == 1
                assert stats["subscription_detail"]["q"]["delivered"] == 3
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())

    def test_mid_stream_subscription_sees_remainder(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await publisher.feed("<feed><r><s1><v1>old</v1></s1></r>")
                reply = await subscriber.subscribe("//s1/v1", name="late")
                assert reply == "late"
                await publisher.feed("<r><s1><v1>new</v1></s1></r></feed>")
                await publisher.finish()
                push = await subscriber.next_push(timeout=TIMEOUT)
                assert push["type"] == "solution"
                # Only the remainder's match was delivered.
                eof = await subscriber.next_push(timeout=TIMEOUT)
                assert eof["type"] == "eof" and eof["delivered"] == 1
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())


class TestOwnershipAndErrors:
    def test_unsubscribe_requires_ownership(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            owner = await ServiceClient.connect(host, port)
            intruder = await ServiceClient.connect(host, port)
            try:
                await owner.subscribe("//a", name="mine")
                with pytest.raises(ServiceError):
                    await intruder.unsubscribe("mine")
                await owner.unsubscribe("mine")
                assert server.engine.machine_count == 0
            finally:
                await owner.close()
                await intruder.close()
                await server.close()

        run(scenario())

    def test_disconnect_unregisters_subscriptions(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            await subscriber.subscribe("//a[b]", name="gone")
            assert server.engine.machine_count == 1
            await subscriber.close()
            for _ in range(100):
                if server.engine.machine_count == 0:
                    break
                await asyncio.sleep(0.01)
            assert server.engine.machine_count == 0
            await server.close()

        run(scenario())

    def test_duplicate_name_rejected(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.subscribe("//a", name="dup")
                with pytest.raises(ServiceError):
                    await client.subscribe("//b", name="dup")
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_bad_query_rejected(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                with pytest.raises(ServiceError):
                    await client.subscribe("//a[", name="bad")
                # The connection survives a rejected subscribe.
                await client.ping()
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_malformed_xml_aborts_document(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//s1/v1", name="q")
                await publisher.feed("<feed><r></oops>")
                error = await publisher.next_push(timeout=TIMEOUT)
                assert error["type"] == "error" and error["cmd"] == "feed"
                eof = await subscriber.next_push(timeout=TIMEOUT)
                assert eof["type"] == "eof" and eof["aborted"] is True
                # The next document parses cleanly.
                await publisher.feed(DOC_ONE)
                await publisher.finish()
                push = await subscriber.next_push(timeout=TIMEOUT)
                assert push["type"] == "solution"
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())

    def test_finish_without_document_errors(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                with pytest.raises(ServiceError):
                    await client.finish()
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_raw_xml_lines_feed_the_stream(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//s1/v1", name="q")
                # Simulate a netcat publisher: raw XML lines, no JSON.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(DOC_ONE.encode("utf-8") + b"\n")
                writer.write(b'{"cmd":"finish"}\n')
                await writer.drain()
                push = await subscriber.next_push(timeout=TIMEOUT)
                assert push["type"] == "solution"
                writer.close()
                await writer.wait_closed()
            finally:
                await subscriber.close()
                await server.close()

        run(scenario())


class TestBackpressure:
    def test_slow_consumer_drops_oldest_not_parse_loop(self):
        async def scenario():
            # Outbox bound of 8: feeding 50 matches must drop ~42 oldest
            # frames while the parse loop keeps running and the newest
            # frames survive.
            server = ServiceServer(parser="native", outbox_limit=8)
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//v1", name="q")
                # Stall the subscriber's writer task by never reading and
                # filling the outbox synchronously: feed everything in one
                # frame so the server enqueues 50 solutions in one loop step.
                records = "".join(f"<v1>{i}</v1>" for i in range(50))
                await publisher.feed(f"<feed>{records}</feed>")
                summary = await publisher.finish()
                assert summary["elements"] == 51
                stats = await publisher.stats()
                detail = stats["subscription_detail"]["q"]
                assert detail["delivered"] == 50
                assert detail["dropped"] > 0
                received = 0
                last = None
                while True:
                    push = await subscriber.next_push(timeout=TIMEOUT)
                    if push["type"] == "eof":
                        break
                    if push["type"] == "solution":
                        received += 1
                        last = push
                assert received >= 1
                assert received + detail["dropped"] == 50
                # Drop-oldest: the newest solution (the 50th v1, document
                # pre-order 50) always survives.
                assert last["solution"]["order"] == 50
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())


class TestBackpressureControlFrames:
    def test_eof_and_replies_survive_a_full_outbox(self):
        async def scenario():
            # Outbox bound of 4 with 50 matches: solution frames drop, but
            # the eof and the stats reply must still arrive — losing a
            # control frame would wedge the client protocol.
            server = ServiceServer(parser="native", outbox_limit=4)
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//v1", name="q")
                records = "".join(f"<v1>{i}</v1>" for i in range(50))
                await publisher.feed(f"<feed>{records}</feed>")
                await publisher.finish()
                saw_eof = False
                while not saw_eof:
                    push = await subscriber.next_push(timeout=TIMEOUT)
                    saw_eof = push["type"] == "eof"
                # The same (slow) connection still gets its reply frames.
                stats = await subscriber.stats()
                assert stats["subscription_detail"]["q"]["dropped"] > 0
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())


class TestLocalSubscriptions:
    def test_local_callback_receives_solutions(self):
        async def scenario():
            server = await _start()
            received = []
            server.add_local_subscription(
                "//s1/v1", name="local", callback=lambda name, s: received.append((name, s))
            )
            host, port = server.address
            publisher = await ServiceClient.connect(host, port)
            try:
                await publisher.feed(DOC_ONE)
                await publisher.finish()
                assert len(received) == 1
                assert received[0][0] == "local"
                assert received[0][1].node.tag == "v1"
                stats = await publisher.stats()
                assert stats["subscription_detail"]["local"]["local"] is True
            finally:
                await publisher.close()
                await server.close()

        run(scenario())

    def test_raising_local_callback_is_isolated(self):
        async def scenario():
            server = await _start()

            def explode(name, solution):
                raise ValueError("bad watch callback")

            server.add_local_subscription("//v1", name="boom", callback=explode)
            host, port = server.address
            publisher = await ServiceClient.connect(host, port)
            try:
                # The feed that triggers the callback must complete, and
                # the publisher must stay connected.
                await publisher.feed("<feed><v1>x</v1><v1>y</v1></feed>")
                summary = await publisher.finish()
                assert summary["type"] == "finished"
                stats = await publisher.stats()
                detail = stats["subscription_detail"]["boom"]
                assert detail["delivered"] == 2
                assert detail["callback_errors"] == 2
            finally:
                await publisher.close()
                await server.close()

        run(scenario())


class TestStats:
    def test_stats_shape(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="a")
                await client.subscribe("//s1[v1]", name="b")
                await client.feed(DOC_ONE)
                await client.finish()
                stats = await client.stats()
                assert stats["machine_count"] == 2
                assert stats["subscriptions"] == 2
                assert stats["connections"] == 1
                assert stats["elements"] == 4
                assert stats["events_per_sec"] > 0
                assert set(stats["subscription_detail"]) == {"a", "b"}
            finally:
                await client.close()
                await server.close()

        run(scenario())
