"""Infinite-stream sessions over the wire: stream_open/feed/replay/close.

In-process asyncio tests mirroring ``test_server.py`` conventions, against
both the single-process server and the sharded front (which drives its
workers' document lifecycle from the boundary scanner itself).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import CHECKPOINT_VERSION_STREAM, ServiceServer
from repro.service.sharding import ShardedServiceServer

TIMEOUT = 5.0

DOCS = [
    '<a><b i="1">x</b></a>',
    "<doc/>",
    '<r><c><b i="2">y</b></c></r>',
]
STREAM = "".join(DOCS)


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=60))


async def _drain_doc(subscriber, *, solutions):
    """Collect ``solutions`` solution pushes then the document's eof."""
    got = []
    for _ in range(solutions):
        push = await subscriber.next_push(timeout=TIMEOUT)
        assert push["type"] == "solution", push
        got.append(push)
    eof = await subscriber.next_push(timeout=TIMEOUT)
    assert eof["type"] == "eof", eof
    return got, eof


class TestStreamSessionPlain:
    def test_multi_document_feed_broadcasts_eofs(self):
        async def scenario():
            server = ServiceServer(parser="native")
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//b", name="q")
                opened = await publisher.stream_open()
                assert opened["framing"] == "auto"
                assert opened["replay"] is False
                # Split mid-document: boundaries are the server's job now.
                await publisher.feed(STREAM[:9])
                await publisher.feed(STREAM[9:])
                _, eof0 = await _drain_doc(subscriber, solutions=1)
                assert eof0["document"] == 0 and eof0["aborted"] is False
                _, eof1 = await _drain_doc(subscriber, solutions=0)
                assert eof1["document"] == 1
                _, eof2 = await _drain_doc(subscriber, solutions=1)
                assert eof2["document"] == 2
                stats = await subscriber.stats()
                assert stats["stream_open"] is True
                assert stats["stream"]["documents"] == 3
                assert stats["documents"] == 3  # counted as eofs broadcast
                closed = await publisher.stream_close()
                assert closed["stats"]["documents"] == 3
                stats = await subscriber.stats()
                assert stats["stream_open"] is False
                assert stats["documents"] == 3
                # Bounded mode is back: classic feed/finish still works.
                await publisher.feed(DOCS[0])
                summary = await publisher.finish()
                assert summary["document"] == 3
                await _drain_doc(subscriber, solutions=1)
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())

    def test_finish_rejected_in_stream_mode(self):
        async def scenario():
            server = ServiceServer(parser="native")
            await server.start(port=0)
            host, port = server.address
            publisher = await ServiceClient.connect(host, port)
            try:
                await publisher.stream_open()
                with pytest.raises(ServiceError, match="stream mode"):
                    await publisher.finish()
                # A second stream_open is rejected while one is live.
                with pytest.raises(ServiceError, match="already open"):
                    await publisher.stream_open()
            finally:
                await publisher.close()
                await server.close()

        run(scenario())

    def test_replay_window_over_the_wire(self):
        async def scenario():
            server = ServiceServer(parser="native")
            await server.start(port=0)
            host, port = server.address
            publisher = await ServiceClient.connect(host, port)
            late = await ServiceClient.connect(host, port)
            try:
                opened = await publisher.stream_open(retain_documents=8)
                assert opened["replay"] is True
                await publisher.feed(STREAM)
                await publisher.ping()  # order the push lane
                name = await late.subscribe("//b", name="late", replay_window=True)
                assert name == "late"
                replays = []
                for _ in range(2):
                    push = await late.next_push(timeout=TIMEOUT)
                    assert push["type"] == "solution" and push["replayed"] is True
                    replays.append(
                        (push["solution"]["order"], push["solution"]["level"])
                    )
                assert replays == [(1, 2), (2, 3)]
                # Live delivery splices in: exactly once, no replay marker.
                await publisher.feed('<z><b i="3"/></z>')
                live, eof = await _drain_doc(late, solutions=1)
                assert live[0].get("replayed") is None
                assert live[0]["solution"]["tag"] == "b"
                assert live[0]["solution"]["order"] == 1
            finally:
                await publisher.close()
                await late.close()
                await server.close()

        run(scenario())

    def test_replay_window_needs_stream_and_retention(self):
        async def scenario():
            server = ServiceServer(parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                with pytest.raises(ServiceError, match="stream"):
                    await client.subscribe("//b", replay_window=True)
                await client.stream_open()  # no retention configured
                with pytest.raises(ServiceError, match="retention|retain"):
                    await client.subscribe("//b", replay_window=True)
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_on_error_skip_keeps_the_stream_alive(self):
        async def scenario():
            server = ServiceServer(parser="native")
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//b", name="q")
                await publisher.stream_open()
                bad = "<broken>&undefined;</broken>"
                await publisher.feed(DOCS[0] + bad + DOCS[0])
                _, eof0 = await _drain_doc(subscriber, solutions=1)
                assert eof0["aborted"] is False
                eof1 = await subscriber.next_push(timeout=TIMEOUT)
                assert eof1["type"] == "eof" and eof1["aborted"] is True
                _, eof2 = await _drain_doc(subscriber, solutions=1)
                assert eof2["aborted"] is False
                closed = await publisher.stream_close()
                assert closed["stats"]["documents"] == 2
                assert closed["stats"]["documents_failed"] == 1
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())

    def test_heartbeat_pushes(self):
        async def scenario():
            server = ServiceServer(parser="native")
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//b", name="q")
                await publisher.stream_open(heartbeat_interval=0.05)
                push = await subscriber.next_push(timeout=TIMEOUT)
                assert push["type"] == "heartbeat"
                assert push["documents"] == 0
                stats = await subscriber.stats()
                assert stats["heartbeats_sent"] >= 1
                assert stats["stream"]["heartbeat_interval"] == 0.05
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())

    def test_idle_timeout_closes_the_stream(self):
        async def scenario():
            server = ServiceServer(parser="native")
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//b", name="q")
                await publisher.stream_open(idle_timeout=0.15)
                await publisher.feed(DOCS[0])
                await _drain_doc(subscriber, solutions=1)
                push = await subscriber.next_push(timeout=TIMEOUT)
                assert push["type"] == "stream_idle"
                assert push["idle_timeout"] == 0.15
                assert push["stats"]["documents"] == 1
                stats = await subscriber.stats()
                assert stats["stream_open"] is False
                assert stats["idle_stream_closures"] == 1
                # The session is gone; the stream can be re-opened.
                await publisher.stream_open()
                await publisher.stream_close()
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())

    def test_checkpoint_v3_roundtrip(self, tmp_path):
        path = str(tmp_path / "stream.ck.json")

        async def scenario():
            server = ServiceServer(parser="expat", checkpoint_path=path)
            await server.start(port=0)
            host, port = server.address
            publisher = await ServiceClient.connect(host, port)
            try:
                await publisher.stream_open(retain_documents=8)
                # One sealed document plus a half-fed one.
                await publisher.feed(DOCS[0] + '<r><c><b i="2">y')
                reply = await publisher.checkpoint()
                assert reply["mid_document"] is True
            finally:
                await publisher.close()
                await server.close()

            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            assert payload["version"] == CHECKPOINT_VERSION_STREAM
            assert payload["server"]["stream"]["retain_documents"] == 8

            restored = ServiceServer(checkpoint_path=path)
            summary = restored.restore_from_file(path)
            assert summary["stream_open"] is True
            assert summary["mid_document"] is True
            await restored.start(port=0)
            host, port = restored.address
            publisher = await ServiceClient.connect(host, port)
            late = await ServiceClient.connect(host, port)
            try:
                name = await late.subscribe("//b", name="late", replay_window=True)
                assert name == "late"
                replay = await late.next_push(timeout=TIMEOUT)
                assert replay["replayed"] is True
                assert (replay["solution"]["order"], replay["solution"]["level"]) == (1, 2)
                # Finish the half-fed document; the graft delivers it live.
                await publisher.feed("</b></c></r>")
                live, eof = await _drain_doc(late, solutions=1)
                assert (live[0]["solution"]["order"], live[0]["solution"]["level"]) == (2, 3)
                assert eof["aborted"] is False
                closed = await publisher.stream_close()
                assert closed["stats"]["documents"] == 2
            finally:
                await publisher.close()
                await late.close()
                await restored.close()

        run(scenario())

    def test_sharded_front_refuses_stream_checkpoints(self, tmp_path):
        path = str(tmp_path / "stream.ck.json")

        async def scenario():
            server = ServiceServer(parser="native", checkpoint_path=path)
            await server.start(port=0)
            host, port = server.address
            publisher = await ServiceClient.connect(host, port)
            try:
                await publisher.stream_open()
                await publisher.feed(DOCS[0])
                await publisher.checkpoint()
            finally:
                await publisher.close()
                await server.close()

            sharded = ShardedServiceServer(
                workers=1, parser="native", checkpoint_path=path
            )
            try:
                with pytest.raises(Exception, match="single-process"):
                    await sharded.restore_from_file(path)
            finally:
                await sharded.close()

        run(scenario())


class TestStreamSessionSharded:
    @pytest.mark.parametrize("shard_mode", ["broadcast", "events"])
    def test_multi_document_feed_parity(self, shard_mode):
        async def scenario():
            server = ShardedServiceServer(
                workers=2, shard_mode=shard_mode, parser="native"
            )
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//b", name="q")
                await publisher.stream_open()
                await publisher.feed(STREAM[:9])
                await publisher.feed(STREAM[9:])
                _, eof0 = await _drain_doc(subscriber, solutions=1)
                assert eof0["document"] == 0 and eof0["aborted"] is False
                _, eof1 = await _drain_doc(subscriber, solutions=0)
                assert eof1["document"] == 1
                _, eof2 = await _drain_doc(subscriber, solutions=1)
                assert eof2["document"] == 2
                stats = await subscriber.stats()
                assert stats["stream_open"] is True
                assert stats["stream"]["documents"] == 3
                closed = await publisher.stream_close()
                assert closed["stats"]["documents"] == 3
                # Bounded mode still works after the stream session.
                await publisher.feed(DOCS[0])
                summary = await publisher.finish()
                assert summary["document"] == 3
                await _drain_doc(subscriber, solutions=1)
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())

    def test_skip_recovers_at_the_next_boundary(self):
        async def scenario():
            server = ShardedServiceServer(
                workers=2, shard_mode="broadcast", parser="native"
            )
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//b", name="q")
                await publisher.stream_open()
                bad = "<broken>&undefined;</broken>"
                await publisher.feed(DOCS[0] + bad + DOCS[0])
                _, eof0 = await _drain_doc(subscriber, solutions=1)
                assert eof0["aborted"] is False
                eof1 = await subscriber.next_push(timeout=TIMEOUT)
                assert eof1["type"] == "eof" and eof1["aborted"] is True
                _, eof2 = await _drain_doc(subscriber, solutions=1)
                assert eof2["aborted"] is False
                closed = await publisher.stream_close()
                assert closed["stats"]["documents"] == 2
                assert closed["stats"]["documents_failed"] == 1
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())

    def test_replay_window_on_the_sharded_front(self):
        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            publisher = await ServiceClient.connect(host, port)
            late = await ServiceClient.connect(host, port)
            try:
                opened = await publisher.stream_open(retain_documents=8)
                assert opened["replay"] is True
                await publisher.feed(STREAM)
                await publisher.ping()
                name = await late.subscribe("//b", name="late", replay_window=True)
                assert name == "late"
                replays = []
                for _ in range(2):
                    push = await late.next_push(timeout=TIMEOUT)
                    assert push["type"] == "solution" and push["replayed"] is True
                    replays.append(
                        (push["solution"]["order"], push["solution"]["level"])
                    )
                assert replays == [(1, 2), (2, 3)]
                await publisher.feed('<z><b i="3"/></z>')
                live, _eof = await _drain_doc(late, solutions=1)
                assert live[0]["solution"]["tag"] == "b"
                # Checkpoints are refused while the stream session is open.
                with pytest.raises(ServiceError, match="stream"):
                    await publisher.checkpoint()
                await publisher.stream_close()
                # The replay subscription was migrated onto a worker: it
                # keeps delivering in bounded mode.
                await publisher.feed('<z><b i="4"/></z>')
                await publisher.finish()
                live, _eof = await _drain_doc(late, solutions=1)
                assert live[0]["solution"]["tag"] == "b"
            finally:
                await publisher.close()
                await late.close()
                await server.close()

        run(scenario())
