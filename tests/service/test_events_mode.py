"""Parse-once events shard mode: parity, negotiation, aborts, checkpoints.

The acceptance bar of the protocol-v2 work: over the PR5 conformance
corpus, an events-mode front (workers parse nothing; the front tokenizes
once and broadcasts binary event frames) must push **the identical
frames** as the raw-XML broadcast mode — frame-identical at ``workers=1``,
per-subscription identical at ``workers=2`` — for both the pure and the
expat parser.  Everything runs real worker subprocesses; nothing is
mocked.
"""

from __future__ import annotations

import asyncio
import importlib.util
import json
import os

import pytest

from repro.errors import CheckpointError, ViteXError
from repro.service.client import ServiceConnection
from repro.service.protocol import PROTOCOL_V1, PROTOCOL_V2
from repro.service.sharding import ShardedServiceServer
from repro.service.worker import MAX_PROTOCOL_ENV


def _load_parity_harness():
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "api",
        "test_parity.py",
    )
    spec = importlib.util.spec_from_file_location("_parity_harness", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_parity = _load_parity_harness()
BACKENDS = _parity.BACKENDS
CORPUS = _parity.CORPUS
QUERIES = _parity.QUERIES

TIMEOUT = 10.0


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=120))


async def _collect_pushes(server, documents):
    """Drive one subscriber (all QUERIES) + publisher; return stripped pushes."""
    host, port = server.address
    subscriber = await ServiceConnection.connect(host, port)
    publisher = await ServiceConnection.connect(host, port)
    pushes = []
    try:
        for index, query in enumerate(QUERIES):
            await subscriber.subscribe(query, name=f"q{index}")
        for document in documents:
            half = len(document) // 2
            await publisher.feed(document[:half])
            await publisher.feed(document[half:])
            await publisher.finish()
            while True:
                frame = await subscriber.next_push(timeout=TIMEOUT)
                frame.pop("ts", None)
                pushes.append(frame)
                if frame["type"] == "eof":
                    break
    finally:
        await subscriber.close()
        await publisher.close()
        await server.close()
    return pushes


def _by_subscription(pushes):
    grouped = {}
    for frame in pushes:
        key = frame.get("name") if frame["type"] == "solution" else "__eof__"
        grouped.setdefault(key, []).append(frame)
    return grouped


async def _start_sharded(backend, workers, shard_mode):
    server = ShardedServiceServer(
        workers=workers, shard_mode=shard_mode, parser=backend
    )
    await server.start(port=0)
    return server


class TestEventsBroadcastParity:
    """events mode must be push-identical to raw-XML broadcast."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_worker_frame_identical(self, backend):
        async def scenario():
            broadcast = await _start_sharded(backend, 1, "broadcast")
            expected = await _collect_pushes(broadcast, CORPUS)

            events = await _start_sharded(backend, 1, "events")
            actual = await _collect_pushes(events, CORPUS)
            assert actual == expected

        run(scenario())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_two_workers_per_subscription_identical(self, backend):
        async def scenario():
            broadcast = await _start_sharded(backend, 2, "broadcast")
            expected = _by_subscription(await _collect_pushes(broadcast, CORPUS))

            events = await _start_sharded(backend, 2, "events")
            actual = _by_subscription(await _collect_pushes(events, CORPUS))
            assert actual == expected

        run(scenario())


class TestNegotiation:
    def test_auto_settles_on_events_with_a_capable_pool(self):
        async def scenario():
            server = await _start_sharded("pure", 2, "auto")
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                stats = await client.stats()
                assert stats["shard_mode"] == "events"
                assert all(
                    entry["protocol"] == PROTOCOL_V2 for entry in stats["workers"]
                )
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_auto_falls_back_to_broadcast_on_a_v1_pool(self, monkeypatch):
        """A worker that only offers protocol v1 (an older binary) silently
        drops the whole pool back to raw-XML broadcast — and documents
        still flow."""
        monkeypatch.setenv(MAX_PROTOCOL_ENV, "1")

        async def scenario():
            server = await _start_sharded("pure", 2, "auto")
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                stats = await client.stats()
                assert stats["shard_mode"] == "broadcast"
                assert all(
                    entry["protocol"] == PROTOCOL_V1 for entry in stats["workers"]
                )
                await client.subscribe("//item", name="q")
                await client.feed("<r><item>x</item></r>")
                reply = await client.finish()
                assert reply["elements"] == 2
                push = await client.next_push(timeout=TIMEOUT)
                assert push["type"] == "solution"
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_explicit_events_mode_refuses_a_v1_pool(self, monkeypatch):
        monkeypatch.setenv(MAX_PROTOCOL_ENV, "1")

        async def scenario():
            server = ShardedServiceServer(workers=2, shard_mode="events")
            try:
                with pytest.raises(ViteXError, match="protocol v2"):
                    await server.start(port=0)
            finally:
                await server.close()

        run(scenario())

    def test_invalid_shard_mode_is_rejected(self):
        with pytest.raises(ValueError, match="shard_mode"):
            ShardedServiceServer(workers=2, shard_mode="telepathy")


class TestAbortParity:
    """Parse errors happen at the front in events mode, in the workers in
    broadcast mode; the client must not be able to tell the difference."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_malformed_chunk_yields_identical_error_and_eof(self, backend):
        async def scenario():
            outcomes = []
            for mode in ("broadcast", "events"):
                server = await _start_sharded(backend, 2, mode)
                host, port = server.address
                subscriber = await ServiceConnection.connect(host, port)
                publisher = await ServiceConnection.connect(host, port)
                try:
                    await subscriber.subscribe("//item", name="q")
                    await publisher.feed("<root><item>ok</item>")
                    await publisher.feed("</mismatched>")
                    error = await publisher.next_push(timeout=TIMEOUT)
                    error.pop("ts", None)
                    eof = await subscriber.next_push(timeout=TIMEOUT)
                    while eof["type"] != "eof":
                        eof = await subscriber.next_push(timeout=TIMEOUT)
                    eof.pop("ts", None)
                    eof.pop("delivered", None)
                    outcomes.append((error, eof))
                finally:
                    await subscriber.close()
                    await publisher.close()
                    await server.close()
            broadcast_outcome, events_outcome = outcomes
            assert events_outcome == broadcast_outcome
            error, eof = events_outcome
            assert error["type"] == "error" and error["cmd"] == "feed"
            assert eof["aborted"] is True and eof["error"]

        run(scenario())

    def test_document_recovers_after_an_events_mode_abort(self):
        async def scenario():
            server = await _start_sharded("pure", 2, "events")
            host, port = server.address
            subscriber = await ServiceConnection.connect(host, port)
            publisher = await ServiceConnection.connect(host, port)
            try:
                await subscriber.subscribe("//item", name="q")
                await publisher.feed("<broken></nope>")
                error = await publisher.next_push(timeout=TIMEOUT)
                assert error["type"] == "error"
                eof = await subscriber.next_push(timeout=TIMEOUT)
                assert eof["type"] == "eof" and eof["aborted"] is True
                # The next document starts a fresh epoch and matches cleanly.
                await publisher.feed("<r><item>back</item></r>")
                reply = await publisher.finish()
                assert reply["elements"] == 2
                push = await subscriber.next_push(timeout=TIMEOUT)
                assert push["type"] == "solution"
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())


DOC_ITEMS = 20
CHECKPOINT_DOC = (
    "<root>"
    + "".join(f"<item><v>{i}</v></item>" for i in range(DOC_ITEMS))
    + "</root>"
)


class TestEventsCheckpoint:
    def test_mid_document_checkpoint_is_spool_free_and_resumes(self, tmp_path):
        """An events-mode shard snapshot carries no parser spool (the front
        keeps the one spool); a restore replays it and the document
        finishes with every remaining solution delivered."""
        path = str(tmp_path / "events.ckpt.json")

        async def scenario():
            server = await _start_sharded("pure", 2, "events")
            host, port = server.address
            subscriber = await ServiceConnection.connect(host, port)
            publisher = await ServiceConnection.connect(host, port)
            half = len(CHECKPOINT_DOC) // 2
            await subscriber.subscribe("//item", name="q")
            await publisher.feed(CHECKPOINT_DOC[:half])
            await publisher.ping()  # feed is fire-and-forget; sync first
            meta = await server.save_checkpoint_async(path)
            assert meta["mid_document"] is True
            early = 0
            while True:
                try:
                    frame = await subscriber.next_push(timeout=0.5)
                except asyncio.TimeoutError:
                    break
                early += frame["type"] == "solution"
            await subscriber.close()
            await publisher.close()
            await server.close()

            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            assert payload["server"]["shard_mode"] == "events"
            assert isinstance(payload.get("front"), dict)
            for shard in payload["shards"]:
                # The shrink the tentpole promises: events shards carry no
                # parser state at all, just the engine.
                assert shard["session"] == {"parser": "events"}

            restored = ShardedServiceServer(workers=2, parser="pure")
            summary = await restored.restore_from_file(path)
            assert summary["mid_document"] is True
            await restored.start(port=0)
            host, port = restored.address
            subscriber = await ServiceConnection.connect(host, port)
            publisher = await ServiceConnection.connect(host, port)
            try:
                await subscriber.subscribe("//item", name="q")
                await publisher.feed(CHECKPOINT_DOC[half:])
                reply = await publisher.finish()
                assert reply["elements"] == 2 * DOC_ITEMS + 1
                late = 0
                while True:
                    frame = await subscriber.next_push(timeout=TIMEOUT)
                    if frame["type"] == "eof":
                        break
                    late += frame["type"] == "solution"
                assert early + late == DOC_ITEMS
            finally:
                await subscriber.close()
                await publisher.close()
                await restored.close()

        run(scenario())

    def test_events_checkpoint_refuses_a_broadcast_only_restore(self, tmp_path):
        path = str(tmp_path / "events.ckpt.json")

        async def scenario():
            server = await _start_sharded("pure", 2, "events")
            host, port = server.address
            publisher = await ServiceConnection.connect(host, port)
            await publisher.feed(CHECKPOINT_DOC[: len(CHECKPOINT_DOC) // 2])
            await publisher.ping()
            await server.save_checkpoint_async(path)
            await publisher.close()
            await server.close()

            restored = ShardedServiceServer(
                workers=2, shard_mode="broadcast", parser="pure"
            )
            try:
                await restored._ensure_workers()
                with pytest.raises(CheckpointError, match="events"):
                    await restored.restore_from_file(path)
            finally:
                await restored.close()

        run(scenario())

    def test_broadcast_checkpoint_resumes_under_an_events_pool(self, tmp_path):
        """A raw-XML mid-document checkpoint keeps streaming over protocol
        v1 for the rest of that document, even when the restoring pool
        negotiated events mode; the next document switches to events."""
        path = str(tmp_path / "broadcast.ckpt.json")

        async def scenario():
            server = await _start_sharded("pure", 2, "broadcast")
            host, port = server.address
            subscriber = await ServiceConnection.connect(host, port)
            publisher = await ServiceConnection.connect(host, port)
            half = len(CHECKPOINT_DOC) // 2
            await subscriber.subscribe("//item", name="q")
            await publisher.feed(CHECKPOINT_DOC[:half])
            await publisher.ping()
            await server.save_checkpoint_async(path)
            await subscriber.close()
            await publisher.close()
            await server.close()

            restored = ShardedServiceServer(workers=2, parser="pure")
            await restored.restore_from_file(path)
            await restored.start(port=0)
            host, port = restored.address
            subscriber = await ServiceConnection.connect(host, port)
            publisher = await ServiceConnection.connect(host, port)
            try:
                stats = await publisher.stats()
                assert stats["shard_mode"] == "events"  # negotiated capability
                await subscriber.subscribe("//item", name="q")
                await publisher.feed(CHECKPOINT_DOC[half:])
                reply = await publisher.finish()
                assert reply["elements"] == 2 * DOC_ITEMS + 1
                # The next document runs parse-once.
                await publisher.feed("<r><item>next</item></r>")
                reply = await publisher.finish()
                assert reply["elements"] == 2
            finally:
                await subscriber.close()
                await publisher.close()
                await restored.close()

        run(scenario())


class TestStatsSurface:
    def test_stats_report_mode_protocol_and_worker_cpu(self):
        async def scenario():
            server = await _start_sharded("pure", 2, "auto")
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//item", name="q")
                await client.feed("<r><item>x</item></r>")
                await client.finish()
                stats = await client.stats()
                assert stats["shard_mode"] == "events"
                assert isinstance(stats["worker_cpu_seconds"], float)
                for entry in stats["workers"]:
                    assert entry["protocol"] == PROTOCOL_V2
                    assert entry["cpu_seconds"] >= 0.0
                assert stats["elements"] == 2
            finally:
                await client.close()
                await server.close()

        run(scenario())
