"""Sharded checkpoints: version-2 payloads across worker-count changes.

The contract from the sharding design:

* **between documents** every shard is idle, so a checkpoint written by N
  workers restores onto *any* worker count (including the plain
  single-process server) — subscriptions re-route by name + fingerprint
  and their delivery counters survive;
* **mid-document** shard *i* carries worker *i*'s live parse state, so the
  checkpoint must be restored with the same worker count — a mismatch is
  refused with an actionable message;
* a version-1 (single-process) checkpoint restores onto a sharded server,
  and a between-documents version-2 checkpoint restores onto a plain one.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import CheckpointError
from repro.service.client import ServiceConnection
from repro.service.server import ServiceServer
from repro.service.sharding import ShardedServiceServer

TIMEOUT = 10.0

DOC = (
    "<feed>"
    "<r><s1><v1>one</v1></s1></r>"
    "<r><s2><v2>two</v2></s2></r>"
    "</feed>"
)

#: Mid-document split inside the third <v1> text node (same shape as the
#: resume smoke test): completing it with pre-order 9 proves the restored
#: workers kept the document-global element counter.
DOC_PREFIX = (
    "<feed>"
    "<r><s1><v1>one</v1></s1></r>"
    "<r><s1><v1>two</v1></s1></r>"
    "<r><s1><v1>th"
)
DOC_SUFFIX = "ree</v1></s1></r></feed>"


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=120))


async def _seed_sharded(path, workers=2):
    """Run a 2-subscription document on a sharded server and checkpoint it.

    Returns the delivered counts the restore must preserve.
    """
    server = ShardedServiceServer(workers=workers, parser="native")
    await server.start(port=0)
    host, port = server.address
    client = await ServiceConnection.connect(host, port)
    try:
        await client.subscribe("//s1/v1", name="alpha")
        await client.subscribe("//s2/v2", name="beta")
        await client.feed(DOC)
        await client.finish()
        for _ in range(2):  # one solution each
            push = await client.next_push(timeout=TIMEOUT)
            assert push["type"] == "solution"
        eof = await client.next_push(timeout=TIMEOUT)
        assert eof["type"] == "eof"
        await server.save_checkpoint_async(path)
    finally:
        await client.close()
        await server.close()


async def _verify_restored(server, expect_elements=7):
    """Re-attach both subscriptions by name and run one more document."""
    await server.start(port=0)
    host, port = server.address
    client = await ServiceConnection.connect(host, port)
    try:
        detail = server.stats()["subscription_detail"]
        assert detail["alpha"]["delivered"] == 1
        assert detail["beta"]["delivered"] == 1
        await client.subscribe("//s1/v1", name="alpha")
        await client.subscribe("//s2/v2", name="beta")
        await client.feed(DOC)
        summary = await client.finish()
        assert summary["elements"] == expect_elements
        names = set()
        for _ in range(2):
            push = await client.next_push(timeout=TIMEOUT)
            assert push["type"] == "solution"
            names.add(push["name"])
        assert names == {"alpha", "beta"}
    finally:
        await client.close()
        await server.close()


class TestBetweenDocuments:
    @pytest.mark.parametrize("target_workers", [1, 3])
    def test_two_worker_checkpoint_restores_onto_other_counts(
        self, tmp_path, target_workers
    ):
        path = str(tmp_path / "sharded.json")

        async def scenario():
            await _seed_sharded(path, workers=2)
            restored = ShardedServiceServer(workers=target_workers, parser="native")
            summary = await restored.restore_from_file(path)
            assert summary["subscriptions"] == 2
            assert summary["mid_document"] is False
            await _verify_restored(restored)

        run(scenario())

    def test_plain_server_accepts_idle_sharded_checkpoint(self, tmp_path):
        path = str(tmp_path / "sharded.json")

        async def scenario():
            await _seed_sharded(path, workers=2)
            restored = ServiceServer(parser="native")
            summary = restored.restore_from_file(path)
            assert summary["subscriptions"] == 2
            assert summary["mid_document"] is False
            await _verify_restored(restored)

        run(scenario())

    def test_plain_checkpoint_restores_onto_sharded_server(self, tmp_path):
        path = str(tmp_path / "plain.json")

        async def scenario():
            server = ServiceServer(parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="alpha")
                await client.subscribe("//s2/v2", name="beta")
                await client.feed(DOC)
                await client.finish()
                for _ in range(2):
                    await client.next_push(timeout=TIMEOUT)
                await client.next_push(timeout=TIMEOUT)  # eof
                server.save_checkpoint(path)
            finally:
                await client.close()
                await server.close()

            restored = ShardedServiceServer(workers=2, parser="native")
            summary = await restored.restore_from_file(path)
            assert summary["subscriptions"] == 2
            await _verify_restored(restored)

        run(scenario())


class TestMidDocument:
    def test_restore_with_matching_worker_count_completes_the_document(
        self, tmp_path
    ):
        path = str(tmp_path / "mid.json")

        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="standing")
                await client.feed(DOC_PREFIX)
                for _ in range(2):  # the two complete records
                    push = await client.next_push(timeout=TIMEOUT)
                    assert push["type"] == "solution"
                meta = await server.save_checkpoint_async(path)
                assert meta["mid_document"] is True
            finally:
                await client.close()
                await server.close()

            restored = ShardedServiceServer(workers=2, parser="native")
            summary = await restored.restore_from_file(path)
            assert summary["mid_document"] is True
            await restored.start(port=0)
            host, port = restored.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="standing")
                await client.feed(DOC_SUFFIX)
                summary = await client.finish()
                assert summary["elements"] == 10
                push = await client.next_push(timeout=TIMEOUT)
                assert push["type"] == "solution"
                # Document-global pre-order survived the restore.
                assert push["solution"]["order"] == 9
                assert push["solution"]["tag"] == "v1"
            finally:
                await client.close()
                await restored.close()

        run(scenario())

    def test_restore_with_mismatched_worker_count_is_refused(self, tmp_path):
        path = str(tmp_path / "mid.json")

        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="standing")
                await client.feed(DOC_PREFIX)
                for _ in range(2):  # barrier: the feed reached the workers
                    push = await client.next_push(timeout=TIMEOUT)
                    assert push["type"] == "solution"
                meta = await server.save_checkpoint_async(path)
                assert meta["mid_document"] is True
            finally:
                await client.close()
                await server.close()

            restored = ShardedServiceServer(workers=3, parser="native")
            with pytest.raises(CheckpointError, match="--workers 2"):
                await restored.restore_from_file(path)
            await restored.close()

        run(scenario())
