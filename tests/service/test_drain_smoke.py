"""Graceful-drain smoke: SIGTERM on ``vitex serve`` flushes and exits 0.

Real child processes: the server (plain and sharded) is started through the
CLI, a subscriber attaches and receives solutions, then the server gets
SIGTERM.  The contract: the listener stops accepting, every connected
subscriber's outbox is flushed, an ``eof`` frame with ``draining: true`` is
broadcast, and the process exits with status 0.  SIGINT keeps the immediate
shutdown path (no draining eof) — only SIGTERM drains.
"""

from __future__ import annotations

import asyncio
import signal
import subprocess

import pytest

from repro.service.client import ServiceConnection

from test_resume_smoke import _await_address, _spawn, _terminate

PUSH_TIMEOUT = 10.0

DOC = "<feed><r><s1><v1>hi</v1></s1></r></feed>"


class TestSigtermDrain:
    @pytest.mark.parametrize("workers", ["1", "2"])
    def test_sigterm_broadcasts_draining_eof_and_exits_zero(self, workers):
        server = _spawn(["serve", "--port", "0", "--workers", workers])
        try:
            host, port = _await_address(server)

            async def scenario():
                subscriber = await ServiceConnection.connect(host, port)
                try:
                    await subscriber.subscribe("//s1/v1", name="standing")
                    await subscriber.feed(DOC)
                    summary = await subscriber.finish()
                    assert summary["elements"] == 4
                    push = await subscriber.next_push(timeout=PUSH_TIMEOUT)
                    assert push["type"] == "solution"
                    eof = await subscriber.next_push(timeout=PUSH_TIMEOUT)
                    assert eof["type"] == "eof" and eof["aborted"] is False

                    server.send_signal(signal.SIGTERM)
                    draining = await subscriber.next_push(timeout=PUSH_TIMEOUT)
                    assert draining["type"] == "eof"
                    assert draining["draining"] is True
                    assert draining["aborted"] is False
                    assert draining["delivered"] == 1
                finally:
                    await subscriber.close()

            asyncio.run(scenario())
            assert server.wait(timeout=15) == 0
            output = server.stdout.read()
            assert "draining" in output
        finally:
            _terminate(server)

    def test_sigterm_aborts_open_document_with_draining_eof(self):
        """A document left open at SIGTERM is aborted (the client sees
        ``aborted: true`` + ``draining: true``), and the exit is still 0."""
        server = _spawn(["serve", "--port", "0", "--workers", "2"])
        try:
            host, port = _await_address(server)

            async def scenario():
                subscriber = await ServiceConnection.connect(host, port)
                try:
                    await subscriber.subscribe("//s1/v1", name="standing")
                    await subscriber.feed("<feed><r><s1>")  # never finished
                    await subscriber.ping()
                    server.send_signal(signal.SIGTERM)
                    eof = await subscriber.next_push(timeout=PUSH_TIMEOUT)
                    assert eof["type"] == "eof"
                    assert eof["draining"] is True
                    assert eof["aborted"] is True
                finally:
                    await subscriber.close()

            asyncio.run(scenario())
            assert server.wait(timeout=15) == 0
        finally:
            _terminate(server)
