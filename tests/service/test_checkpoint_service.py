"""Service-level checkpoint/restore: wire frames, reattach, abort hygiene.

In-process asyncio tests mirroring ``test_server.py`` conventions; the
kill-the-real-process resume path lives in ``test_resume_smoke.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import CHECKPOINT_FORMAT, ServiceServer

TIMEOUT = 5.0


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=30))


class TestCheckpointFrame:
    def test_checkpoint_mid_document_and_restore(self, tmp_path):
        path = str(tmp_path / "ck.json")

        async def scenario():
            server = ServiceServer(parser="expat", checkpoint_path=path)
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//s1/v1", name="standing")
                await publisher.feed("<feed><r><s1><v1>first</v1></s1></r><r><s1><v1>sp")
                push = await subscriber.next_push(timeout=TIMEOUT)
                assert push["solution"]["order"] == 3
                reply = await publisher.checkpoint()
                assert reply["path"] == path
                assert reply["mid_document"] is True
                assert reply["bytes"] > 0
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            assert payload["format"] == CHECKPOINT_FORMAT

            restored = ServiceServer()
            summary = restored.restore_from_file(path)
            assert summary["mid_document"] is True
            assert summary["subscriptions"] == 1
            await restored.start(port=0)
            host, port = restored.address
            subscriber = await ServiceClient.connect(host, port)
            publisher = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//s1/v1", name="standing")
                await publisher.feed("lit</v1></s1></r></feed>")
                summary = await publisher.finish()
                assert summary["elements"] == 7
                push = await subscriber.next_push(timeout=TIMEOUT)
                # Document-global identity survives the process boundary:
                # the completed v1 is the 7th element (order 6).
                assert push["solution"]["order"] == 6
            finally:
                await subscriber.close()
                await publisher.close()
                await restored.close()

        run(scenario())

    def test_reattach_requires_equivalent_query(self, tmp_path):
        path = str(tmp_path / "ck.json")

        async def scenario():
            server = ServiceServer(checkpoint_path=path)
            await server.start(port=0)
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="standing")
                await client.feed("<feed><r><s1><v1>x")
                await client.checkpoint()
            finally:
                await client.close()
                await server.close()

            restored = ServiceServer()
            restored.restore_from_file(path)
            await restored.start(port=0)
            host, port = restored.address
            client = await ServiceClient.connect(host, port)
            try:
                with pytest.raises(ServiceError, match="re-attach"):
                    await client.subscribe("//totally/different", name="standing")
                # Differently-spelled but structurally identical: accepted.
                await client.subscribe("//s1 / v1", name="standing")
                stats = await client.stats()
                detail = stats["subscription_detail"]["standing"]
                assert detail["detached"] is False
            finally:
                await client.close()
                await restored.close()

        run(scenario())

    def test_restore_frame_refused_with_state(self, tmp_path):
        path = str(tmp_path / "ck.json")

        async def scenario():
            server = ServiceServer(checkpoint_path=path)
            await server.start(port=0)
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.subscribe("//a", name="q")
                await client.checkpoint()
                with pytest.raises(ServiceError, match="existing subscriptions"):
                    await client.restore(path)
            finally:
                await client.close()
                await server.close()

            # An idle, empty server accepts the restore frame.
            empty = ServiceServer(checkpoint_path=path)
            await empty.start(port=0)
            host, port = empty.address
            client = await ServiceClient.connect(host, port)
            try:
                reply = await client.restore(path)
                assert reply["subscriptions"] == 1
            finally:
                await client.close()
                await empty.close()

        run(scenario())

    def test_checkpoint_between_documents(self, tmp_path):
        path = str(tmp_path / "ck.json")

        async def scenario():
            server = ServiceServer(checkpoint_path=path)
            await server.start(port=0)
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="standing")
                await client.feed("<feed><r><s1><v1>x</v1></s1></r></feed>")
                await client.finish()
                reply = await client.checkpoint()
                assert reply["mid_document"] is False
            finally:
                await client.close()
                await server.close()

            restored = ServiceServer()
            restored.restore_from_file(path)
            await restored.start(port=0)
            host, port = restored.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="standing")
                await client.feed("<feed><r><s1><v1>y</v1></s1></r></feed>")
                await client.finish()
                push = await client.next_push(timeout=TIMEOUT)
                assert push["type"] == "solution"
                stats = await client.stats()
                assert stats["documents"] == 2  # counted across the restart
            finally:
                await client.close()
                await restored.close()

        run(scenario())

    def test_local_rebind_refuses_different_query(self, tmp_path):
        path = str(tmp_path / "ck.json")

        async def scenario():
            server = ServiceServer(checkpoint_path=path)
            await server.start(port=0)
            server.add_local_subscription("//article//headline", name="news")
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.feed("<feed><r>")
                await client.checkpoint()
            finally:
                await client.close()
                await server.close()

            restored = ServiceServer()
            restored.restore_from_file(path)
            from repro.errors import CheckpointError

            with pytest.raises(CheckpointError, match="re-bind"):
                restored.rebind_local_callback(
                    "news", lambda name, solution: None, query="//sports//score"
                )
            # The restored spelling (and equivalent spellings) re-bind fine.
            assert restored.rebind_local_callback(
                "news", lambda name, solution: None, query="// article // headline"
            )
            await restored.close()

        run(scenario())

    def test_client_paths_confined_to_checkpoint_directory(self, tmp_path):
        path = str(tmp_path / "ck.json")
        outside = str(tmp_path / "sub" / "escape.json")

        async def scenario():
            server = ServiceServer(checkpoint_path=path)
            await server.start(port=0)
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.subscribe("//a", name="q")
                with pytest.raises(ServiceError, match="confined"):
                    await client.checkpoint("/etc/vitex-should-not-exist.json")
                with pytest.raises(ServiceError, match="confined"):
                    await client.checkpoint(outside)
                with pytest.raises(ServiceError, match="confined"):
                    await client.restore("../somewhere/else.json")
                # A bare file name inside the configured directory is fine.
                reply = await client.checkpoint("renamed.json")
                assert reply["path"] == str(tmp_path / "renamed.json")
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_auto_checkpoint_writes_file(self, tmp_path):
        path = str(tmp_path / "auto.json")

        async def scenario():
            server = ServiceServer(checkpoint_path=path, checkpoint_interval=0.05)
            await server.start(port=0)
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="standing")
                await client.feed("<feed><r><s1><v1>x")
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    stats = await client.stats()
                    if stats["checkpoints_written"]:
                        break
                assert stats["checkpoints_written"] >= 1
                assert stats["last_checkpoint_bytes"] > 0
            finally:
                await client.close()
                await server.close()

            restored = ServiceServer()
            summary = restored.restore_from_file(path)
            assert summary["mid_document"] is True
            await restored.close()

        run(scenario())


class TestAbortHygiene:
    def test_abort_clears_session_and_counts(self):
        async def scenario():
            server = ServiceServer()
            await server.start(port=0)
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="q")
                await client.feed("<feed><r><s1><v1>x</v1></s1></r>")
                await client.feed("</wrong>")
                await client.ping()  # order barrier: the error has landed
                stats = await client.stats()
                assert stats["aborted_documents"] == 1
                assert stats["document_open"] is False
                # The aborted document's elements still count in the totals
                # (pre-fix they vanished with the stale session entry).
                assert stats["elements"] == 4
                pushes = client.pending_pushes()
                kinds = [frame["type"] for frame in pushes]
                assert "error" in kinds
                assert any(
                    frame["type"] == "eof" and frame["aborted"] for frame in pushes
                )
                # The server accepts a fresh document afterwards.
                await client.feed("<feed><r><s1><v1>y</v1></s1></r></feed>")
                summary = await client.finish()
                assert summary["elements"] == 4
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_stats_report_open_document(self):
        async def scenario():
            server = ServiceServer()
            await server.start(port=0)
            host, port = server.address
            client = await ServiceClient.connect(host, port)
            try:
                stats = await client.stats()
                assert stats["document_open"] is False
                await client.feed("<feed><r>")
                stats = await client.stats()
                assert stats["document_open"] is True
                assert stats["elements"] == 2
            finally:
                await client.close()
                await server.close()

        run(scenario())
