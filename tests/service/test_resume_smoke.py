"""End-to-end failover smoke: serve → publish half → checkpoint → SIGKILL →
``vitex resume`` → publish the rest → the subscriber gets the completed
solutions.

Real child processes on a real socket, exercising the ``vitex checkpoint``
and ``vitex resume`` verbs: the second server is a genuinely fresh
interpreter, so everything it knows about the half-parsed document came
through the checkpoint file.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient

SERVER_READY_RE = re.compile(r"listening on ([\d.]+):(\d+)")
STARTUP_TIMEOUT = 20.0
PUSH_TIMEOUT = 10.0

#: Split inside the third <v1> text node: its solution can only complete
#: after the resume, and its pre-order identity (order 9) only comes out
#: right if the restored server kept the global element counter.
DOC_PREFIX = (
    "<feed>"
    "<r><s1><v1>one</v1></s1></r>"
    "<r><s1><v1>two</v1></s1></r>"
    "<r><s1><v1>th"
)
DOC_SUFFIX = "ree</v1></s1></r></feed>"


def _repo_env():
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "src",
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _spawn(args):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_repo_env(),
    )


def _await_address(process):
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = SERVER_READY_RE.search(line)
        if match:
            return match.group(1), int(match.group(2))
    raise AssertionError("server did not announce its address")


def _run_cli(args, timeout=30):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=_repo_env(),
        timeout=timeout,
    )


def _terminate(process):
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10)


class TestResumeSmoke:
    def test_checkpoint_kill_resume_subscriber_completes(self, tmp_path):
        checkpoint = str(tmp_path / "smoke-checkpoint.json")
        prefix_file = tmp_path / "prefix.xml"
        prefix_file.write_text(DOC_PREFIX, encoding="utf-8")
        suffix_file = tmp_path / "suffix.xml"
        suffix_file.write_text(DOC_SUFFIX, encoding="utf-8")

        server = _spawn(["serve", "--port", "0", "--checkpoint", checkpoint])
        try:
            host, port = _await_address(server)

            async def first_half():
                subscriber = await ServiceClient.connect(host, port)
                try:
                    await subscriber.subscribe("//s1/v1", name="standing")
                    # Publish the prefix through the real CLI verb.
                    published = _run_cli(
                        [
                            "publish",
                            str(prefix_file),
                            "--host",
                            host,
                            "--port",
                            str(port),
                            "--no-finish",
                        ]
                    )
                    assert published.returncode == 0, published.stderr
                    # The two complete records arrive before the kill.
                    orders = []
                    for _ in range(2):
                        push = await asyncio.wait_for(
                            subscriber.next_push(), timeout=PUSH_TIMEOUT
                        )
                        assert push["type"] == "solution"
                        orders.append(push["solution"]["order"])
                    assert orders == [3, 6]
                    # Checkpoint while the subscriber is still attached: a
                    # subscription's registration dies with its connection,
                    # so this is the state a failover must capture.
                    checkpointed = _run_cli(
                        ["checkpoint", "--host", host, "--port", str(port)]
                    )
                    assert checkpointed.returncode == 0, checkpointed.stdout
                    assert checkpoint in checkpointed.stdout
                finally:
                    await subscriber.close()

            asyncio.run(first_half())
            assert os.path.exists(checkpoint)
        finally:
            # SIGKILL: the resumed server may not rely on any graceful
            # shutdown work in the original process.
            _terminate(server)

        resumed = _spawn(["resume", checkpoint, "--port", "0"])
        try:
            host, port = _await_address(resumed)

            async def second_half():
                subscriber = await ServiceClient.connect(host, port)
                try:
                    await subscriber.subscribe("//s1/v1", name="standing")
                    published = _run_cli(
                        [
                            "publish",
                            str(suffix_file),
                            "--host",
                            host,
                            "--port",
                            str(port),
                        ]
                    )
                    assert published.returncode == 0, published.stderr
                    push = await asyncio.wait_for(
                        subscriber.next_push(), timeout=PUSH_TIMEOUT
                    )
                    assert push["type"] == "solution"
                    # The split v1 completed with its document-global
                    # pre-order identity intact across the failover.
                    assert push["solution"]["order"] == 9
                    assert push["solution"]["tag"] == "v1"
                finally:
                    await subscriber.close()

            asyncio.run(second_half())
        finally:
            if resumed.poll() is None:
                resumed.send_signal(signal.SIGINT)
                try:
                    resumed.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    _terminate(resumed)
