"""End-to-end CLI smoke: a real ``vitex serve`` process on a real socket.

This is the CI smoke test required by ISSUE 3: spawn the server as a child
process, connect over TCP, subscribe, publish a document with ``vitex
publish``, and assert a solution frame arrives within a timeout.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient

SERVER_READY_RE = re.compile(r"listening on ([\d.]+):(\d+)")
STARTUP_TIMEOUT = 20.0
PUSH_TIMEOUT = 10.0


def _repo_env():
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "src",
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


@pytest.fixture
def served():
    """A ``vitex serve`` child process on an ephemeral port; yields (host, port)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_repo_env(),
    )
    try:
        deadline = time.monotonic() + STARTUP_TIMEOUT
        address = None
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            match = SERVER_READY_RE.search(line)
            if match:
                address = (match.group(1), int(match.group(2)))
                break
        assert address is not None, "server did not announce its address"
        yield address
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                process.kill()
                process.wait(timeout=10)


class TestServeSmoke:
    def test_subscribe_feed_one_solution_arrives(self, served, tmp_path):
        host, port = served

        async def scenario():
            subscriber = await ServiceClient.connect(host, port)
            try:
                await subscriber.subscribe("//s1/v1", name="smoke")
                document = tmp_path / "doc.xml"
                document.write_text(
                    "<feed><r><s1><v1>live</v1></s1></r></feed>", encoding="utf-8"
                )
                publish = await asyncio.create_subprocess_exec(
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "publish",
                    str(document),
                    "--host",
                    host,
                    "--port",
                    str(port),
                    stdout=asyncio.subprocess.PIPE,
                    stderr=asyncio.subprocess.PIPE,
                    env=_repo_env(),
                )
                stdout, stderr = await asyncio.wait_for(
                    publish.communicate(), timeout=PUSH_TIMEOUT
                )
                assert publish.returncode == 0, stderr.decode()
                assert b"finished" in stdout
                push = await subscriber.next_push(timeout=PUSH_TIMEOUT)
                assert push["type"] == "solution"
                assert push["name"] == "smoke"
                assert push["solution"]["tag"] == "v1"
                eof = await subscriber.next_push(timeout=PUSH_TIMEOUT)
                assert eof["type"] == "eof" and eof["delivered"] == 1
            finally:
                await subscriber.close()

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_publish_no_finish_surfaces_parse_errors(self, served, tmp_path):
        host, port = served
        document = tmp_path / "broken.xml"
        document.write_text("<feed><r></mismatch>", encoding="utf-8")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "publish",
                str(document),
                "--host",
                host,
                "--port",
                str(port),
                "--no-finish",
            ],
            capture_output=True,
            text=True,
            timeout=30,
            env=_repo_env(),
        )
        assert result.returncode == 1
        assert "error:" in result.stderr
        assert "mismatch" in result.stderr or "end tag" in result.stderr

    def test_publish_reports_feed_error_over_finish_noise(self, served, tmp_path):
        host, port = served
        document = tmp_path / "broken2.xml"
        document.write_text("<feed><r></oops>", encoding="utf-8")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "publish",
                str(document),
                "--host",
                host,
                "--port",
                str(port),
            ],
            capture_output=True,
            text=True,
            timeout=30,
            env=_repo_env(),
        )
        assert result.returncode == 1
        # The real parse error, not the secondary "no document in progress".
        assert "no document in progress" not in result.stderr
        assert "error:" in result.stderr
