"""Wire-protocol codec tests."""

from __future__ import annotations

import pytest

from repro.core.results import NodeRef, Solution, SolutionKind
from repro.service.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    solution_from_payload,
    solution_to_payload,
)


class TestFrames:
    def test_roundtrip(self):
        frame = {"cmd": "subscribe", "query": "//a[b]", "name": "q1"}
        assert decode_frame(encode_frame(frame)) == frame

    def test_encode_is_one_line(self):
        data = encode_frame({"cmd": "feed", "data": "<a>\n</a>"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1  # payload newlines are JSON-escaped

    def test_raw_xml_line_becomes_feed(self):
        assert decode_frame(b"<quote symbol='X'/>\n") == {
            "cmd": "feed",
            "data": "<quote symbol='X'/>",
        }

    def test_empty_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\n")

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b'{"cmd": \n')

    def test_non_brace_json_is_a_raw_frame(self):
        # Only lines opening with '{' are JSON; anything else is raw XML.
        assert decode_frame(b"[1, 2]\n") == {"cmd": "feed", "data": "[1, 2]"}

    def test_invalid_utf8_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b'{"cmd": "\xff"}\n')

    def test_non_ascii_payload_is_not_escaped(self):
        # ensure_ascii must stay off: \uXXXX-escaping inflates XML payloads
        # up to 6x and pushes feed frames past MAX_FRAME_BYTES.
        data = "é☃" * 1000
        encoded = encode_frame({"cmd": "feed", "data": data})
        assert b"\\u" not in encoded
        assert len(encoded) < 3 * len(data) + 64
        assert decode_frame(encoded)["data"] == data

    def test_error_frame_shape(self):
        assert error_frame("boom", cmd="feed") == {
            "type": "error",
            "message": "boom",
            "cmd": "feed",
        }


class TestSolutionPayloads:
    @pytest.mark.parametrize(
        "solution",
        [
            Solution(kind=SolutionKind.ELEMENT, node=NodeRef(3, "a", 2, 7)),
            Solution(
                kind=SolutionKind.ATTRIBUTE,
                node=NodeRef(5, "b", 1, None),
                attribute="id",
                value="x1",
            ),
            Solution(
                kind=SolutionKind.TEXT, node=NodeRef(0, "t", 4, 2), value="téxt ☃"
            ),
            Solution(
                kind=SolutionKind.ELEMENT,
                node=NodeRef(9, "f", 2, 1),
                fragment="<f/>",
            ),
        ],
    )
    def test_roundtrip_preserves_identity(self, solution):
        rebuilt = solution_from_payload(solution_to_payload(solution))
        assert rebuilt == solution
        assert rebuilt.key() == solution.key()
        assert rebuilt.describe() == solution.describe()

    def test_payload_survives_the_wire(self):
        solution = Solution(
            kind=SolutionKind.ATTRIBUTE,
            node=NodeRef(5, "b", 1, 3),
            attribute="id",
            value="x1",
        )
        frame = decode_frame(
            encode_frame({"type": "solution", "solution": solution_to_payload(solution)})
        )
        assert solution_from_payload(frame["solution"]) == solution

    def test_malformed_payload_rejected(self):
        with pytest.raises(ProtocolError):
            solution_from_payload({"kind": "no-such-kind", "order": 1})
        with pytest.raises(ProtocolError):
            solution_from_payload({"order": 1})
