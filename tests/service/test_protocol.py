"""Wire-protocol codec tests."""

from __future__ import annotations

import pytest

from repro.core.results import NodeRef, Solution, SolutionKind
from repro.service.protocol import (
    ProtocolError,
    decode_frame,
    decode_frames,
    encode_batch,
    encode_frame,
    encode_worker_solution,
    error_frame,
    solution_from_payload,
    solution_to_payload,
    split_worker_solution,
)


class TestFrames:
    def test_roundtrip(self):
        frame = {"cmd": "subscribe", "query": "//a[b]", "name": "q1"}
        assert decode_frame(encode_frame(frame)) == frame

    def test_encode_is_one_line(self):
        data = encode_frame({"cmd": "feed", "data": "<a>\n</a>"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1  # payload newlines are JSON-escaped

    def test_raw_xml_line_becomes_feed(self):
        assert decode_frame(b"<quote symbol='X'/>\n") == {
            "cmd": "feed",
            "data": "<quote symbol='X'/>",
        }

    def test_empty_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\n")

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b'{"cmd": \n')

    def test_non_brace_json_is_a_raw_frame(self):
        # Only lines opening with '{' are JSON; anything else is raw XML.
        assert decode_frame(b"[1, 2]\n") == {"cmd": "feed", "data": "[1, 2]"}

    def test_invalid_utf8_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b'{"cmd": "\xff"}\n')

    def test_non_ascii_payload_is_not_escaped(self):
        # ensure_ascii must stay off: \uXXXX-escaping inflates XML payloads
        # up to 6x and pushes feed frames past MAX_FRAME_BYTES.
        data = "é☃" * 1000
        encoded = encode_frame({"cmd": "feed", "data": data})
        assert b"\\u" not in encoded
        assert len(encoded) < 3 * len(data) + 64
        assert decode_frame(encoded)["data"] == data

    def test_error_frame_shape(self):
        assert error_frame("boom", cmd="feed") == {
            "type": "error",
            "message": "boom",
            "cmd": "feed",
        }


class TestSolutionPayloads:
    @pytest.mark.parametrize(
        "solution",
        [
            Solution(kind=SolutionKind.ELEMENT, node=NodeRef(3, "a", 2, 7)),
            Solution(
                kind=SolutionKind.ATTRIBUTE,
                node=NodeRef(5, "b", 1, None),
                attribute="id",
                value="x1",
            ),
            Solution(
                kind=SolutionKind.TEXT, node=NodeRef(0, "t", 4, 2), value="téxt ☃"
            ),
            Solution(
                kind=SolutionKind.ELEMENT,
                node=NodeRef(9, "f", 2, 1),
                fragment="<f/>",
            ),
        ],
    )
    def test_roundtrip_preserves_identity(self, solution):
        rebuilt = solution_from_payload(solution_to_payload(solution))
        assert rebuilt == solution
        assert rebuilt.key() == solution.key()
        assert rebuilt.describe() == solution.describe()

    def test_payload_survives_the_wire(self):
        solution = Solution(
            kind=SolutionKind.ATTRIBUTE,
            node=NodeRef(5, "b", 1, 3),
            attribute="id",
            value="x1",
        )
        frame = decode_frame(
            encode_frame({"type": "solution", "solution": solution_to_payload(solution)})
        )
        assert solution_from_payload(frame["solution"]) == solution

    def test_malformed_payload_rejected(self):
        with pytest.raises(ProtocolError):
            solution_from_payload({"kind": "no-such-kind", "order": 1})
        with pytest.raises(ProtocolError):
            solution_from_payload({"order": 1})


class TestBatchFrames:
    """Server→client batching: one line carrying a JSON array of frames."""

    def test_batch_roundtrip(self):
        frames = [
            encode_frame({"type": "solution", "name": "q0", "solution": {"x": 1}}),
            encode_frame({"type": "solution", "name": "q1", "solution": {"x": 2}}),
            encode_frame({"type": "eof", "document": 0}),
        ]
        line = encode_batch(frames)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        decoded = decode_frames(line)
        assert decoded == [decode_frame(frame) for frame in frames]

    def test_single_frame_line_still_decodes(self):
        line = encode_frame({"type": "pong"})
        assert decode_frames(line) == [{"type": "pong"}]

    def test_client_raw_xml_shorthand_is_preserved(self):
        # A client line starting with "[" must stay the raw-XML feed
        # shorthand — batch framing is strictly server→client, so the
        # array decode only applies to lines that parse as JSON arrays.
        assert decode_frames(b"<a>hi</a>\n") == [{"cmd": "feed", "data": "<a>hi</a>"}]

    def test_batch_of_one_is_an_array(self):
        frames = [encode_frame({"type": "pong"})]
        decoded = decode_frames(encode_batch(frames))
        assert decoded == [{"type": "pong"}]


class TestWorkerSolutionFraming:
    """Worker→front fast path: name-prefixed pre-encoded client frames."""

    def test_roundtrip(self):
        frame = encode_frame(
            {"type": "solution", "name": "ticker", "solution": {"tag": "v1"}}
        )
        wire = encode_worker_solution("ticker", frame)
        name, payload = split_worker_solution(wire)
        assert name == "ticker"
        assert payload == frame  # pre-encoded bytes forwarded untouched

    def test_unicode_names_survive(self):
        frame = encode_frame({"type": "solution", "name": "quoté", "solution": {}})
        name, payload = split_worker_solution(encode_worker_solution("quoté", frame))
        assert name == "quoté"
        assert decode_frame(payload)["name"] == "quoté"

    def test_missing_separator_rejected(self):
        with pytest.raises(ProtocolError):
            split_worker_solution(b"!no-separator-here\n")
