"""Sharded-service tests: protocol parity, routing policy, stats schema.

The parity gate is the acceptance bar of the sharding work: against the
backend-conformance corpus and the PR5 query set, a sharded front with
``workers=1`` must push **the identical frame sequence** (``ts`` stripped —
it is a wall-clock stamp) as the single-process :class:`ServiceServer`,
and ``workers=2`` the identical *per-subscription* sequences (frames from
different worker processes may interleave).

Everything runs a real server stack — sharded fronts spawn real worker
subprocesses over pipes; nothing is mocked.
"""

from __future__ import annotations

import asyncio
import importlib.util
import os

import pytest

from repro.service.client import ServiceConnection, ServiceError
from repro.service.server import ServiceServer
from repro.service.sharding import ShardedServiceServer


def _load_parity_harness():
    """Import tests/api/test_parity.py by path (tests/ is not a package)."""
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "api",
        "test_parity.py",
    )
    spec = importlib.util.spec_from_file_location("_parity_harness", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# The PR5 parity corpus: documents exercising text, attributes, CDATA,
# comments, PIs, deep nesting; queries covering every axis the fragment has.
_parity = _load_parity_harness()
BACKENDS = _parity.BACKENDS
CORPUS = _parity.CORPUS
QUERIES = _parity.QUERIES

TIMEOUT = 10.0


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=120))


async def _collect_pushes(server, documents):
    """Drive one subscriber (all QUERIES) + publisher; return stripped pushes.

    Each document is fed in two chunks; collection stops at its ``eof``.
    Returns the flat list of push frames in arrival order with the
    wall-clock ``ts`` removed.
    """
    host, port = server.address
    subscriber = await ServiceConnection.connect(host, port)
    publisher = await ServiceConnection.connect(host, port)
    pushes = []
    try:
        for index, query in enumerate(QUERIES):
            await subscriber.subscribe(query, name=f"q{index}")
        for document in documents:
            half = len(document) // 2
            await publisher.feed(document[:half])
            await publisher.feed(document[half:])
            await publisher.finish()
            while True:
                frame = await subscriber.next_push(timeout=TIMEOUT)
                frame.pop("ts", None)
                pushes.append(frame)
                if frame["type"] == "eof":
                    break
    finally:
        await subscriber.close()
        await publisher.close()
        await server.close()
    return pushes


def _by_subscription(pushes):
    """Group solution pushes per subscription; eofs keep their own lane."""
    grouped = {}
    for frame in pushes:
        key = frame.get("name") if frame["type"] == "solution" else "__eof__"
        grouped.setdefault(key, []).append(frame)
    return grouped


class TestProtocolParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_worker_is_frame_identical_to_plain_server(self, backend):
        """workers=1: the full push sequence is byte-identical to the
        single-process server over the whole conformance corpus."""

        async def scenario():
            plain = ServiceServer(parser=backend)
            await plain.start(port=0)
            expected = await _collect_pushes(plain, CORPUS)

            sharded = ShardedServiceServer(workers=1, parser=backend)
            await sharded.start(port=0)
            actual = await _collect_pushes(sharded, CORPUS)
            assert actual == expected

        run(scenario())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_two_workers_preserve_per_subscription_sequences(self, backend):
        """workers=2: per-subscription solution sequences and the eof stream
        match the plain server exactly; only cross-subscription interleaving
        may differ."""

        async def scenario():
            plain = ServiceServer(parser=backend)
            await plain.start(port=0)
            expected = _by_subscription(await _collect_pushes(plain, CORPUS))

            sharded = ShardedServiceServer(workers=2, parser=backend)
            await sharded.start(port=0)
            actual = _by_subscription(await _collect_pushes(sharded, CORPUS))
            assert actual == expected

        run(scenario())


class TestRoutingPolicy:
    def test_identical_fingerprints_pin_to_one_worker(self):
        """Structurally identical queries share a worker (machine dedup
        survives sharding): total machine_count stays 1."""

        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="a")
                await client.subscribe("//s1/v1", name="b")
                await client.subscribe("//s1/v1", name="c")
                stats = await client.stats()
                assert stats["machine_count"] == 1
                per_worker = [w["subscriptions"] for w in stats["workers"]]
                assert sorted(per_worker) == [0, 3]
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_distinct_queries_spread_least_loaded(self):
        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="a")
                await client.subscribe("//s2/v2", name="b")
                await client.subscribe("//s3/v3", name="c")
                await client.subscribe("//s4/v4", name="d")
                stats = await client.stats()
                per_worker = sorted(w["subscriptions"] for w in stats["workers"])
                assert per_worker == [2, 2]
                assert stats["machine_count"] == 4
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_unsubscribe_releases_route_and_worker_state(self):
        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="a")
                await client.unsubscribe("a")
                stats = await client.stats()
                assert stats["subscriptions"] == 0
                assert stats["machine_count"] == 0
                # The name is free again and the query routes cleanly.
                await client.subscribe("//s1/v1", name="a")
                stats = await client.stats()
                assert stats["subscriptions"] == 1
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_duplicate_name_matches_engine_error_text(self):
        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="taken")
                with pytest.raises(ServiceError) as excinfo:
                    await client.subscribe("//s2/v2", name="taken")
                assert "a subscription named 'taken' already exists" in str(
                    excinfo.value
                )
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_control_characters_in_names_are_rejected(self):
        """Names travel in the worker fast-path framing; the front refuses
        names that would corrupt it before any worker sees them."""

        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                with pytest.raises(ServiceError, match="control characters"):
                    await client.subscribe("//s1/v1", name="bad\x1fname")
            finally:
                await client.close()
                await server.close()

        run(scenario())


class TestSubscribeBatch:
    def test_batch_spreads_across_workers(self):
        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                names = await client.subscribe_batch(
                    [
                        ("//s1/v1", "a"),
                        ("//s2/v2", None),
                        ("//s3/v3", "c"),
                        ("//s4/v4", None),
                    ]
                )
                assert names[0] == "a"
                assert names[2] == "c"
                assert len(set(names)) == 4
                stats = await client.stats()
                assert stats["subscriptions"] == 4
                per_worker = sorted(w["subscriptions"] for w in stats["workers"])
                assert per_worker == [2, 2]
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_batch_is_all_or_nothing(self):
        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="taken")
                with pytest.raises(ServiceError) as excinfo:
                    await client.subscribe_batch(
                        [("//s2/v2", "fresh"), ("//s3/v3", "taken")]
                    )
                assert "taken" in str(excinfo.value)
                stats = await client.stats()
                # Rollback released the reserved route: only the original
                # subscription remains and 'fresh' is free to use again.
                assert stats["subscriptions"] == 1
                await client.subscribe("//s2/v2", name="fresh")
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_batch_delivers_like_singular_subscribes(self):
        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            subscriber = await ServiceConnection.connect(host, port)
            publisher = await ServiceConnection.connect(host, port)
            try:
                await subscriber.subscribe_batch(
                    [("//f/s1", "one"), ("//f/s2", "two")]
                )
                await publisher.feed("<f><s1>x</s1><s2>y</s2></f>")
                await publisher.finish()
                seen = set()
                while len(seen) < 2:
                    frame = await subscriber.next_push(timeout=10)
                    if frame.get("type") == "solution":
                        seen.add(frame["name"])
                assert seen == {"one", "two"}
            finally:
                await subscriber.close()
                await publisher.close()
                await server.close()

        run(scenario())


#: Flat keys every /stats payload must carry — the stable public schema.
STATS_FLAT_KEYS = {
    "type",
    "parser",
    "machine_count",
    "subscriptions",
    "connections",
    "documents",
    "aborted_documents",
    "document_open",
    "elements",
    "events_per_sec",
    "solutions",
    "uptime_s",
    "checkpoints_written",
    "workers",
    "subscription_detail",
}

#: Per-entry schema of the ``workers`` list (shared by both server kinds).
WORKER_ENTRY_KEYS = {
    "worker",
    "mode",
    "pid",
    "alive",
    "subscriptions",
    "machine_count",
    "elements",
    "events_per_sec",
    "queue_depth",
}


class TestStatsSchema:
    def _check_common(self, stats, expected_mode, expected_workers):
        assert STATS_FLAT_KEYS <= set(stats)
        workers = stats["workers"]
        assert len(workers) == expected_workers
        for index, entry in enumerate(workers):
            assert WORKER_ENTRY_KEYS <= set(entry)
            assert entry["worker"] == index
            assert entry["mode"] == expected_mode
            assert entry["alive"] is True
            assert isinstance(entry["pid"], int)

    def test_plain_server_reports_one_inline_worker(self):
        async def scenario():
            server = ServiceServer(parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="q")
                stats = await client.stats()
                self._check_common(stats, "inline", expected_workers=1)
                assert stats["workers"][0]["subscriptions"] == 1
            finally:
                await client.close()
                await server.close()

        run(scenario())

    def test_sharded_server_reports_per_worker_sections(self):
        async def scenario():
            server = ShardedServiceServer(workers=2, parser="native")
            await server.start(port=0)
            host, port = server.address
            client = await ServiceConnection.connect(host, port)
            try:
                await client.subscribe("//s1/v1", name="q")
                await client.feed("<feed><s1><v1>x</v1></s1></feed>")
                await client.finish()
                stats = await client.stats()
                self._check_common(stats, "process", expected_workers=2)
                assert stats["worker_count"] == 2
                # Aggregates: machine_count sums the shards; elements is the
                # document-global count (each worker parses the whole doc,
                # so it is a max, not a sum).
                assert stats["machine_count"] == sum(
                    w["machine_count"] for w in stats["workers"]
                )
                assert stats["elements"] == 3
                assert stats["documents"] == 1
                assert stats["solutions"] == 1
                assert stats["subscription_detail"]["q"]["delivered"] == 1
            finally:
                await client.close()
                await server.close()

        run(scenario())
