"""Unit tests for query analysis statistics."""

from __future__ import annotations

from repro.xpath.analysis import analyze, collect_labels, describe
from repro.xpath.normalize import compile_query


class TestAnalyze:
    def test_paper_query(self):
        stats = analyze(compile_query("//section[author]//table[position]//cell"))
        assert stats.size == 5
        assert stats.main_path_length == 3
        assert stats.predicate_nodes == 2
        assert stats.descendant_edges == 3
        assert stats.child_edges == 2
        assert stats.wildcard_nodes == 0
        assert not stats.attribute_output
        assert not stats.text_output

    def test_attribute_output_query(self):
        stats = analyze(compile_query("//ProteinEntry[reference]/@id"))
        assert stats.attribute_output
        assert stats.attribute_nodes == 1
        assert stats.size == 3

    def test_text_output_query(self):
        stats = analyze(compile_query("//a/b/text()"))
        assert stats.text_output

    def test_wildcards_counted(self):
        stats = analyze(compile_query("//*/*[*]"))
        assert stats.wildcard_nodes == 3

    def test_value_tests_counted(self):
        stats = analyze(compile_query("//a[b='x'][@id='2'][.='y']"))
        assert stats.value_tests == 3

    def test_depth_counts_predicate_subtrees(self):
        stats = analyze(compile_query("//a[b/c/d]"))
        assert stats.depth == 4
        assert stats.main_path_length == 1

    def test_as_dict_round_trip(self):
        stats = analyze(compile_query("//a[b]//c"))
        data = stats.as_dict()
        assert data["size"] == stats.size
        assert data["predicate_nodes"] == 1


class TestDescribeAndLabels:
    def test_describe_mentions_size(self):
        text = describe(compile_query("//a[b]//c"))
        assert "|Q|=3" in text

    def test_collect_labels_skips_wildcards(self):
        labels = collect_labels(compile_query("//a[*]//b/@id"))
        assert labels == ["a", "b", "id"]

    def test_collect_labels_unique(self):
        labels = collect_labels(compile_query("//a//a[a]"))
        assert labels == ["a"]
