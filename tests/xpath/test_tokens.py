"""Unit tests for the XPath lexer."""

from __future__ import annotations

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.tokens import Token, TokenKind, tokenize_xpath


def kinds(expression):
    return [token.kind for token in tokenize_xpath(expression)]


def values(expression):
    return [token.value for token in tokenize_xpath(expression) if token.kind is not TokenKind.END]


class TestPathTokens:
    def test_simple_path(self):
        assert kinds("/a/b") == [
            TokenKind.SLASH,
            TokenKind.NAME,
            TokenKind.SLASH,
            TokenKind.NAME,
            TokenKind.END,
        ]

    def test_double_slash(self):
        assert kinds("//a")[:2] == [TokenKind.DOUBLE_SLASH, TokenKind.NAME]

    def test_wildcard_and_attribute(self):
        assert kinds("//*/@id")[:5] == [
            TokenKind.DOUBLE_SLASH,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.AT,
            TokenKind.NAME,
        ]

    def test_predicate_brackets(self):
        assert TokenKind.LBRACKET in kinds("//a[b]")
        assert TokenKind.RBRACKET in kinds("//a[b]")

    def test_name_with_xml_characters(self):
        tokens = values("//Protein-Entry.v2/ns:tag/_private")
        assert "Protein-Entry.v2" in tokens
        assert "ns:tag" in tokens
        assert "_private" in tokens

    def test_whitespace_ignored(self):
        assert kinds("  //a [ b ]  ") == kinds("//a[b]")


class TestLiteralsAndOperators:
    def test_string_literals_both_quote_styles(self):
        double = tokenize_xpath('//a[b="x y"]')
        single = tokenize_xpath("//a[b='x y']")
        assert any(t.kind is TokenKind.STRING and t.value == "x y" for t in double)
        assert any(t.kind is TokenKind.STRING and t.value == "x y" for t in single)

    def test_numbers(self):
        tokens = tokenize_xpath("//a[b=3.25]")
        number = next(t for t in tokens if t.kind is TokenKind.NUMBER)
        assert number.value == "3.25"

    def test_leading_dot_number(self):
        tokens = tokenize_xpath("//a[b > .5]")
        number = next(t for t in tokens if t.kind is TokenKind.NUMBER)
        assert number.value == ".5"

    @pytest.mark.parametrize(
        "text, kind",
        [
            ("=", TokenKind.EQ),
            ("!=", TokenKind.NEQ),
            ("<", TokenKind.LT),
            ("<=", TokenKind.LTE),
            (">", TokenKind.GT),
            (">=", TokenKind.GTE),
        ],
    )
    def test_comparison_operators(self, text, kind):
        tokens = tokenize_xpath(f"//a[b {text} 1]")
        assert any(t.kind is kind for t in tokens)

    def test_dot_token(self):
        tokens = kinds("//a[. = 'x']")
        assert TokenKind.DOT in tokens

    def test_parentheses(self):
        tokens = kinds("//a[not(b)]")
        assert TokenKind.LPAREN in tokens
        assert TokenKind.RPAREN in tokens


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(XPathSyntaxError):
            tokenize_xpath("//a[b='oops]")

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError):
            tokenize_xpath("//a[b ~ 1]")

    def test_bang_without_equals(self):
        with pytest.raises(XPathSyntaxError):
            tokenize_xpath("//a[!b]")

    def test_error_carries_position(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            tokenize_xpath("//a[#]")
        assert excinfo.value.position == 4


class TestTokenHelpers:
    def test_is_name(self):
        token = Token(kind=TokenKind.NAME, value="and", position=0)
        assert token.is_name("and")
        assert not token.is_name("or")
        other = Token(kind=TokenKind.STRING, value="and", position=0)
        assert not other.is_name("and")

    def test_end_token_terminates_stream(self):
        tokens = tokenize_xpath("//a")
        assert tokens[-1].kind is TokenKind.END
        assert tokens[-1].value == ""
