"""Unit tests for canonical query fingerprints."""

from __future__ import annotations

import pytest

from repro.xpath.fingerprint import query_fingerprint
from repro.xpath.generator import QueryGenerator
from repro.xpath.normalize import compile_query


class TestStructuralIdentity:
    def test_identical_sources_have_equal_fingerprints(self):
        assert query_fingerprint("//a[b]//c") == query_fingerprint("//a[b]//c")

    @pytest.mark.parametrize(
        "left, right",
        [
            ("//a[b]//c", "//a[ b ]//c"),
            ("//a[@id='x']", "//a[ @id = 'x' ]"),
            ("//@id", "//*/@id"),  # leading-attribute expansion
            ("//a[b and c]", "//a[ b and c ]"),
        ],
    )
    def test_surface_variants_share_a_fingerprint(self, left, right):
        assert query_fingerprint(left) == query_fingerprint(right)

    def test_tree_and_source_agree(self):
        tree = compile_query("//a[b='1']/c/text()")
        assert query_fingerprint(tree) == query_fingerprint("//a[b='1']/c/text()")


class TestStructuralDifferences:
    @pytest.mark.parametrize(
        "left, right",
        [
            ("//a", "//b"),                      # label
            ("//a/b", "//a//b"),                 # axis
            ("//a[b]", "//a/b"),                 # predicate vs main path
            ("//a", "/a"),                       # root axis
            ("//a[b='1']", "//a[b=1]"),          # string vs numeric comparison
            ("//a[b='1']", "//a[b!='1']"),       # comparison operator
            ("//a[b]", "//a[not(b)]"),           # negation
            ("//a/@id", "//a/@key"),             # attribute label
            ("//a/text()", "//a"),               # output kind
            ("//a/b", "//a[b]/b"),               # extra predicate node
            ("//a[b or c]", "//a[b and c]"),     # connective
        ],
    )
    def test_different_structures_differ(self, left, right):
        assert query_fingerprint(left) != query_fingerprint(right)

    def test_output_position_matters(self):
        assert query_fingerprint("//a/b") != query_fingerprint("//a//b")


class TestGeneratedQueries:
    def test_fingerprint_is_deterministic_over_generated_corpus(self):
        generator = QueryGenerator(seed=3)
        for _ in range(100):
            expression = generator.generate_expression()
            first = query_fingerprint(expression)
            second = query_fingerprint(compile_query(expression))
            assert first == second

    def test_distinct_shapes_rarely_collide(self):
        generator = QueryGenerator(seed=4)
        expressions = {generator.generate_expression() for _ in range(200)}
        by_fingerprint = {}
        for expression in expressions:
            by_fingerprint.setdefault(query_fingerprint(expression), set()).add(
                expression
            )
        # Structurally identical spellings may collapse, but two queries with
        # different normalized twigs must never share a fingerprint: verify
        # every collision really is the same twig rendered differently.
        from repro.xpath.normalize import query_to_string

        for sources in by_fingerprint.values():
            renderings = {query_to_string(compile_query(s)) for s in sources}
            assert len(renderings) == 1
