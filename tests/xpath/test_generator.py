"""Unit tests for the random query generator."""

from __future__ import annotations

import pytest

from repro.xpath.ast import QueryTree
from repro.xpath.generator import (
    QueryGenerator,
    QueryGeneratorConfig,
    chain_query_with_predicates,
    deep_child_query,
    linear_descendant_query,
)
from repro.xpath.normalize import compile_query


class TestQueryGenerator:
    def test_deterministic_for_same_seed(self):
        first = [QueryGenerator(seed=42).generate_expression() for _ in range(10)]
        second = [QueryGenerator(seed=42).generate_expression() for _ in range(10)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [QueryGenerator(seed=1).generate_expression() for _ in range(20)]
        b = [QueryGenerator(seed=2).generate_expression() for _ in range(20)]
        assert a != b

    def test_generated_expressions_compile(self):
        generator = QueryGenerator(seed=7)
        for _ in range(100):
            expression = generator.generate_expression()
            tree = compile_query(expression)
            assert isinstance(tree, QueryTree)
            assert tree.size >= 1

    def test_generate_returns_query_tree(self):
        tree = QueryGenerator(seed=3).generate()
        assert isinstance(tree, QueryTree)

    def test_generate_many(self):
        trees = QueryGenerator(seed=3).generate_many(5)
        assert len(trees) == 5

    def test_respects_step_bounds(self):
        config = QueryGeneratorConfig(
            min_steps=3,
            max_steps=3,
            predicate_probability=0.0,
            attribute_output_probability=0.0,
            wildcard_probability=0.0,
        )
        generator = QueryGenerator(config=config, seed=5)
        for _ in range(20):
            tree = generator.generate()
            assert len(tree.main_path()) == 3

    def test_vocabulary_respected(self):
        config = QueryGeneratorConfig(
            vocabulary=("only",),
            wildcard_probability=0.0,
            predicate_probability=0.0,
            attribute_output_probability=0.0,
        )
        generator = QueryGenerator(config=config, seed=5)
        for _ in range(10):
            labels = {node.label for node in generator.generate().nodes()}
            assert labels == {"only"}


class TestQueryFamilies:
    def test_linear_descendant_query(self):
        assert linear_descendant_query("a", 3) == "//a//a//a"
        assert linear_descendant_query("a", 2, predicate_tag="p") == "//a[p]//a[p]"

    def test_linear_descendant_query_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            linear_descendant_query("a", 0)

    def test_linear_query_compiles_to_expected_size(self):
        tree = compile_query(linear_descendant_query("a", 4, predicate_tag="p"))
        assert len(tree.main_path()) == 4
        assert tree.size == 8

    def test_deep_child_query(self):
        assert deep_child_query(["a", "b", "c"]) == "/a/b/c"
        with pytest.raises(ValueError):
            deep_child_query([])

    def test_chain_query_with_predicates(self):
        query = chain_query_with_predicates(["a", "b"], ["p", None])
        assert query == "//a[p]//b"
        with pytest.raises(ValueError):
            chain_query_with_predicates(["a"], ["p", "q"])
