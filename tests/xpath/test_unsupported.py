"""Tests that XPath features outside XP{/,//,*,[]} are rejected explicitly.

The paper's fragment is child axes, descendant axes, wildcards and predicates
(plus attribute access and value tests).  Anything else must raise
:class:`~repro.errors.UnsupportedFeatureError` rather than silently returning
wrong answers.
"""

from __future__ import annotations

import pytest

from repro.errors import UnsupportedFeatureError, XPathError
from repro.xpath.normalize import compile_query
from repro.xpath.parser import parse_xpath


UNSUPPORTED_EXPRESSIONS = [
    "//a[3]",                     # positional predicate
    "//a[position()=2]",          # position() function
    "//a[count(b)>1]",            # count() function
    "//a[contains(b,'x')]",       # string function
    "//a[last()]",                # last() function
    "//a/node()",                 # node() test
    "//a/..",                     # parent step (lexes as two dots)
    "//a[/b]",                    # absolute path inside a predicate
    "//a/text()[b]",              # predicate on text()
    ".//a",                       # '.' step outside a predicate
]


class TestUnsupportedFeatures:
    @pytest.mark.parametrize("expression", UNSUPPORTED_EXPRESSIONS)
    def test_rejected_with_specific_error(self, expression):
        with pytest.raises(XPathError):
            compile_query(expression)

    def test_positional_predicate_error_type(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_xpath("//a[3]")

    def test_error_message_mentions_query(self):
        with pytest.raises(UnsupportedFeatureError) as excinfo:
            parse_xpath("//a[position()=2]")
        assert "position" in str(excinfo.value)

    def test_attribute_with_further_steps_rejected(self):
        with pytest.raises(XPathError):
            compile_query("//a/@id/b")

    def test_attribute_in_middle_of_main_path_rejected(self):
        with pytest.raises(XPathError):
            compile_query("//a/@id/text()")

    def test_text_in_middle_of_main_path_rejected(self):
        with pytest.raises(XPathError):
            compile_query("//a/text()/b")


class TestSupportedCornerFeatures:
    """Features that are inside the fragment and must keep compiling."""

    @pytest.mark.parametrize(
        "expression",
        [
            "//a",
            "/a/b/c",
            "//*",
            "//a/@id",
            "//@id",
            "//a/@*",
            "//a/text()",
            "//a[b]",
            "//a[@id]",
            "//a[.//b/c]",
            "//a[b='x' and @id!='2' or not(c)]",
            "//a[.='v']",
            "//a[text()='v']",
            "//a[b>1.5][c<=2]",
            "//section[author]//table[position]//cell",
            "//ProteinEntry[reference]/@id",
        ],
    )
    def test_still_supported(self, expression):
        tree = compile_query(expression)
        assert tree.size >= 1
