"""Unit tests for the XPath parser (surface AST)."""

from __future__ import annotations

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AndExpr,
    Axis,
    Comparison,
    ComparisonOp,
    Exists,
    NameTest,
    NotExpr,
    OrExpr,
    TextTest,
    WildcardTest,
)
from repro.xpath.parser import parse_xpath


class TestLocationPaths:
    def test_absolute_child_path(self):
        path = parse_xpath("/book/section")
        assert path.absolute
        assert not path.initial_descendant
        assert [step.axis for step in path.steps] == [Axis.CHILD, Axis.CHILD]
        assert [str(step.test) for step in path.steps] == ["book", "section"]

    def test_descendant_start(self):
        path = parse_xpath("//section")
        assert path.initial_descendant
        assert path.steps[0].axis is Axis.DESCENDANT

    def test_mixed_axes(self):
        path = parse_xpath("//a/b//c")
        assert [step.axis for step in path.steps] == [
            Axis.DESCENDANT,
            Axis.CHILD,
            Axis.DESCENDANT,
        ]

    def test_relative_path_is_not_absolute(self):
        path = parse_xpath("a/b")
        assert not path.absolute
        assert len(path.steps) == 2

    def test_wildcard_step(self):
        path = parse_xpath("//*")
        assert isinstance(path.steps[0].test, WildcardTest)

    def test_attribute_step(self):
        path = parse_xpath("//a/@id")
        assert path.steps[-1].axis is Axis.ATTRIBUTE
        assert isinstance(path.steps[-1].test, NameTest)
        assert path.steps[-1].test.name == "id"

    def test_attribute_wildcard(self):
        path = parse_xpath("//a/@*")
        assert path.steps[-1].axis is Axis.ATTRIBUTE
        assert isinstance(path.steps[-1].test, WildcardTest)

    def test_text_step(self):
        path = parse_xpath("//a/text()")
        assert isinstance(path.steps[-1].test, TextTest)

    def test_paper_query_parses(self):
        path = parse_xpath("//section[author]//table[position]//cell")
        assert len(path.steps) == 3
        assert all(step.axis is Axis.DESCENDANT for step in path.steps)
        assert [str(step.test) for step in path.steps] == ["section", "table", "cell"]

    def test_roundtrip_str(self):
        for text in ("//a/b", "/a//b", "//a[b]//c[@id]", "//a[b='x']/c"):
            assert str(parse_xpath(text)).replace(" ", "") == text.replace(" ", "")


class TestPredicates:
    def test_existence_predicate(self):
        path = parse_xpath("//a[b]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, Exists)
        assert str(predicate.path) == "b"

    def test_multiple_predicates_on_one_step(self):
        path = parse_xpath("//a[b][c]")
        assert len(path.steps[0].predicates) == 2

    def test_attribute_existence(self):
        predicate = parse_xpath("//a[@id]").steps[0].predicates[0]
        assert isinstance(predicate, Exists)
        assert predicate.path.steps[0].axis is Axis.ATTRIBUTE

    def test_string_comparison(self):
        predicate = parse_xpath("//a[b='x']").steps[0].predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.op is ComparisonOp.EQ
        assert predicate.literal.value == "x"

    def test_numeric_comparison(self):
        predicate = parse_xpath("//a[price > 30]").steps[0].predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.op is ComparisonOp.GT
        assert predicate.literal.value == 30.0
        assert predicate.literal.is_numeric

    def test_literal_first_comparison_is_flipped(self):
        predicate = parse_xpath("//a[30 < price]").steps[0].predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.op is ComparisonOp.GT
        assert str(predicate.path) == "price"

    def test_self_comparison(self):
        predicate = parse_xpath("//a[.='x']").steps[0].predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.path.steps == ()

    def test_text_function_comparison(self):
        predicate = parse_xpath("//a[text()='x']").steps[0].predicates[0]
        assert isinstance(predicate, Comparison)
        assert isinstance(predicate.path.steps[0].test, TextTest)

    def test_relative_descendant_predicate(self):
        predicate = parse_xpath("//a[.//b]").steps[0].predicates[0]
        assert isinstance(predicate, Exists)
        assert predicate.path.steps[0].axis is Axis.DESCENDANT

    def test_multi_step_predicate_path(self):
        predicate = parse_xpath("//a[b/c/@id='1']").steps[0].predicates[0]
        assert isinstance(predicate, Comparison)
        assert len(predicate.path.steps) == 3

    def test_and_expression(self):
        predicate = parse_xpath("//a[b and c]").steps[0].predicates[0]
        assert isinstance(predicate, AndExpr)
        assert len(predicate.operands) == 2

    def test_or_expression(self):
        predicate = parse_xpath("//a[b or c or d]").steps[0].predicates[0]
        assert isinstance(predicate, OrExpr)
        assert len(predicate.operands) == 3

    def test_and_binds_tighter_than_or(self):
        predicate = parse_xpath("//a[b and c or d]").steps[0].predicates[0]
        assert isinstance(predicate, OrExpr)
        assert isinstance(predicate.operands[0], AndExpr)

    def test_not_expression(self):
        predicate = parse_xpath("//a[not(b)]").steps[0].predicates[0]
        assert isinstance(predicate, NotExpr)
        assert isinstance(predicate.operand, Exists)

    def test_parenthesised_expression(self):
        predicate = parse_xpath("//a[(b or c) and d]").steps[0].predicates[0]
        assert isinstance(predicate, AndExpr)
        assert isinstance(predicate.operands[0], OrExpr)

    def test_nested_predicates(self):
        path = parse_xpath("//a[b[c]]")
        outer = path.steps[0].predicates[0]
        assert isinstance(outer, Exists)
        inner_step = outer.path.steps[0]
        assert len(inner_step.predicates) == 1

    def test_predicate_on_later_step(self):
        path = parse_xpath("//a/b[c]")
        assert not path.steps[0].predicates
        assert len(path.steps[1].predicates) == 1


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "expression",
        [
            "",
            "   ",
            "//",
            "//a[",
            "//a[]",
            "//a]b",
            "//a[b=']",
            "//a[b='x' and]",
            "//a//",
            "//a[@]",
            "//a[b=]",
            "//a b",
        ],
    )
    def test_malformed_expressions_rejected(self, expression):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(expression)

    def test_error_message_contains_pointer(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            parse_xpath("//a[b=]")
        assert "//a[b=]" in str(excinfo.value)
