"""Unit tests for query normalization (surface AST → query twig)."""

from __future__ import annotations

import pytest

from repro.xpath.ast import (
    Axis,
    ChildAtom,
    FormulaAnd,
    FormulaNot,
    FormulaOr,
    FormulaTrue,
    NodeKind,
    SelfTextAtom,
    evaluate_formula,
    formula_atoms,
)
from repro.xpath.normalize import compile_query, query_to_string


class TestMainPath:
    def test_single_step(self):
        tree = compile_query("//a")
        assert tree.size == 1
        assert tree.root is tree.output_node
        assert tree.root.axis is Axis.DESCENDANT
        assert tree.root.is_output

    def test_main_path_chain(self):
        tree = compile_query("/a/b//c")
        path = tree.main_path()
        assert [node.label for node in path] == ["a", "b", "c"]
        assert [node.axis for node in path] == [Axis.CHILD, Axis.CHILD, Axis.DESCENDANT]
        assert path[-1].is_output
        assert not path[0].is_output

    def test_node_ids_unique(self):
        tree = compile_query("//a[b][c]//d[e]")
        ids = [node.node_id for node in tree.nodes()]
        assert len(ids) == len(set(ids))

    def test_parent_pointers(self):
        tree = compile_query("//a/b")
        assert tree.output_node.parent is tree.root
        assert tree.root.parent is None

    def test_source_recorded(self):
        tree = compile_query("//a/b")
        assert tree.source == "//a/b"

    def test_node_by_id(self):
        tree = compile_query("//a/b")
        assert tree.node_by_id(tree.output_node.node_id) is tree.output_node
        with pytest.raises(KeyError):
            tree.node_by_id(999)


class TestOutputKinds:
    def test_element_output(self):
        tree = compile_query("//a/b")
        assert tree.output_node.kind is NodeKind.ELEMENT

    def test_attribute_output(self):
        tree = compile_query("//a/@id")
        assert tree.output_node.kind is NodeKind.ATTRIBUTE
        assert tree.output_node.axis is Axis.ATTRIBUTE
        assert tree.output_node.label == "id"

    def test_text_output(self):
        tree = compile_query("//a/text()")
        assert tree.output_node.kind is NodeKind.TEXT

    def test_leading_attribute_expanded_to_wildcard(self):
        tree = compile_query("//@id")
        assert tree.root.kind is NodeKind.ELEMENT
        assert tree.root.is_wildcard
        assert tree.root.axis is Axis.DESCENDANT
        assert tree.output_node.kind is NodeKind.ATTRIBUTE

    def test_wildcard_output(self):
        tree = compile_query("//a/*")
        assert tree.output_node.is_wildcard
        assert tree.output_node.kind is NodeKind.ELEMENT


class TestPredicateCompilation:
    def test_existence_predicate_becomes_child_atom(self):
        tree = compile_query("//a[b]")
        root = tree.root
        assert len(root.predicate_children) == 1
        assert isinstance(root.formula, ChildAtom)
        assert root.formula.node_id == root.predicate_children[0].node_id

    def test_predicate_child_axis_default_is_child(self):
        tree = compile_query("//a[b]")
        assert tree.root.predicate_children[0].axis is Axis.CHILD

    def test_descendant_predicate(self):
        tree = compile_query("//a[.//b]")
        assert tree.root.predicate_children[0].axis is Axis.DESCENDANT

    def test_attribute_predicate(self):
        tree = compile_query("//a[@id]")
        child = tree.root.predicate_children[0]
        assert child.kind is NodeKind.ATTRIBUTE
        assert child.label == "id"

    def test_comparison_sets_value_test_on_last_node(self):
        tree = compile_query("//a[b/c='x']")
        b = tree.root.predicate_children[0]
        assert b.label == "b"
        assert b.value_test is None
        c = b.predicate_children[0]
        assert c.label == "c"
        assert c.value_test is not None
        assert c.value_test.evaluate("x")
        assert not c.value_test.evaluate("y")

    def test_chained_predicate_path_requires_inner_node(self):
        tree = compile_query("//a[b/c]")
        b = tree.root.predicate_children[0]
        assert isinstance(b.formula, ChildAtom)
        assert b.formula.node_id == b.predicate_children[0].node_id
        # b itself has no main_child: chains inside predicates are predicate links.
        assert b.main_child is None

    def test_multiple_predicates_conjoined(self):
        tree = compile_query("//a[b][c]")
        assert isinstance(tree.root.formula, FormulaAnd)
        assert len(tree.root.predicate_children) == 2

    def test_and_or_not_structure(self):
        tree = compile_query("//a[b and (c or not(d))]")
        formula = tree.root.formula
        assert isinstance(formula, FormulaAnd)
        assert isinstance(formula.operands[1], FormulaOr)
        assert isinstance(formula.operands[1].operands[1], FormulaNot)
        assert len(tree.root.predicate_children) == 3

    def test_self_text_comparison(self):
        tree = compile_query("//a[.='x']")
        assert isinstance(tree.root.formula, SelfTextAtom)
        assert not tree.root.predicate_children

    def test_text_function_comparison_is_self_atom(self):
        tree = compile_query("//a[text()='x']")
        assert isinstance(tree.root.formula, SelfTextAtom)

    def test_no_predicates_yields_true_formula(self):
        tree = compile_query("//a/b")
        assert isinstance(tree.root.formula, FormulaTrue)
        assert isinstance(tree.output_node.formula, FormulaTrue)

    def test_numeric_value_test(self):
        tree = compile_query("//a[price>=10.5]")
        price = tree.root.predicate_children[0]
        assert price.value_test is not None
        assert price.value_test.evaluate("11")
        assert not price.value_test.evaluate("10")
        assert not price.value_test.evaluate("not a number")

    def test_paper_query_structure(self):
        tree = compile_query("//section[author]//table[position]//cell")
        assert tree.size == 5
        main = [node.label for node in tree.main_path()]
        assert main == ["section", "table", "cell"]
        assert [node.predicate_children[0].label for node in tree.main_path()[:2]] == [
            "author",
            "position",
        ]


class TestFormulaEvaluation:
    def test_child_atom(self):
        tree = compile_query("//a[b]")
        child_id = tree.root.predicate_children[0].node_id
        assert evaluate_formula(tree.root.formula, {child_id}, None)
        assert not evaluate_formula(tree.root.formula, set(), None)

    def test_and_or_not_semantics(self):
        tree = compile_query("//a[b and not(c)]")
        b_id = tree.root.predicate_children[0].node_id
        c_id = tree.root.predicate_children[1].node_id
        assert evaluate_formula(tree.root.formula, {b_id}, None)
        assert not evaluate_formula(tree.root.formula, {b_id, c_id}, None)
        assert not evaluate_formula(tree.root.formula, set(), None)

    def test_self_text_atom_uses_string_value(self):
        tree = compile_query("//a[.='42']")
        assert evaluate_formula(tree.root.formula, set(), "42")
        assert not evaluate_formula(tree.root.formula, set(), "41")
        assert not evaluate_formula(tree.root.formula, set(), None)

    def test_formula_atoms_enumeration(self):
        tree = compile_query("//a[b and (c or not(d)) and .='x']")
        atoms = formula_atoms(tree.root.formula)
        child_atoms = [atom for atom in atoms if isinstance(atom, ChildAtom)]
        text_atoms = [atom for atom in atoms if isinstance(atom, SelfTextAtom)]
        assert len(child_atoms) == 3
        assert len(text_atoms) == 1


class TestQueryToString:
    def test_contains_all_labels(self):
        tree = compile_query("//section[author]//table[position]//cell")
        rendered = query_to_string(tree)
        for label in ("section", "author", "table", "position", "cell"):
            assert label in rendered
        assert "output" in rendered

    def test_marks_value_tests(self):
        rendered = query_to_string(compile_query("//a[b>3]"))
        assert "value" in rendered
