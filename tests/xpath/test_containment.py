"""Unit tests for the conservative containment analysis."""

from __future__ import annotations

import pytest

from repro.xpath.containment import (
    main_path_steps,
    path_matches,
    query_contains,
    residual_plan,
)
from repro.xpath.normalize import compile_query


class TestMainPathSteps:
    def test_linear_descendant_and_child_steps(self):
        steps = main_path_steps(compile_query("//a/b//c"))
        assert steps == (("a", True), ("b", False), ("c", True))

    def test_rooted_first_step_is_child_axis(self):
        steps = main_path_steps(compile_query("/r//c"))
        assert steps == (("r", False), ("c", True))

    def test_wildcard_steps_are_kept(self):
        steps = main_path_steps(compile_query("//a/*/c"))
        assert steps == (("a", True), ("*", False), ("c", False))

    @pytest.mark.parametrize(
        "query",
        [
            "//a[b]/c",  # predicate subtree
            "//a[.='x']",  # value test
            "//a/@id",  # attribute terminal
            "//a/text()",  # text terminal
        ],
    )
    def test_outside_fragment_returns_none(self, query):
        assert main_path_steps(compile_query(query)) is None


class TestResidualPlan:
    def test_eligible_query_gets_anchor_on_output_label(self):
        plan = residual_plan("//a/b//c")
        assert plan is not None
        assert plan.anchor_label == "c"
        assert plan.anchor_source == "//c"
        assert plan.steps == (("a", True), ("b", False), ("c", True))

    def test_wildcard_output_anchors_on_star(self):
        plan = residual_plan("//a/*")
        assert plan is not None
        assert plan.anchor_source == "//*"

    def test_single_step_query_is_not_planned(self):
        # ``//c`` is its own anchor; fingerprint dedup already shares it.
        assert residual_plan("//c") is None

    @pytest.mark.parametrize(
        "query",
        [
            "//a[b]//c",  # predicate on the path
            "//a//c/@id",  # attribute output
            "//a//c/text()",  # text output
            "//a[x='1']//c",  # value test in a predicate
        ],
    )
    def test_ineligible_queries_fall_back(self, query):
        assert residual_plan(query) is None

    def test_accepts_precompiled_trees(self):
        plan = residual_plan(compile_query("//r//s/v"))
        assert plan is not None
        assert plan.anchor_label == "v"


class TestPathMatches:
    def test_exact_child_chain(self):
        steps = (("r", False), ("a", False), ("c", False))
        assert path_matches(steps, ("r", "a", "c"))
        assert not path_matches(steps, ("r", "a", "b", "c"))

    def test_descendant_step_skips_levels(self):
        steps = (("r", False), ("c", True))
        assert path_matches(steps, ("r", "c"))
        assert path_matches(steps, ("r", "x", "y", "c"))
        assert not path_matches(steps, ("q", "x", "c"))

    def test_last_step_must_land_on_chain_end(self):
        steps = (("a", True), ("c", True))
        assert path_matches(steps, ("a", "c"))
        # ``c`` present but not the closing element: no match.
        assert not path_matches(steps, ("a", "c", "d"))

    def test_anchored_at_document_element(self):
        steps = (("r", False), ("c", True))
        # First child step must be the document element itself.
        assert not path_matches(steps, ("top", "r", "c"))

    def test_wildcard_step_matches_any_tag(self):
        steps = (("*", False), ("c", True))
        assert path_matches(steps, ("anything", "x", "c"))

    def test_recursive_same_tag_chain(self):
        steps = (("s", True), ("s", True), ("c", False))
        assert path_matches(steps, ("r", "s", "s", "c"))
        assert path_matches(steps, ("s", "x", "s", "c"))
        assert not path_matches(steps, ("r", "s", "c"))

    def test_empty_chain_never_matches(self):
        assert not path_matches((("a", True),), ())


class TestQueryContains:
    @pytest.mark.parametrize(
        "general, specific",
        [
            ("//c", "//a/b//c"),
            ("//a//c", "//a/b/c"),
            ("//a//c", "/a/b//c"),
            ("//*//c", "//a/b/c"),
            ("//a//c", "//a[x]//c"),  # predicate stripped on the specific side
        ],
    )
    def test_provable_containment(self, general, specific):
        assert query_contains(general, specific)

    @pytest.mark.parametrize(
        "general, specific",
        [
            ("//a/c", "//a//c"),  # child edge vs descendant edge
            ("//a//c", "//b//c"),  # disjoint labels
            ("/a//c", "//a//c"),  # rooted general, unrooted specific
            ("//a//c", "//c"),  # general longer than specific
            ("//a[b]//c", "//a/b//c"),  # predicates on the general side
            ("//a//c/@id", "//a/b//c/@id"),  # attribute output unsupported
        ],
    )
    def test_unprovable_cases_return_false(self, general, specific):
        assert not query_contains(general, specific)

    def test_containment_is_reflexive_on_linear_paths(self):
        assert query_contains("//a/b//c", "//a/b//c")
