"""The legacy entry points warn — and behave byte-identically to the new API.

Three shims: ``repro.TwigMEvaluator`` (class), ``MultiQueryEvaluator.register``
(method) and ``repro.ServiceClient`` (class).  Each must

* emit exactly one ``DeprecationWarning`` per call,
* remain behaviourally identical to the non-deprecated path it wraps, on
  the backend-conformance corpus.
"""

from __future__ import annotations

import asyncio
import warnings

import pytest

import repro
from repro import Engine, EngineConfig, MultiQueryEvaluator, Query
from repro.core.engine import TwigMEvaluator as _InternalEvaluator
from repro.service.server import ServiceServer

from .test_parity import CORPUS, QUERIES, _keys


class TestTwigMEvaluatorShim:
    def test_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="TwigMEvaluator is deprecated"):
            repro.TwigMEvaluator("//a")

    def test_warns_on_every_construction(self):
        for _ in range(3):
            with pytest.warns(DeprecationWarning):
                repro.TwigMEvaluator("//a")

    def test_internal_import_path_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _InternalEvaluator("//a")

    def test_shim_is_the_internal_evaluator(self):
        with pytest.warns(DeprecationWarning):
            evaluator = repro.TwigMEvaluator("//a")
        assert isinstance(evaluator, _InternalEvaluator)

    def test_byte_identical_to_engine_on_corpus(self):
        for backend in ("pure", "expat"):
            for document in CORPUS:
                for query in QUERIES:
                    with pytest.warns(DeprecationWarning):
                        legacy = repro.TwigMEvaluator(query)
                    old = legacy.evaluate(document, parser=backend)
                    with Engine(EngineConfig(parser=backend)) as engine:
                        subscription = engine.subscribe(Query(query))
                        new = engine.evaluate(document)[subscription.name]
                    assert _keys(new) == _keys(old), (backend, document, query)

    def test_kwargs_still_accepted(self):
        with pytest.warns(DeprecationWarning):
            evaluator = repro.TwigMEvaluator(
                "//a", capture_fragments=True, eager_emission=True,
                collect_statistics=False,
            )
        assert evaluator.capture_fragments and evaluator.eager_emission
        assert not evaluator.collect_statistics


class TestRegisterShim:
    def test_register_warns(self):
        engine = MultiQueryEvaluator()
        with pytest.warns(DeprecationWarning, match="register\\(\\) is deprecated"):
            engine.register("//a", name="q")
        engine.close()

    def test_subscribe_stays_silent(self):
        engine = MultiQueryEvaluator()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.subscribe("//a", name="q")
        engine.close()

    def test_register_and_subscribe_byte_identical(self):
        for document in CORPUS:
            old_engine = MultiQueryEvaluator()
            with pytest.warns(DeprecationWarning):
                for index, query in enumerate(QUERIES):
                    old_engine.register(query, name=f"q{index}")
            old = old_engine.evaluate(document)
            old_engine.close()

            new_engine = MultiQueryEvaluator()
            for index, query in enumerate(QUERIES):
                new_engine.subscribe(query, name=f"q{index}")
            new = new_engine.evaluate(document)
            new_engine.close()

            assert new.keys() == old.keys()
            for name in new:
                assert _keys(new[name]) == _keys(old[name]), (document, name)

    def test_register_callback_still_receives_solutions(self):
        """Legacy callbacks keep their Solution argument (not Match)."""
        engine = MultiQueryEvaluator()
        received = []
        with pytest.warns(DeprecationWarning):
            engine.register("//a//b", callback=received.append)
        engine.evaluate("<a><b>x</b></a>")
        engine.close()
        assert len(received) == 1
        assert isinstance(received[0], repro.Solution)


class TestServiceClientShim:
    def test_constructor_warns_and_works(self):
        async def scenario():
            server = ServiceServer(parser="pure")
            await server.start(port=0)
            host, port = server.address
            with pytest.warns(DeprecationWarning, match="ServiceClient is deprecated"):
                client = await repro.ServiceClient.connect(host, port)
            try:
                name = await client.subscribe("//a//b", name="q")
                assert name == "q"
                await client.feed("<a><b>x</b></a>")
                push = await client.next_push(timeout=5)
                assert push["type"] == "solution" and push["name"] == "q"
            finally:
                await client.close()
                await server.close()

        asyncio.run(asyncio.wait_for(scenario(), timeout=30))

    def test_service_connection_stays_silent(self):
        from repro.service.client import ServiceConnection

        async def scenario():
            server = ServiceServer(parser="pure")
            await server.start(port=0)
            host, port = server.address
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                client = await ServiceConnection.connect(host, port)
            await client.close()
            await server.close()

        asyncio.run(asyncio.wait_for(scenario(), timeout=30))
