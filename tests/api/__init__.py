"""API facade tests (a package so the parity corpus can be shared)."""
