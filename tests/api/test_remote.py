"""RemoteEngine behaviour: the local verb set over the wire protocol."""

from __future__ import annotations

import asyncio

import pytest

from repro import Match, Query
from repro.api.remote import RemoteEngine, RemoteSession, RemoteSubscription, connect
from repro.service.server import ServiceServer

TIMEOUT = 30


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=TIMEOUT))


async def _start(parser: str = "native") -> ServiceServer:
    server = ServiceServer(parser=parser)
    await server.start(port=0)
    return server


class TestConnect:
    def test_connect_returns_remote_engine(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            engine = await connect(host, port)
            try:
                assert isinstance(engine, RemoteEngine)
                await engine.ping()
            finally:
                await engine.close()
                await server.close()

        run(scenario())

    def test_async_context_manager(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                await engine.ping()
            await server.close()

        run(scenario())


class TestSubscribe:
    def test_subscribe_returns_handle(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                subscription = await engine.subscribe(Query("//a[ b ]"), name="q")
                assert isinstance(subscription, RemoteSubscription)
                assert subscription.name == "q"
                assert subscription.query == "//a[ b ]"
                assert engine.subscriptions == {"q": subscription}
                await subscription.unsubscribe()
                assert engine.subscriptions == {}
            await server.close()

        run(scenario())

    def test_matches_iteration(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                subscription = await engine.subscribe("//a//b", name="q")
                await engine.publish("<a><b>x</b><b>y</b></a>")
                matches = [m async for m in engine.matches(stop_at_eof=True)]
                assert all(isinstance(m, Match) for m in matches)
                assert [m.name for m in matches] == ["q", "q"]
                assert subscription.delivered == 2
            await server.close()

        run(scenario())

    def test_callback_subscribe_refused_while_matches_iterating(self):
        """The push lane has one consumer: a live matches() iterator blocks
        callback-style subscribe instead of silently stealing deliveries."""

        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                await engine.subscribe("//a//b", name="q")
                iterator = engine.matches()
                getter = asyncio.ensure_future(anext(iterator))
                await asyncio.sleep(0)  # let the iterator take the lane
                with pytest.raises(RuntimeError, match="push lane"):
                    await engine.subscribe("//a//c", callback=lambda m: None)
                getter.cancel()
                try:
                    await getter
                except asyncio.CancelledError:
                    pass
                await iterator.aclose()
                # Once the iterator is closed the lane is free again.
                await engine.subscribe("//a//c", callback=lambda m: None)
            await server.close()

        run(scenario())

    def test_unsubscribing_last_callback_frees_the_push_lane(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                subscription = await engine.subscribe(
                    "//a//b", callback=lambda m: None, name="cb"
                )
                await subscription.unsubscribe()
                # The dispatcher is gone: matches() works again and receives
                # deliveries for the remaining pull-style subscription.
                await engine.subscribe("//a//c", name="pull")
                await engine.publish("<a><c>x</c></a>")
                matches = [m async for m in engine.matches(stop_at_eof=True)]
                assert [m.name for m in matches] == ["pull"]
            await server.close()

        run(scenario())

    def test_callback_delivery(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            received: list = []
            done = asyncio.Event()

            def on_match(match: Match) -> None:
                received.append(match)
                if len(received) == 2:
                    done.set()

            async with await connect(host, port) as engine:
                await engine.subscribe("//a//b", callback=on_match, name="q")
                await engine.publish("<a><b>x</b><b>y</b></a>")
                await asyncio.wait_for(done.wait(), timeout=5)
                assert [m.name for m in received] == ["q", "q"]
                with pytest.raises(RuntimeError):
                    async for _ in engine.matches():
                        pass
            await server.close()

        run(scenario())


class TestSubscribeBatch:
    def test_subscribe_many_returns_handles(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                subscriptions = await engine.subscribe_many(
                    [("//a//b", "b"), "//a//c", (Query("//a/@id"), "ids")]
                )
                assert [s.name for s in subscriptions] == ["b", "q0", "ids"]
                assert all(
                    isinstance(s, RemoteSubscription) for s in subscriptions
                )
                assert set(engine.subscriptions) == {"b", "q0", "ids"}
                await engine.publish('<a id="1"><b>x</b><c>y</c></a>')
                matches = [m async for m in engine.matches(stop_at_eof=True)]
                assert sorted(m.name for m in matches) == sorted(
                    ["b", "q0", "ids"]
                )
            await server.close()

        run(scenario())

    def test_batch_is_all_or_nothing(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                await engine.subscribe("//a", name="taken")
                with pytest.raises(Exception) as excinfo:
                    await engine.subscribe_many(
                        [("//b", "fresh"), ("//c", "taken")]
                    )
                assert "taken" in str(excinfo.value)
                # The server rolled the whole batch back: only the original
                # subscription remains, and the names are free again.
                assert set(engine.subscriptions) == {"taken"}
                await engine.subscribe_many([("//b", "fresh")])
                assert set(engine.subscriptions) == {"taken", "fresh"}
            await server.close()

        run(scenario())

    def test_batch_callback_delivery(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            received: list = []
            done = asyncio.Event()

            def on_match(match: Match) -> None:
                received.append(match)
                if len(received) == 2:
                    done.set()

            async with await connect(host, port) as engine:
                await engine.subscribe_many(
                    ["//a//b", "//a//c"], callback=on_match
                )
                await engine.publish("<a><b>x</b><c>y</c></a>")
                await asyncio.wait_for(done.wait(), timeout=5)
                assert sorted(m.name for m in received) == ["q0", "q1"]
            await server.close()

        run(scenario())


class TestPublish:
    def test_open_session(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                session = engine.open()
                assert isinstance(session, RemoteSession)
                await session.feed_text("<a><b>x")
                await session.feed_text("</b></a>")
                reply = await session.finish()
                assert session.finished
                assert reply["elements"] == 2
                # Same contract as the local StreamSession: feeding past
                # finish() fails loudly instead of opening a new document.
                from repro import EngineError

                with pytest.raises(EngineError):
                    await session.feed_text("<zombie/>")
                with pytest.raises(EngineError):
                    await session.finish()
            await server.close()

        run(scenario())

    def test_publish_chunked_and_iterable(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                first = await engine.publish("<a><b>x</b></a>", chunk_size=3)
                second = await engine.publish(iter(["<a><b>", "y</b></a>"]))
                assert first["elements"] == second["elements"] == 2
                assert second["document"] == first["document"] + 1
            await server.close()

        run(scenario())

    def test_feed_error_surfaces_on_push_lane(self):
        async def scenario():
            server = await _start()
            host, port = server.address
            async with await connect(host, port) as engine:
                session = engine.open()
                await session.feed_text("<a><b></a>")
                await engine.ping()
                errors = [
                    frame
                    for frame in engine.pending_pushes()
                    if frame.get("type") == "error"
                ]
                assert errors, "parse error should reach the push lane"
            await server.close()

        run(scenario())


class TestManagement:
    def test_stats_and_checkpoint(self, tmp_path):
        async def scenario():
            checkpoint = str(tmp_path / "ck.json")
            server = ServiceServer(parser="native", checkpoint_path=checkpoint)
            await server.start(port=0)
            host, port = server.address
            async with await connect(host, port) as engine:
                await engine.subscribe("//a", name="q")
                stats = await engine.stats()
                assert stats["subscriptions"] == 1
                meta = await engine.checkpoint()
                assert meta["path"] == checkpoint
                assert meta["subscriptions"] == 1
            await server.close()

        run(scenario())
