"""Engine facade behaviour: config, subscriptions, sessions, snapshots."""

from __future__ import annotations

import pytest

from repro import (
    Engine,
    EngineConfig,
    EngineError,
    Match,
    Query,
    Session,
    StreamSession,
    XMLSyntaxError,
)


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.parser == "native"
        assert config.collect_statistics is True
        assert config.resumable is True

    def test_rejects_unknown_parser(self):
        with pytest.raises(ValueError):
            EngineConfig(parser="sax2")

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            EngineConfig(chunk_size=0)

    def test_parsers_match_backend_registry(self):
        from repro.xmlstream.sax import PARSER_BACKENDS

        assert EngineConfig.PARSERS == PARSER_BACKENDS

    def test_engine_accepts_field_overrides(self):
        engine = Engine(parser="expat", collect_statistics=False)
        assert engine.config == EngineConfig(parser="expat", collect_statistics=False)

    def test_engine_rejects_unknown_overrides(self):
        with pytest.raises(TypeError):
            Engine(backend="expat")

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            EngineConfig().parser = "expat"


class TestSubscriptions:
    def test_subscribe_accepts_str_query_and_tree(self, simple_doc):
        from repro import compile_query

        with Engine() as engine:
            engine.subscribe("//book", name="s")
            engine.subscribe(Query("//book"), name="q")
            engine.subscribe(compile_query("//book"), name="t")
            results = engine.evaluate(simple_doc)
        assert len(results) == 3
        assert len(set(tuple(_keys(r)) for r in results.values())) == 1

    def test_callbacks_receive_matches(self, simple_doc):
        received = []
        with Engine() as engine:
            engine.subscribe("//book/@id", callback=received.append, name="ids")
            engine.evaluate(simple_doc)
        assert [type(m) for m in received] == [Match, Match]
        assert all(m.name == "ids" for m in received)
        assert sorted(m.solution.value for m in received) == ["b1", "b2"]

    def test_callback_exceptions_are_isolated(self, simple_doc):
        def boom(match):
            raise RuntimeError("nope")

        with Engine() as engine:
            subscription = engine.subscribe("//book", callback=boom)
            results = engine.evaluate(simple_doc)[subscription.name]
            assert subscription.callback_errors == 2
        assert len(results) == 2

    def test_unsubscribe_by_handle_or_name(self):
        with Engine() as engine:
            first = engine.subscribe("//a", name="one")
            engine.subscribe("//b", name="two")
            engine.unsubscribe(first)
            engine.unsubscribe("two")
            assert len(engine) == 0

    def test_pause_resume(self, simple_doc):
        received = []
        with Engine() as engine:
            subscription = engine.subscribe(
                "//book", callback=received.append, name="books"
            )
            engine.pause("books")
            engine.evaluate(simple_doc)
            assert received == []
            assert subscription.delivered == 0

    def test_stream_yields_matches(self, simple_doc):
        with Engine() as engine:
            engine.subscribe("//book/@id", name="ids")
            matches = list(engine.stream(simple_doc))
        assert all(isinstance(match, Match) for match in matches)
        # Tuple compatibility: unpacking and equality with plain pairs.
        for name, solution in matches:
            assert name == "ids"
        assert matches == [(m.name, m.solution) for m in matches]


class TestBatchSubscriptions:
    def test_subscribe_many_returns_handles_in_order(self, simple_doc):
        with Engine() as engine:
            subscriptions = engine.subscribe_many(
                [("//book", "books"), "//journal", (Query("//title"), "titles")]
            )
            assert [s.name for s in subscriptions] == ["books", "q0", "titles"]
            results = engine.evaluate(simple_doc)
        assert len(results["books"]) == 2
        assert len(results["titles"]) == 3

    def test_subscribe_many_callback_receives_matches(self, simple_doc):
        received = []
        with Engine() as engine:
            engine.subscribe_many(
                [("//book/@id", "ids"), ("//journal/@id", "jids")],
                callback=received.append,
            )
            engine.evaluate(simple_doc)
        assert all(isinstance(match, Match) for match in received)
        assert sorted((m.name, m.solution.value) for m in received) == [
            ("ids", "b1"),
            ("ids", "b2"),
            ("jids", "j1"),
        ]

    def test_subscribe_many_is_all_or_nothing(self):
        with Engine() as engine:
            engine.subscribe("//a", name="taken")
            with pytest.raises(EngineError):
                engine.subscribe_many([("//b", "fresh"), ("//c", "taken")])
            assert [s.name for s in engine.subscriptions] == ["taken"]

    def test_batch_shares_machines_under_containment(self):
        with Engine(containment_sharing=True) as engine:
            engine.subscribe_many(["//a//c", "//a/c", "//b/c", "/r//c"])
            stats = engine.stats()
            assert stats.subscriptions == 4
            assert stats.machines == 1
            assert stats.families == 1


class TestSessions:
    def test_open_returns_stream_session(self):
        assert Session is StreamSession
        with Engine() as engine:
            engine.subscribe("//a")
            session = engine.open()
            assert isinstance(session, StreamSession)
            session.feed_text("<a/>")
            session.finish()

    def test_open_uses_config_parser(self):
        with Engine(parser="expat") as engine:
            engine.subscribe("//a")
            assert engine.open().parser == "expat"
        with Engine() as engine:
            engine.subscribe("//a")
            assert engine.open(parser="expat").parser == "expat"

    def test_session_returns_matches(self):
        with Engine() as engine:
            engine.subscribe("//a//b", name="q")
            session = engine.open()
            pairs = session.feed_text("<a><b>x</b>")
            pairs += session.feed_text("</a>")
            pairs += session.finish()
        assert len(pairs) == 1
        assert isinstance(pairs[0], Match)
        assert pairs[0].name == "q"

    def test_parse_error_leaves_engine_reusable(self):
        with Engine() as engine:
            engine.subscribe("//a", name="q")
            session = engine.open()
            with pytest.raises(XMLSyntaxError):
                session.feed_text("<a><b></a>")
                session.finish()
            results = engine.evaluate("<a/>")
            assert len(results["q"]) == 1


class TestSnapshots:
    def test_snapshot_restore_round_trip(self):
        with Engine() as engine:
            engine.subscribe("//a//b", name="q")
            session = engine.open()
            session.feed_text("<a><b>x</b>")
            snapshot = session.snapshot()

        restored_engine = Engine()
        restored_session = restored_engine.restore(snapshot)
        assert restored_session is not None
        pairs = restored_session.feed_text("</a>")
        pairs += restored_session.finish()
        assert [match.name for match in pairs] == ["q"]
        restored_engine.close()

    def test_engine_only_snapshot_restores_to_none(self):
        with Engine() as engine:
            engine.subscribe("//a", name="q")
            snapshot = engine.snapshot()
        fresh = Engine()
        assert fresh.restore(snapshot) is None
        assert [s.name for s in fresh.subscriptions] == ["q"]
        fresh.close()

    def test_restore_rejects_garbage(self):
        from repro import CheckpointError

        with pytest.raises(CheckpointError):
            Engine().restore({"format": "nope"})


class TestLifecycle:
    def test_evaluate_without_subscriptions_raises(self):
        with pytest.raises(EngineError):
            Engine().evaluate("<a/>")

    def test_reset_allows_next_document(self, simple_doc):
        with Engine() as engine:
            engine.subscribe("//book", name="q")
            first = engine.evaluate(simple_doc)["q"]
            engine.reset()
            second = engine.evaluate(simple_doc)["q"]
        assert _keys(first) == _keys(second)

    def test_repr_mentions_shape(self):
        engine = Engine(parser="expat")
        engine.subscribe("//a")
        assert "expat" in repr(engine)
        assert "subscriptions=1" in repr(engine)
        engine.close()

    def test_core_escape_hatch(self):
        from repro.core.multi import MultiQueryEvaluator

        engine = Engine()
        assert isinstance(engine.core, MultiQueryEvaluator)
        engine.close()


def _keys(result_set):
    return sorted(solution.key() for solution in result_set)
