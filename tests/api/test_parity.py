"""Parity gate: the new facade paths are byte-identical to the legacy paths.

The acceptance bar for the API redesign: for every document in the backend
conformance corpus and every query in a fixed query set, the new
``Engine`` / ``Engine.open()`` session / ``RemoteEngine`` surfaces must
produce result sets identical to the legacy ``TwigMEvaluator`` /
``MultiQueryEvaluator`` / ``ServiceClient`` paths, on both the pure and
expat backends.
"""

from __future__ import annotations

import asyncio
import warnings

import pytest

from repro import Engine, EngineConfig, Match, Query
from repro.core.engine import TwigMEvaluator
from repro.core.multi import MultiQueryEvaluator
from repro.service.server import ServiceServer

#: The backend-conformance corpus (kept in sync with
#: tests/xmlstream/test_backend_conformance.py) plus query shapes covering
#: elements, attributes, text, predicates and wildcards.
CORPUS = [
    "<a/>",
    "<a><b>text</b><c x='1'/></a>",
    "<root>pre<child attr='v'>inner</child>post</root>",
    "<a>&lt;escaped&gt; &amp; more</a>",
    "<a>\n  <b>\n    <c>deep</c>\n  </b>\n</a>",
    '<?xml version="1.0"?><doc><!-- comment --><item id="1">x</item></doc>',
    "<m><m><m><leaf/></m></m></m>",
    "<a>one<!-- note -->two</a>",
    "<a><![CDATA[1 < 2 && x]]>tail</a>",
    "<a><?pi data here?><b/></a>",
    "<a x='1' y=\"2\" z='&amp;'>v</a>",
]

QUERIES = [
    "//a",
    "//a//b",
    "//a[b]",
    "//*",
    "//a/@x",
    "//child/@attr",
    "//a/text()",
    "//m//leaf",
    "//item[@id='1']",
    "//a[b]/c",
]

BACKENDS = ("pure", "expat")


def _keys(result_set):
    return sorted(solution.key() for solution in result_set)


@pytest.mark.parametrize("backend", BACKENDS)
class TestEngineParity:
    def test_engine_evaluate_matches_single_query_evaluator(self, backend):
        for document in CORPUS:
            for query in QUERIES:
                legacy = TwigMEvaluator(query).evaluate(document, parser=backend)
                with Engine(EngineConfig(parser=backend)) as engine:
                    subscription = engine.subscribe(Query(query))
                    new = engine.evaluate(document)[subscription.name]
                assert _keys(new) == _keys(legacy), (document, query)

    def test_engine_evaluate_matches_multi_query_evaluator(self, backend):
        for document in CORPUS:
            legacy_engine = MultiQueryEvaluator()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                for index, query in enumerate(QUERIES):
                    legacy_engine.register(query, name=f"q{index}")
            legacy = legacy_engine.evaluate(document, parser=backend)
            legacy_engine.close()

            with Engine(EngineConfig(parser=backend)) as engine:
                for index, query in enumerate(QUERIES):
                    engine.subscribe(Query(query), name=f"q{index}")
                new = engine.evaluate(document)
            assert new.keys() == legacy.keys()
            for name in new:
                assert _keys(new[name]) == _keys(legacy[name]), (document, name)

    def test_open_session_matches_legacy_session_every_split(self, backend):
        """Engine.open() pairs == legacy engine.session() pairs, 1-byte feeds."""
        for document in CORPUS:
            legacy_engine = MultiQueryEvaluator()
            for index, query in enumerate(QUERIES):
                legacy_engine.subscribe(query, name=f"q{index}")
            legacy_session = legacy_engine.session(parser=backend)
            data = document.encode("utf-8")
            legacy_pairs = []
            for offset in range(0, len(data), 7):
                legacy_pairs.extend(legacy_session.feed_bytes(data[offset : offset + 7]))
            legacy_pairs.extend(legacy_session.finish())
            legacy_engine.close()

            with Engine(EngineConfig(parser=backend)) as engine:
                for index, query in enumerate(QUERIES):
                    engine.subscribe(Query(query), name=f"q{index}")
                session = engine.open()
                pairs = []
                for offset in range(0, len(data), 7):
                    pairs.extend(session.feed_bytes(data[offset : offset + 7]))
                pairs.extend(session.finish())
            assert pairs == legacy_pairs, document
            assert all(isinstance(pair, Match) for pair in pairs)


class TestRemoteParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_remote_engine_matches_local_engine(self, backend):
        """RemoteEngine deliveries == local Engine deliveries, per document."""
        from repro.api.remote import connect

        async def scenario():
            server = ServiceServer(parser=backend)
            await server.start(port=0)
            host, port = server.address
            remote = await connect(host, port)
            received = []
            try:
                for index, query in enumerate(QUERIES):
                    await remote.subscribe(Query(query), name=f"q{index}")
                for document in CORPUS:
                    await remote.publish(document, chunk_size=5)
                    async for match in remote.matches(stop_at_eof=True):
                        received.append(match)
            finally:
                await remote.close()
                await server.close()
            return received

        remote_matches = asyncio.run(asyncio.wait_for(scenario(), timeout=60))

        local_matches = []
        with Engine(EngineConfig(parser=backend)) as engine:
            for index, query in enumerate(QUERIES):
                engine.subscribe(Query(query), name=f"q{index}")
            for document in CORPUS:
                session = engine.open()
                for start in range(0, len(document), 5):
                    local_matches.extend(session.feed_text(document[start : start + 5]))
                local_matches.extend(session.finish())
                engine.reset()

        assert [(m.name, m.solution.key()) for m in remote_matches] == [
            (m.name, m.solution.key()) for m in local_matches
        ]

    def test_remote_engine_matches_legacy_service_client(self):
        """The facade and the raw deprecated client see identical frames."""
        from repro.api.remote import connect
        from repro.service.client import ServiceClient

        document = "<a><b>text</b><c x='1'/></a>"

        async def scenario():
            server = ServiceServer(parser="pure")
            await server.start(port=0)
            host, port = server.address
            remote = await connect(host, port)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                legacy = await ServiceClient.connect(host, port)
            try:
                await remote.subscribe("//a//b", name="facade")
                await legacy.subscribe("//a//b", name="legacy")
                await remote.publish(document)
                new = [match async for match in remote.matches(stop_at_eof=True)]
                old = []
                async for name, solution, _frame in legacy.solutions(stop_at_eof=True):
                    old.append((name, solution))
            finally:
                await remote.close()
                await legacy.close()
                await server.close()
            return new, old

        new, old = asyncio.run(asyncio.wait_for(scenario(), timeout=30))
        assert [m.solution for m in new] == [solution for _name, solution in old]
        assert [m.name for m in new] == ["facade"]
        assert [name for name, _ in old] == ["legacy"]
