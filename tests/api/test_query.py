"""Query value-object semantics: compile once, hash/compare by fingerprint."""

from __future__ import annotations

import pytest

from repro import (
    Engine,
    Query,
    UnsupportedFeatureError,
    XPathSyntaxError,
    compile_query,
    evaluate,
)
from repro.xpath.fingerprint import query_fingerprint


class TestConstruction:
    def test_from_string(self):
        query = Query("//a[b]//c")
        assert query.source == "//a[b]//c"
        assert query.fingerprint == query_fingerprint("//a[b]//c")
        assert str(query) == "//a[b]//c"
        assert repr(query) == "Query('//a[b]//c')"

    def test_from_query_tree(self):
        tree = compile_query("//a[b]")
        query = Query(tree)
        assert query.tree is tree
        assert query.source == "//a[b]"

    def test_from_query_copies_without_recompiling(self):
        first = Query("//a[b]")
        second = Query(first)
        assert second == first
        assert second.tree is first.tree

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            Query(42)

    def test_syntax_errors_surface_at_construction(self):
        with pytest.raises(XPathSyntaxError):
            Query("//a[")
        with pytest.raises(UnsupportedFeatureError):
            Query("//a[count(b)=2]")


class TestValueSemantics:
    def test_spelling_variants_are_equal(self):
        assert Query("//a[b]") == Query("//a[ b ]")
        assert hash(Query("//a[b]")) == hash(Query("//a[ b ]"))

    def test_attribute_expansion_variants_are_equal(self):
        assert Query("//@id") == Query("//*/@id")

    def test_string_vs_numeric_value_tests_differ(self):
        assert Query("//a[b='1']") != Query("//a[b=1]")

    def test_different_queries_differ(self):
        assert Query("//a[b]") != Query("//a[c]")

    def test_usable_as_dict_key(self):
        cache = {Query("//a[b]"): "x"}
        assert cache[Query("//a[ b ]")] == "x"

    def test_not_equal_to_strings(self):
        assert (Query("//a") == "//a") is False

    def test_immutable_surface(self):
        query = Query("//a")
        with pytest.raises(AttributeError):
            query.source = "//b"  # type: ignore[misc]


class TestAcceptedEverywhere:
    def test_evaluate_helper_accepts_query(self, simple_doc):
        by_string = evaluate("//book[author]/@id", simple_doc)
        by_query = evaluate(Query("//book[author]/@id"), simple_doc)
        assert sorted(s.key() for s in by_query) == sorted(
            s.key() for s in by_string
        )

    def test_engine_subscribe_accepts_query(self, simple_doc):
        with Engine() as engine:
            subscription = engine.subscribe(Query("//book/@id"))
            assert subscription.source == "//book/@id"
            results = engine.evaluate(simple_doc)[subscription.name]
        assert len(results) == 2

    def test_source_round_trips_checkpoints(self):
        """Registering a Query snapshots exactly like registering its text."""
        from repro.core.checkpoint import dumps_snapshot

        with Engine() as by_query:
            by_query.subscribe(Query("//a[ b ]"), name="q")
            query_bytes = dumps_snapshot(by_query.snapshot())
        with Engine() as by_string:
            by_string.subscribe("//a[ b ]", name="q")
            string_bytes = dumps_snapshot(by_string.snapshot())
        assert query_bytes == string_bytes

    def test_shared_machines_across_spellings(self):
        with Engine() as engine:
            engine.subscribe(Query("//a[b]"))
            engine.subscribe(Query("//a[ b ]"))
            assert engine.stats().machines == 1
            assert len(engine) == 2
