#!/usr/bin/env python3
"""Snapshot and diff the public API surface (names + signatures).

The committed ``api_surface.txt`` is the reviewed public contract: every
name in ``repro.__all__`` and ``repro.api.__all__`` with its signature (for
classes, every public method and property).  CI regenerates the surface and
fails on any drift, so an accidental rename, a dropped export or a changed
default never ships silently — changing the API means changing the snapshot
in the same diff, where a reviewer sees it.

Usage::

    python tools/check_api_surface.py            # diff against api_surface.txt
    python tools/check_api_surface.py --write    # regenerate the snapshot

Run from the repository root with ``PYTHONPATH=src`` (or the package
installed).
"""

from __future__ import annotations

import argparse
import difflib
import inspect
import os
import sys
from typing import Iterator, List

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SURFACE_PATH = os.path.join(ROOT, "api_surface.txt")

HEADER = (
    "# Public API surface of the vitex reproduction (names + signatures).\n"
    "# Regenerate with: PYTHONPATH=src python tools/check_api_surface.py --write\n"
    "# CI diffs this file against the live package; drift fails the build.\n"
)


def _signature(obj: object) -> str:
    try:
        return str(inspect.signature(obj))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "(...)"


def _class_lines(prefix: str, cls: type) -> Iterator[str]:
    bases = ", ".join(
        base.__name__ for base in cls.__bases__ if base is not object
    )
    suffix = f"({bases})" if bases else ""
    yield f"class {prefix}{suffix}"
    if issubclass(cls, BaseException):
        return  # the hierarchy line says it all
    # dir() rather than vars(): inherited public methods (e.g. a deprecated
    # shim subclass that only overrides __init__) are part of the public
    # surface and must be covered by the drift gate too.
    for name in sorted(set(dir(cls))):
        if name.startswith("_") and name != "__init__":
            continue
        member = inspect.getattr_static(cls, name)
        if isinstance(member, property):
            yield f"  {prefix}.{name} [property]"
        elif isinstance(member, staticmethod):
            yield f"  {prefix}.{name}{_signature(member.__func__)} [staticmethod]"
        elif isinstance(member, classmethod):
            yield f"  {prefix}.{name}{_signature(member.__func__)} [classmethod]"
        elif inspect.isfunction(member):
            yield f"  {prefix}.{name}{_signature(member)}"
        elif name != "__init__" and not callable(member):
            # NamedTuple fields / dataclass defaults / class constants.
            yield f"  {prefix}.{name} [attribute]"


def _module_lines(module_name: str) -> Iterator[str]:
    module = __import__(module_name, fromlist=["__all__"])
    yield f"[{module_name}]"
    for name in sorted(module.__all__):
        obj = getattr(module, name)
        prefix = f"{module_name}.{name}"
        if inspect.isclass(obj):
            yield from _class_lines(prefix, obj)
        elif callable(obj):
            yield f"{prefix}{_signature(obj)}"
        else:
            yield f"{prefix}: {type(obj).__name__}"
    yield ""


def generate_surface() -> str:
    lines: List[str] = [HEADER]
    for module_name in ("repro", "repro.api"):
        lines.extend(_module_lines(module_name))
    return "\n".join(lines).rstrip("\n") + "\n"


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write", action="store_true", help="regenerate api_surface.txt"
    )
    args = parser.parse_args(argv)

    surface = generate_surface()
    if args.write:
        with open(SURFACE_PATH, "w", encoding="utf-8") as handle:
            handle.write(surface)
        print(f"wrote {SURFACE_PATH} ({len(surface.splitlines())} lines)")
        return 0

    try:
        with open(SURFACE_PATH, "r", encoding="utf-8") as handle:
            committed = handle.read()
    except OSError as exc:
        print(f"error: cannot read {SURFACE_PATH}: {exc}", file=sys.stderr)
        return 1
    if committed == surface:
        print(f"OK: public API surface matches {os.path.basename(SURFACE_PATH)}")
        return 0
    print(
        "FAIL: public API surface drifted from api_surface.txt.\n"
        "If the change is intentional, regenerate the snapshot with\n"
        "  PYTHONPATH=src python tools/check_api_surface.py --write\n"
        "and commit it alongside the code change.\n",
        file=sys.stderr,
    )
    for line in difflib.unified_diff(
        committed.splitlines(),
        surface.splitlines(),
        fromfile="api_surface.txt (committed)",
        tofile="api_surface.txt (live package)",
        lineterm="",
    ):
        print(line, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
