#!/usr/bin/env python3
"""Execute the README's ``python`` code blocks — docs that cannot rot.

Every fenced ```` ```python ```` block in README.md is extracted and executed
in its own namespace inside a temporary working directory.  A block can opt
out by being immediately preceded by the marker comment::

    <!-- snippet: no-run -->

(used for illustrative fragments that need external infrastructure).  Any
raising block fails the run with the block's line number, so the quickstart
in the README is re-proven against the live package on every CI run.
"""

from __future__ import annotations

import os
import sys
import tempfile
from typing import List, Tuple

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
README = os.path.join(ROOT, "README.md")

NO_RUN_MARKER = "<!-- snippet: no-run -->"


def extract_snippets(text: str) -> List[Tuple[int, str, bool]]:
    """Return ``(start line, code, runnable)`` for each python block."""
    snippets: List[Tuple[int, str, bool]] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        if line == "```python":
            # Look back over blank lines for the opt-out marker.
            back = index - 1
            while back >= 0 and not lines[back].strip():
                back -= 1
            runnable = back < 0 or lines[back].strip() != NO_RUN_MARKER
            start = index + 1
            body: List[str] = []
            index += 1
            while index < len(lines) and lines[index].strip() != "```":
                body.append(lines[index])
                index += 1
            snippets.append((start + 1, "\n".join(body), runnable))
        index += 1
    return snippets


def run_snippet(line: int, code: str) -> None:
    namespace = {"__name__": f"__readme_snippet_L{line}__"}
    exec(compile(code, f"README.md:L{line}", "exec"), namespace)


def main() -> int:
    with open(README, "r", encoding="utf-8") as handle:
        text = handle.read()
    snippets = extract_snippets(text)
    if not snippets:
        print("error: no python snippets found in README.md", file=sys.stderr)
        return 1
    runnable = [(line, code) for line, code, ok in snippets if ok]
    skipped = len(snippets) - len(runnable)
    failures = 0
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="readme-snippets-") as workdir:
        os.chdir(workdir)
        try:
            for line, code in runnable:
                try:
                    run_snippet(line, code)
                except Exception as exc:  # noqa: BLE001 - report and continue
                    failures += 1
                    print(
                        f"FAIL README.md:L{line}: {type(exc).__name__}: {exc}",
                        file=sys.stderr,
                    )
                else:
                    print(f"ok README.md:L{line}")
        finally:
            os.chdir(cwd)
    print(
        f"{len(runnable) - failures}/{len(runnable)} snippet(s) passed, "
        f"{skipped} skipped (no-run)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
