"""E4 — TwigM construction is linear in the query size.

Paper claim (Feature 2): "The query processor TwigM can be constructed from
an XPath query in time which is linear in the size of the query."

Reproduced shape: building the machine for queries of 1 to 200 steps, the
per-node construction cost stays flat (no super-linear growth), and total
build time grows proportionally to the query size.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import print_report, render_table
from repro.bench.runner import run_builder_scaling
from repro.core.builder import build_machine
from repro.xpath.generator import linear_descendant_query
from repro.xpath.normalize import compile_query


@pytest.mark.benchmark(group="E4-builder")
class TestBuilderBenchmarks:
    @pytest.mark.parametrize("steps", [1, 10, 100])
    def test_build_machine(self, benchmark, steps):
        tree = compile_query(linear_descendant_query("a", steps, predicate_tag="b"))

        machine = benchmark(lambda: build_machine(tree))
        assert machine.size == 2 * steps

    def test_parse_and_build_paper_query(self, benchmark):
        machine = benchmark(
            lambda: build_machine("//section[author]//table[position]//cell")
        )
        assert machine.size == 5


def test_e4_builder_scaling_table(benchmark):
    """Print the scaling table and assert per-node cost stays flat."""
    benchmark(lambda: build_machine(compile_query(linear_descendant_query("a", 50, predicate_tag="b"))))
    rows = run_builder_scaling(step_counts=(1, 5, 10, 25, 50, 100, 200), repeats=30)
    print_report(render_table(rows, title="E4: TwigM builder time vs query size"))

    per_node = [row["build_us_per_node"] for row in rows]
    totals = [row["build_s"] for row in rows]
    sizes = [row["query_nodes"] for row in rows]

    # Total time increases with query size...
    assert totals[-1] > totals[0]
    # ...but per-node cost does not blow up (linearity): the largest query's
    # per-node cost stays within a small constant factor of the median.
    median = sorted(per_node)[len(per_node) // 2]
    assert per_node[-1] < median * 10

    # Sanity: the machines really do have linearly many nodes.
    assert sizes == [2 * steps for steps in (1, 5, 10, 25, 50, 100, 200)]


def test_e4_build_time_linear_fit(benchmark):
    """A coarse two-point linearity check: 10x nodes => roughly 10x time (±5x)."""
    def measure(steps: int) -> float:
        tree = compile_query(linear_descendant_query("a", steps, predicate_tag="b"))
        start = time.perf_counter()
        for _ in range(20):
            build_machine(tree)
        return (time.perf_counter() - start) / 20

    small = benchmark.pedantic(lambda: measure(20), rounds=1, iterations=1)
    large = measure(200)
    ratio = large / small
    assert 2 < ratio < 50
