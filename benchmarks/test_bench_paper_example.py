"""E6 — the Section 1 worked example as a micro-benchmark.

Paper artifact: Figure 1's document plus the walk-through of
``//section[author]//table[position]//cell``, including the 9-pattern-match
accounting for ``cell_8`` and the conclusion that it is the only solution.

The correctness side lives in ``tests/core/test_paper_example.py``; this
benchmark adds the timing/accounting row: evaluation cost of the walk-through
query on Figure 1 and on a scaled-up Figure-1-shaped document, for TwigM and
for the naive enumerator.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.naive import NaiveStreamingEvaluator
from repro.bench.reporting import print_report, render_table
from repro.core.engine import TwigMEvaluator
from repro.datasets.figures import FIGURE_1_QUERY, FIGURE_1_XML
from repro.datasets.recursive import RecursiveBookGenerator, RecursiveConfig


@pytest.fixture(scope="module")
def scaled_figure_document() -> str:
    """A Figure-1-shaped document with 12-deep section/table nesting."""
    return RecursiveBookGenerator(
        RecursiveConfig(
            section_depth=12,
            table_depth=6,
            section_groups=3,
            cells_per_table=2,
            author_probability=0.5,
            position_probability=0.5,
            noise_per_section=0,
        ),
        seed=31,
    ).text()


@pytest.mark.benchmark(group="E6-paper-example")
class TestPaperExampleBenchmarks:
    def test_twigm_on_figure1(self, benchmark):
        result = benchmark(lambda: TwigMEvaluator(FIGURE_1_QUERY).evaluate(FIGURE_1_XML))
        assert len(result) == 1

    def test_naive_on_figure1(self, benchmark):
        result = benchmark(
            lambda: NaiveStreamingEvaluator(FIGURE_1_QUERY).evaluate(FIGURE_1_XML)
        )
        assert len(result) == 1

    def test_twigm_on_scaled_figure_document(self, benchmark, scaled_figure_document):
        result = benchmark(
            lambda: TwigMEvaluator(FIGURE_1_QUERY).evaluate(scaled_figure_document)
        )
        assert result is not None


def test_e6_walkthrough_accounting_table(benchmark, scaled_figure_document):
    """Print the pattern-match accounting rows for Figure 1 and the scaled copy."""
    benchmark(lambda: TwigMEvaluator(FIGURE_1_QUERY).evaluate(FIGURE_1_XML))
    rows = []
    for name, document in (("figure-1", FIGURE_1_XML), ("figure-1 x12 deep", scaled_figure_document)):
        twigm = TwigMEvaluator(FIGURE_1_QUERY)
        start = time.perf_counter()
        twigm_result = twigm.evaluate(document)
        twigm_seconds = time.perf_counter() - start

        naive = NaiveStreamingEvaluator(FIGURE_1_QUERY)
        start = time.perf_counter()
        naive_result = naive.evaluate(document)
        naive_seconds = time.perf_counter() - start

        rows.append(
            {
                "document": name,
                "solutions": len(twigm_result),
                "twigm_pushes": twigm.statistics.pushes,
                "twigm_s": round(twigm_seconds, 5),
                "naive_records": naive.statistics.records_created,
                "naive_s": round(naive_seconds, 5),
                "agrees": naive_result.keys() == twigm_result.keys(),
            }
        )
    print_report(
        render_table(rows, title="E6: Section 1 walk-through — pattern-match accounting")
    )

    assert all(row["agrees"] for row in rows)
    figure_row, scaled_row = rows
    # Figure 1: the walk-through answer is exactly one cell, and the naive
    # evaluator stores strictly more records than TwigM performs pushes
    # (21 explicit matches vs 7 stack entries for the unpredicated subquery).
    assert figure_row["solutions"] == 1
    assert figure_row["naive_records"] > figure_row["twigm_pushes"]
    # The gap widens dramatically on the deeper document.
    assert (
        scaled_row["naive_records"] / max(scaled_row["twigm_pushes"], 1)
        > figure_row["naive_records"] / figure_row["twigm_pushes"]
    )
