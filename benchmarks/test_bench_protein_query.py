"""E1 — the paper's protein query with a parse/total time breakdown.

Paper claim (Feature 5): ``//ProteinEntry[reference]/@id`` on the 75 MB
Protein dataset takes 6.02 s end-to-end, of which 4.43 s is SAX parsing — in
other words, parsing dominates and the TwigM machine adds roughly a 35 %
overhead on top of a bare parse.

Reproduced shape: on the synthetic protein dataset the end-to-end time is
parse-dominated for both parser back-ends, and the TwigM overhead stays a
small constant factor of the parse-only time.  Absolute numbers differ (pure
Python vs the authors' C++ prototype); the breakdown table printed at the end
is the row to compare against the paper's 4.43 s / 6.02 s split.
"""

from __future__ import annotations

import pytest

from repro.bench.metrics import time_evaluation, time_parse_only
from repro.bench.reporting import print_report, render_table
from repro.bench.workloads import PROTEIN_PAPER_QUERY
from repro.core.engine import TwigMEvaluator


@pytest.mark.benchmark(group="E1-protein-query")
class TestProteinQueryBenchmarks:
    def test_parse_only_expat(self, benchmark, protein_document):
        benchmark(lambda: time_parse_only(protein_document, parser="expat"))

    def test_parse_only_native(self, benchmark, protein_document):
        benchmark(lambda: time_parse_only(protein_document, parser="native"))

    def test_end_to_end_expat(self, benchmark, protein_document):
        def run():
            return TwigMEvaluator(PROTEIN_PAPER_QUERY).evaluate(protein_document, parser="expat")

        result = benchmark(run)
        assert len(result) > 0

    def test_end_to_end_native(self, benchmark, protein_document):
        def run():
            return TwigMEvaluator(PROTEIN_PAPER_QUERY).evaluate(protein_document, parser="native")

        result = benchmark(run)
        assert len(result) > 0


def test_e1_breakdown_table(benchmark, protein_document):
    """Print the paper-style breakdown row and check the qualitative shape."""
    # Timed kernel for --benchmark-only runs: the paper query, expat back-end.
    benchmark(lambda: TwigMEvaluator(PROTEIN_PAPER_QUERY).evaluate(protein_document, parser="expat"))
    rows = []
    document_mb = len(protein_document.encode("utf-8")) / (1024 * 1024)
    for parser in ("expat", "native"):
        parse_seconds, _ = time_parse_only(protein_document, parser=parser)
        total_seconds, results, evaluator = time_evaluation(
            PROTEIN_PAPER_QUERY, protein_document, parser=parser
        )
        rows.append(
            {
                "parser": parser,
                "doc_mb": round(document_mb, 2),
                "parse_s": round(parse_seconds, 3),
                "total_s": round(total_seconds, 3),
                "twigm_overhead_s": round(total_seconds - parse_seconds, 3),
                "parse_fraction": round(parse_seconds / total_seconds, 2),
                "solutions": len(results),
                "paper_total_s": "6.02 (75 MB)",
                "paper_parse_s": "4.43 (75 MB)",
            }
        )
        # Shape assertion: the TwigM overhead on top of parsing is bounded
        # (well under 3x the parse time for this query).  No lower bound:
        # full evaluation goes through the fused fast path, which can beat
        # a bare pass of the event *object* pipeline measured here.
        assert total_seconds <= parse_seconds * 4.0
        assert len(results) > 0
    print_report(
        render_table(rows, title="E1: //ProteinEntry[reference]/@id — parse vs total time")
    )
