"""M1 benchmarks: multi-query subscription scaling under indexed dispatch.

The paper's motivating scenario is very many standing queries over one
stream.  These benchmarks sweep the subscription count over the three query
mixes of ``repro.bench.workloads.multiquery_mix``:

* ``disjoint`` — private label sets: the dispatch index should make the
  shared pass nearly independent of the subscription count (sub-linear
  scaling, asserted below against independent per-query scans);
* ``overlapping`` — every machine reacts to the shared record tag: the
  adversarial case where per-event cost degrades towards O(queries);
* ``duplicate`` — structurally identical queries: fingerprint dedup must
  collapse them onto one machine (asserted below).

``vitex bench multiquery --json BENCH_multiquery.json`` runs the full sweep
(1 → 500 subscriptions) and records the baseline table.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.workloads import build_multiquery_document, multiquery_mix
from repro.core.engine import TwigMEvaluator
from repro.core.multi import MultiQueryEvaluator

from conftest import SCALE

LABEL_COUNT = 200


@pytest.fixture(scope="module")
def subscription_document() -> str:
    """The M1 subscription-stream document (~170 KiB at scale 1.0)."""
    return build_multiquery_document(
        label_count=LABEL_COUNT, records=int(3000 * SCALE), seed=7
    )


def _register(kind: str, count: int) -> MultiQueryEvaluator:
    evaluator = MultiQueryEvaluator()
    for index, query in enumerate(multiquery_mix(kind, count, label_count=LABEL_COUNT)):
        evaluator.subscribe(query, name=f"q{index}")
    return evaluator


@pytest.mark.benchmark(group="multiquery-scaling")
@pytest.mark.parametrize("kind", ["disjoint", "overlapping", "duplicate"])
@pytest.mark.parametrize("count", [10, 200])
def test_multiquery_shared_scan(benchmark, subscription_document, kind, count):
    def run():
        evaluator = _register(kind, count)
        return evaluator.evaluate(subscription_document, parser="pure")

    results = benchmark(run)
    assert len(results) == count
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["queries"] = count


def test_duplicate_queries_share_one_machine(subscription_document):
    """Fingerprint dedup: 50 duplicate registrations, one TwigM machine."""
    evaluator = _register("duplicate", 50)
    assert len(evaluator) == 50
    assert evaluator.machine_count == 1
    results = evaluator.evaluate(subscription_document)
    first = results["q0"].keys()
    assert len(first) > 0
    assert all(results[f"q{index}"].keys() == first for index in range(50))


def test_indexed_dispatch_sublinear_vs_independent_scans(subscription_document):
    """Acceptance: 200 disjoint subscriptions ≤ 0.25× of 200 full scans.

    The independent-scan side is measured on a 10-query sample and scaled
    linearly (each scan costs the same full parse); the margin between the
    observed ratio (~0.02) and the asserted bound (0.25) absorbs timer noise.
    """
    count, sample = 200, 10
    queries = multiquery_mix("disjoint", count, label_count=LABEL_COUNT)
    evaluator = MultiQueryEvaluator()
    for index, query in enumerate(queries):
        evaluator.subscribe(query, name=f"q{index}")

    start = time.perf_counter()
    shared = evaluator.evaluate(subscription_document, parser="pure")
    shared_seconds = time.perf_counter() - start

    start = time.perf_counter()
    individual = [
        TwigMEvaluator(queries[index]).evaluate(subscription_document, parser="pure")
        for index in range(sample)
    ]
    sample_seconds = time.perf_counter() - start
    independent_estimate = sample_seconds / sample * count

    for index, result in enumerate(individual):
        assert shared[f"q{index}"].keys() == result.keys()
    assert shared_seconds <= independent_estimate * 0.25, (
        f"shared pass took {shared_seconds:.4f}s vs an estimated "
        f"{independent_estimate:.4f}s for {count} independent scans"
    )
