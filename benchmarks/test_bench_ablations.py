"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper experiments; they quantify the engineering decisions the
reproduction makes so a downstream user knows what each one buys:

* **A1 — shared single pass for many queries** (``MultiQueryEvaluator``):
  since E1 shows parsing dominates, serving N standing queries from one scan
  should cost far less than N separate scans.
* **A2 — parser back-end**: the from-scratch pure-Python tokenizer versus the
  stdlib expat bridge (both produce identical events; differential tests
  guarantee identical answers).
* **A3 — chunk size**: streaming chunk granularity versus throughput, to
  justify the 64 KiB default.
* **A4 — eager emission**: the optional optimisation that emits solutions as
  soon as all remaining ancestors are unconstrained, versus the paper's
  strictly lazy root-level emission.  Answers must not change; latency and
  peak candidate counts should drop for root-unconstrained queries.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.bench.metrics import time_parse_only
from repro.bench.reporting import print_report, render_table
from repro.bench.workloads import PROTEIN_PAPER_QUERY, PROTEIN_QUERIES
from repro.core.engine import TwigMEvaluator
from repro.core.multi import MultiQueryEvaluator
from repro.xmlstream.tokenizer import tokenize


@pytest.mark.benchmark(group="A1-multi-query")
class TestSharedPassBenchmarks:
    def test_five_queries_shared_single_pass(self, benchmark, protein_document):
        def shared():
            evaluator = MultiQueryEvaluator()
            for index, query in enumerate(PROTEIN_QUERIES):
                evaluator.subscribe(query, name=f"q{index}")
            return evaluator.evaluate(protein_document)

        results = benchmark(shared)
        assert len(results) == len(PROTEIN_QUERIES)

    def test_five_queries_separate_passes(self, benchmark, protein_document):
        def separate():
            return [
                TwigMEvaluator(query).evaluate(protein_document) for query in PROTEIN_QUERIES
            ]

        results = benchmark(separate)
        assert len(results) == len(PROTEIN_QUERIES)


def test_a1_shared_pass_table(benchmark, protein_document):
    """Shared pass must beat per-query passes, and answers must be identical.

    The separate passes are fed the document as a chunk iterable so both
    strategies run through the same streaming event pipeline — the ablation
    isolates scan sharing, not the fused in-memory fast path (which only
    single-query ``evaluate`` over a ``str`` engages).
    """
    start = time.perf_counter()
    separate_results = [
        TwigMEvaluator(query).evaluate(iter([protein_document]))
        for query in PROTEIN_QUERIES
    ]
    separate_seconds = time.perf_counter() - start

    def shared():
        evaluator = MultiQueryEvaluator()
        for index, query in enumerate(PROTEIN_QUERIES):
            evaluator.subscribe(query, name=PROTEIN_QUERIES[index])
        return evaluator.evaluate(protein_document)

    start = time.perf_counter()
    shared_results = benchmark.pedantic(shared, rounds=1, iterations=1)
    shared_seconds = time.perf_counter() - start

    rows = [
        {
            "strategy": "one pass per query",
            "queries": len(PROTEIN_QUERIES),
            "total_s": round(separate_seconds, 3),
        },
        {
            "strategy": "shared single pass (MultiQueryEvaluator)",
            "queries": len(PROTEIN_QUERIES),
            "total_s": round(shared_seconds, 3),
            "speedup": round(separate_seconds / max(shared_seconds, 1e-9), 2),
        },
    ]
    print_report(render_table(rows, title="A1: five protein queries — shared pass vs separate passes"))

    for query, individual in zip(PROTEIN_QUERIES, separate_results):
        assert shared_results[query].keys() == individual.keys()
    # Sharing the scan must be materially faster than scanning once per query.
    assert shared_seconds < separate_seconds * 0.8


@pytest.mark.benchmark(group="A2-parser-backend")
class TestParserBackendBenchmarks:
    @pytest.mark.parametrize("parser", ["native", "expat"])
    def test_parse_only(self, benchmark, protein_document, parser):
        benchmark(lambda: time_parse_only(protein_document, parser=parser))

    @pytest.mark.parametrize("parser", ["native", "expat"])
    def test_end_to_end(self, benchmark, protein_document, parser):
        result = benchmark(
            lambda: TwigMEvaluator(PROTEIN_PAPER_QUERY).evaluate(protein_document, parser=parser)
        )
        assert len(result) > 0


def test_a2_parser_backend_table(benchmark, protein_document):
    """Both back-ends answer identically; report their relative cost."""
    rows = []
    keys = {}
    for parser in ("native", "expat"):
        start = time.perf_counter()
        result = TwigMEvaluator(PROTEIN_PAPER_QUERY).evaluate(protein_document, parser=parser)
        elapsed = time.perf_counter() - start
        keys[parser] = result.keys()
        rows.append(
            {
                "parser": parser,
                "total_s": round(elapsed, 3),
                "solutions": len(result),
                "mb_per_s": round(
                    len(protein_document.encode("utf-8")) / (1024 * 1024) / elapsed, 2
                ),
            }
        )
    benchmark(lambda: time_parse_only(protein_document, parser="expat"))
    print_report(render_table(rows, title="A2: parser back-end ablation (identical answers required)"))
    assert keys["native"] == keys["expat"]


def test_a3_chunk_size_table(benchmark, protein_document):
    """Throughput as a function of streaming chunk size (native tokenizer).

    The document is wrapped in a ``StringIO`` so evaluation actually streams
    in ``chunk_size`` pieces — handing the ``str`` directly would engage the
    fused in-memory fast path, which ignores chunking entirely.
    """
    rows = []
    for chunk_size in (4 * 1024, 64 * 1024, 1024 * 1024):
        start = time.perf_counter()
        result = TwigMEvaluator(PROTEIN_PAPER_QUERY).evaluate(
            io.StringIO(protein_document), parser="native", chunk_size=chunk_size
        )
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "chunk_kib": chunk_size // 1024,
                "total_s": round(elapsed, 3),
                "solutions": len(result),
            }
        )
    benchmark.pedantic(
        lambda: TwigMEvaluator(PROTEIN_PAPER_QUERY).evaluate(
            io.StringIO(protein_document), parser="native", chunk_size=64 * 1024
        ),
        rounds=1,
        iterations=1,
    )
    print_report(render_table(rows, title="A3: chunk size vs end-to-end time (native tokenizer)"))
    # All chunk sizes produce the same number of answers.
    assert len({row["solutions"] for row in rows}) == 1
    # The default (64 KiB) is never dramatically worse than the best setting.
    best = min(row["total_s"] for row in rows)
    default = next(row["total_s"] for row in rows if row["chunk_kib"] == 64)
    assert default <= best * 2 + 0.05


@pytest.mark.benchmark(group="A4-eager-emission")
class TestEagerEmissionBenchmarks:
    @pytest.mark.parametrize("eager", [False, True], ids=["lazy", "eager"])
    def test_root_unconstrained_query(self, benchmark, newsfeed_document, eager):
        query = "/feed//update[quote]"

        def run():
            return TwigMEvaluator(query, eager_emission=eager).evaluate(newsfeed_document)

        result = benchmark(run)
        assert len(result) > 0


def test_a4_eager_emission_table(benchmark, newsfeed_document):
    """Eager emission: same answers, earlier first result, fewer live candidates."""
    query = "/feed//update[quote]"
    events = list(tokenize(newsfeed_document))

    rows = []
    details = {}
    for eager in (False, True):
        evaluator = TwigMEvaluator(query, eager_emission=eager)
        first_emission_event = None
        start = time.perf_counter()
        for index, event in enumerate(events):
            if evaluator.feed(event) and first_emission_event is None:
                first_emission_event = index
        elapsed = time.perf_counter() - start
        result = evaluator.finish()
        details[eager] = result.keys()
        rows.append(
            {
                "mode": "eager" if eager else "lazy (paper)",
                "solutions": len(result),
                "total_s": round(elapsed, 3),
                "first_emission_event": first_emission_event,
                "stream_events": len(events),
                "peak_candidates": evaluator.statistics.peak_candidate_count,
            }
        )
    benchmark.pedantic(
        lambda: TwigMEvaluator(query, eager_emission=True).evaluate(newsfeed_document),
        rounds=1,
        iterations=1,
    )
    print_report(render_table(rows, title="A4: eager emission vs lazy root-level emission"))

    lazy_row, eager_row = rows
    assert details[False] == details[True]
    assert eager_row["first_emission_event"] < lazy_row["first_emission_event"]
    assert eager_row["peak_candidates"] <= lazy_row["peak_candidates"]
