"""E3 — TwigM (polynomial) vs naive enumeration (exponential) in query size.

Paper claim (Features 1 & 4, Section 3.2): explicitly enumerating pattern
matches costs ``O(|D|^|Q|)`` in the worst case, while TwigM's compact
encoding achieves ``O(|D|·|Q|·(|Q|+B))``.

Reproduced shape: on a document where ``section`` nests 10+ levels deep, the
query family ``//section[author]//section[author]…`` (k steps) drives the
naive evaluator's explicit match-record count (and its time) up super-linearly
with every added step, while TwigM's work counter grows gently.  The series
table printed at the end is the stand-in for the paper's query-size scaling
figure; both engines must keep agreeing on the answers.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.naive import NaiveStreamingEvaluator
from repro.bench.reporting import print_report, render_table
from repro.core.engine import TwigMEvaluator
from repro.xpath.generator import linear_descendant_query

MAX_STEPS = 5
NAIVE_MAX_STEPS = 5


def _query(steps: int) -> str:
    return linear_descendant_query("section", steps, predicate_tag="author")


@pytest.mark.benchmark(group="E3-query-size")
class TestQuerySizeBenchmarks:
    @pytest.mark.parametrize("steps", [1, 3, 5])
    def test_twigm_scaling(self, benchmark, recursive_document, steps):
        query = _query(steps)

        def run():
            return TwigMEvaluator(query).evaluate(recursive_document)

        result = benchmark(run)
        assert result is not None

    @pytest.mark.parametrize("steps", [1, 3, 5])
    def test_naive_scaling(self, benchmark, recursive_document, steps):
        query = _query(steps)

        def run():
            return NaiveStreamingEvaluator(query).evaluate(recursive_document)

        result = benchmark(run)
        assert result is not None


def test_e3_scaling_series(benchmark, recursive_document):
    """Print the per-step series and assert the polynomial/exponential split."""
    # Timed kernel for --benchmark-only runs: the largest TwigM query.
    benchmark(lambda: TwigMEvaluator(_query(MAX_STEPS)).evaluate(recursive_document))
    rows = []
    for steps in range(1, MAX_STEPS + 1):
        query = _query(steps)

        twigm = TwigMEvaluator(query)
        start = time.perf_counter()
        twigm_result = twigm.evaluate(recursive_document)
        twigm_seconds = time.perf_counter() - start

        row = {
            "steps": steps,
            "twigm_s": round(twigm_seconds, 4),
            "twigm_work": twigm.statistics.work_units(),
            "twigm_peak_entries": twigm.statistics.peak_stack_entries,
            "solutions": len(twigm_result),
        }
        if steps <= NAIVE_MAX_STEPS:
            naive = NaiveStreamingEvaluator(query)
            start = time.perf_counter()
            naive_result = naive.evaluate(recursive_document)
            row["naive_s"] = round(time.perf_counter() - start, 4)
            row["naive_records"] = naive.statistics.records_created
            row["naive_peak_records"] = naive.statistics.peak_live_records
            row["agrees"] = naive_result.keys() == twigm_result.keys()
        rows.append(row)

    print_report(
        render_table(
            rows,
            title="E3: //section[author] x k on deeply recursive data — TwigM vs naive enumeration",
        )
    )

    # Correctness: both evaluators agree wherever the naive one ran.
    assert all(row.get("agrees", True) for row in rows)

    naive_records = [row["naive_records"] for row in rows if "naive_records" in row]
    twigm_work = [row["twigm_work"] for row in rows]

    # The naive evaluator's record count accelerates with every added step
    # (super-linear growth), which is the exponential blow-up in miniature.
    deltas = [b - a for a, b in zip(naive_records, naive_records[1:])]
    assert all(later >= earlier for earlier, later in zip(deltas, deltas[1:]))

    # TwigM's total work grows far slower than the naive record count: by the
    # largest query the naive evaluator stores many times more records than
    # TwigM performs operations.
    assert naive_records[-1] > 3 * twigm_work[-1]

    # TwigM's per-step growth stays roughly linear in the number of steps:
    # work(k) is bounded by k times the single-step work (polynomial bound).
    assert twigm_work[-1] <= twigm_work[0] * MAX_STEPS * 4
