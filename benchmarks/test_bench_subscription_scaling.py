"""M4 benchmarks: subscription-index scaling (prefix trie + containment).

The million-subscription axis of the motivating scenario: dispatch cost must
depend on the *interested* machines per tag, not the registered query count,
and a refinement family must collapse onto one anchor machine.  The timed
sweep lives in ``vitex bench subscriptions --json BENCH_subscriptions.json``;
these benchmarks keep a collect-time guard (``--benchmark-disable`` in CI)
plus the structural assertions that back the committed baseline table.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_subscription_scaling
from repro.bench.workloads import build_subscription_stream_document
from repro.core.multi import MultiQueryEvaluator
from repro.xpath.generator import refinement_family_queries

from conftest import SCALE

FAMILIES = 50


@pytest.fixture(scope="module")
def stream_document() -> str:
    return build_subscription_stream_document(
        hit_records=10,
        miss_records=int(400 * SCALE),
        families=FAMILIES,
        label_space=800,
        seed=9,
    )


def _register(count: int, sharing: bool) -> MultiQueryEvaluator:
    evaluator = MultiQueryEvaluator(
        collect_statistics=False, containment_sharing=sharing
    )
    evaluator.subscribe_many(
        refinement_family_queries(count, families=FAMILIES)
    )
    return evaluator


@pytest.mark.benchmark(group="subscription-scaling")
@pytest.mark.parametrize("sharing", [False, True], ids=["fingerprint", "containment"])
def test_dispatch_under_standing_subscriptions(benchmark, stream_document, sharing):
    evaluator = _register(2000, sharing)

    def run():
        evaluator.reset()
        return sum(1 for _ in evaluator.stream(stream_document, parser="pure"))

    delivered = benchmark(run)
    benchmark.extra_info["machines"] = evaluator.stats().machines
    benchmark.extra_info["delivered"] = delivered


def test_containment_sharing_collapses_machines(stream_document):
    """Acceptance: fewer machines and identical delivery vs fingerprint dedup."""
    baseline = _register(2000, False)
    shared = _register(2000, True)
    assert shared.stats().machines < baseline.stats().machines
    assert shared.stats().machines == FAMILIES  # one anchor per family
    results_baseline = baseline.evaluate(stream_document, parser="pure")
    results_shared = shared.evaluate(stream_document, parser="pure")
    assert {name: r.keys() for name, r in results_shared.items()} == {
        name: r.keys() for name, r in results_baseline.items()
    }


def test_quick_sweep_rows_are_parity_checked():
    """The M4 runner's own cross-mode delivery-parity check must hold."""
    rows = run_subscription_scaling(
        counts=(2000,),
        families=FAMILIES,
        hit_records=10,
        miss_records=200,
        label_space=800,
        measure_memory=False,
    )
    by_mode = {row["mode"]: row for row in rows}
    assert by_mode["containment"]["machines"] < by_mode["fingerprint"]["machines"]
    assert by_mode["containment"]["solutions"] == by_mode["fingerprint"]["solutions"]
    assert by_mode["containment"]["peak_fanout"] <= by_mode["fingerprint"]["peak_fanout"]
