"""E7 — incremental result production on long streams.

Paper requirement (Section 1): "it is desirable to incrementally produce and
distribute query results to end users before the data is completely
received."

Reproduced shape: on a stock-ticker stream whose first matching update
appears near the beginning, the time to the first emitted solution is a tiny
fraction of the time needed to consume the entire stream, and solutions keep
arriving throughout rather than all at the end.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import print_report, render_table
from repro.bench.runner import run_incremental_latency
from repro.core.engine import TwigMEvaluator
from repro.datasets.newsfeed import NewsFeedConfig, NewsFeedGenerator

from conftest import SCALE


@pytest.mark.benchmark(group="E7-incremental")
class TestIncrementalBenchmarks:
    def test_time_to_first_solution(self, benchmark, newsfeed_document):
        query = NewsFeedGenerator.CANONICAL_QUERY

        def first_solution():
            evaluator = TwigMEvaluator(query)
            for solution in evaluator.stream(newsfeed_document):
                return solution
            return None

        solution = benchmark(first_solution)
        assert solution is not None

    def test_full_stream_consumption(self, benchmark, newsfeed_document):
        query = NewsFeedGenerator.CANONICAL_QUERY

        def consume_all():
            return sum(1 for _ in TwigMEvaluator(query).stream(newsfeed_document))

        count = benchmark(consume_all)
        assert count > 0


def test_e7_latency_table(benchmark):
    """Print first-solution vs full-stream latency and emission spread."""
    updates = max(500, int(3000 * SCALE))
    row = benchmark.pedantic(
        lambda: run_incremental_latency(updates=updates, seed=14), rounds=1, iterations=1
    )
    generator = NewsFeedGenerator(NewsFeedConfig(updates=updates), seed=14)

    # Also measure how emissions spread over the stream: record the fraction
    # of the stream consumed when each quartile of the solutions had arrived.
    document = generator.text()
    evaluator = TwigMEvaluator(generator.CANONICAL_QUERY)
    emission_times = []
    start = time.perf_counter()
    for _ in evaluator.stream(document):
        emission_times.append(time.perf_counter() - start)
    total = time.perf_counter() - start
    quartiles = {}
    if emission_times:
        for name, fraction in (("q1", 0.25), ("median", 0.5), ("q3", 0.75)):
            index = min(len(emission_times) - 1, int(fraction * len(emission_times)))
            quartiles[f"emit_{name}_fraction"] = round(emission_times[index] / total, 3)

    row.update(quartiles)
    print_report(render_table([row], title="E7: incremental output latency (stock ticker stream)"))

    assert row["solutions"] == generator.expected_symbol_updates("ACME")
    # First solution arrives within a small fraction of total stream time.
    assert row["latency_fraction"] < 0.25
    # Solutions are spread across the stream, not bunched at the end.
    if "emit_median_fraction" in row:
        assert row["emit_median_fraction"] < 0.85
