"""M2 benchmarks: subscription-service end-to-end latency and throughput.

Everything the library benchmarks (M1) measure stops at the engine; M2
measures the whole service stack — asyncio server, wire protocol, bounded
outboxes, client decode — for a chunked live feed fanned out to concurrent
subscribers.  The acceptance bar from ISSUE 3: the service must sustain
**≥ 100 concurrent subscribers** with every expected solution either
delivered or explicitly counted as dropped (here: no drops at all, the
outboxes never fill at default bounds).

``vitex bench service --json BENCH_service.json`` records the committed
baseline (1 → 200 subscribers).
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_service_scaling

from conftest import SCALE


@pytest.mark.benchmark(group="service-scaling")
@pytest.mark.parametrize("subscribers", [1, 100])
def test_service_roundtrip(benchmark, subscribers):
    def run():
        return run_service_scaling(
            counts=(subscribers,), records=int(400 * SCALE)
        )[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row["subscribers"] == subscribers
    assert row["dropped"] == 0
    benchmark.extra_info.update(row)


def test_service_sustains_100_subscribers():
    """Acceptance: 100 concurrent subscribers, all solutions accounted for.

    ``run_service_scaling`` verifies delivered + dropped against the ground
    truth inside the driver and raises on a mismatch; this test additionally
    pins the acceptance bar: zero drops and positive throughput at 100
    subscribers.
    """
    row = run_service_scaling(counts=(100,), records=int(400 * SCALE))[0]
    assert row["subscribers"] == 100
    assert row["solutions"] > 0
    assert row["dropped"] == 0
    assert row["solutions_per_s"] > 0
    assert row["mean_latency_ms"] >= 0
