"""M5 benchmarks: the infinite-stream soak (flat memory, stable throughput).

The bounded-document experiments (E2) prove flat memory *within* one
document; M5 proves it *across* an unbounded stream of documents: one
:class:`~repro.core.docstream.DocumentStreamSession` with a live retention
spool and standing alert queries consumes a cycled ticker-document corpus
while ``tracemalloc`` current bytes and the process RSS high-water are
sampled at every sealed window.  ``run_soak`` raises
:class:`~repro.errors.BenchmarkError` if the post-warm-up memory curve
grows past tolerance or any steady window's throughput collapses — the
assertions ARE the benchmark.

``vitex bench soak --json BENCH_soak.json`` records the committed full
baseline (>=2M elements across >=1000 documents); the CI job runs
``vitex bench soak --quick --json BENCH_soak.quick.json`` against its own
committed quick baseline.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_soak

from conftest import SCALE

#: Scaled-down but structurally valid soak: warm-up outlasts the spool.
SOAK_KWARGS = dict(
    documents=int(120 * SCALE),
    entries_per_document=100,
    window_documents=20,
    retain_documents=16,
)


@pytest.mark.benchmark(group="soak")
def test_soak_stream(benchmark):
    def run():
        return run_soak(**SOAK_KWARGS)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    warmup, steady = rows
    assert warmup["phase"] == "warmup" and steady["phase"] == "steady"
    benchmark.extra_info.update(steady)


def test_soak_memory_stays_flat():
    """Acceptance: the enforced flatness assertions pass at soak sizes.

    ``run_soak`` raises on growth beyond tolerance, so reaching the row
    checks below means the flat-RSS claim held; the growth figures are also
    reported for the record.
    """
    rows = run_soak(**SOAK_KWARGS)
    steady = rows[1]
    assert steady["documents"] >= 80
    assert steady["matches"] > 0
    assert steady["rss_growth_pct"] <= 10.0
    assert steady["spool_bytes"] > 0
