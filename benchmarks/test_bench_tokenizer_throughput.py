"""E8 benchmarks: streaming-pipeline throughput (tokenizer and end-to-end).

The headline metric of the reproduction (the paper's claim is single-pass
streaming evaluation, so MB/s is what matters).  Four benchmark groups:

* tokenizer-only throughput of the bulk-scanning pure-Python tokenizer,
* tokenizer-only throughput of the direct expat backend,
* end-to-end ``//a[b]//c`` evaluation per backend (fused fast paths),
* end-to-end evaluation with statistics disabled (the no-op counter mode).

All run over the standard 2 MB tag-dense random-tree document, and a
correctness check asserts byte-identical result sets across backends.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import PIPELINE_QUERY, build_random_tree_document
from repro.core.engine import TwigMEvaluator
from repro.xmlstream.sax import event_batches

from conftest import SCALE


@pytest.fixture(scope="module")
def pipeline_document() -> str:
    """The standard pipeline workload document (~2 MB at scale 1.0)."""
    return build_random_tree_document(target_bytes=int(2 * 1024 * 1024 * SCALE), seed=42)


def _document_mb(document: str) -> float:
    return len(document.encode("utf-8")) / (1024 * 1024)


def _consume(document: str, backend: str) -> int:
    return sum(len(batch) for batch in event_batches(document, parser=backend))


@pytest.mark.benchmark(group="tokenizer-throughput")
@pytest.mark.parametrize("backend", ["pure", "expat"])
def test_tokenizer_throughput(benchmark, pipeline_document, backend):
    events = benchmark(lambda: _consume(pipeline_document, backend))
    assert events > 0
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["doc_mb"] = round(_document_mb(pipeline_document), 3)
    benchmark.extra_info["events"] = events


@pytest.mark.benchmark(group="pipeline-evaluate")
@pytest.mark.parametrize("backend", ["pure", "expat"])
def test_pipeline_evaluate_throughput(benchmark, pipeline_document, backend):
    def run():
        return TwigMEvaluator(PIPELINE_QUERY).evaluate(pipeline_document, parser=backend)

    results = benchmark(run)
    assert len(results) > 0
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["doc_mb"] = round(_document_mb(pipeline_document), 3)
    benchmark.extra_info["solutions"] = len(results)


@pytest.mark.benchmark(group="pipeline-evaluate-nostats")
@pytest.mark.parametrize("backend", ["pure", "expat"])
def test_pipeline_evaluate_nostats_throughput(benchmark, pipeline_document, backend):
    def run():
        evaluator = TwigMEvaluator(PIPELINE_QUERY, collect_statistics=False)
        return evaluator.evaluate(pipeline_document, parser=backend)

    results = benchmark(run)
    assert len(results) > 0
    benchmark.extra_info["backend"] = backend


def test_backends_agree_on_pipeline_document(pipeline_document):
    """Byte-identical result sets across the pure and expat backends."""
    pure = TwigMEvaluator(PIPELINE_QUERY).evaluate(pipeline_document, parser="pure")
    expat = TwigMEvaluator(PIPELINE_QUERY).evaluate(pipeline_document, parser="expat")
    nostats = TwigMEvaluator(PIPELINE_QUERY, collect_statistics=False).evaluate(
        pipeline_document, parser="pure"
    )
    assert pure.keys() == expat.keys()
    assert pure.keys() == nostats.keys()
    assert len(pure) > 0
