"""E2 — memory stability: engine state stays flat as the document grows.

Paper claim (Feature 3): the memory requirement of ViteX while processing
queries on the 75 MB Protein dataset is stable at 1 MB.

Reproduced shape: sweeping the synthetic protein dataset across document
sizes, the engine's live state (peak stack entries, peak candidates) and the
tracemalloc allocation peak of the streaming evaluation stay flat while the
document grows by an order of magnitude.  The series table printed at the end
is the stand-in for the paper's memory-over-time figure.
"""

from __future__ import annotations

import pytest

from repro.bench.metrics import measure_peak_memory
from repro.bench.reporting import print_report, render_table
from repro.bench.runner import run_memory_stability
from repro.bench.workloads import PROTEIN_PAPER_QUERY
from repro.core.engine import TwigMEvaluator
from repro.datasets.protein import ProteinConfig, ProteinDatabaseGenerator

from conftest import SCALE

# An 8x size span demonstrates the flat-memory shape; the absolute sizes are
# kept modest because every run here executes under tracemalloc (~3x slower).
SIZES_MB = tuple(size * SCALE for size in (0.25, 0.5, 1, 2))


@pytest.mark.benchmark(group="E2-memory")
def test_streaming_evaluation_fixed_size(benchmark):
    """Timing anchor for the memory sweep (1 MB document, streamed chunks)."""
    generator = ProteinDatabaseGenerator(
        ProteinConfig(target_bytes=int(1024 * 1024 * SCALE)), seed=11
    )

    def run():
        evaluator = TwigMEvaluator(PROTEIN_PAPER_QUERY)
        evaluator.evaluate(generator.chunks())
        return evaluator.statistics.peak_stack_entries

    peak = benchmark(run)
    assert peak > 0


def test_e2_memory_stability_series(benchmark):
    """Print the document-size sweep and assert the flat-memory shape."""
    rows = benchmark.pedantic(
        lambda: run_memory_stability(sizes_mb=SIZES_MB, measure_allocations=True),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        row["paper_memory_mb"] = "~1 (75 MB doc)"
    print_report(
        render_table(rows, title="E2: engine state vs document size (//ProteinEntry[reference]/@id)")
    )

    elements = [row["elements"] for row in rows]
    peak_entries = [row["peak_stack_entries"] for row in rows]
    peak_candidates = [row["peak_candidates"] for row in rows]
    allocations = [row["peak_alloc_mb"] for row in rows]

    # The documents really do grow...
    assert elements[-1] > 4 * elements[0]
    # ...but the live engine state does not.
    assert max(peak_entries) <= min(peak_entries) + 2
    assert max(peak_candidates) <= min(peak_candidates) + 2
    # Peak allocations of the streaming run stay within a small constant
    # budget (chunk buffers + stacks), far below the document size, and do
    # not scale with it.  Allow generous slack for allocator noise.
    assert max(allocations) < 8.0
    assert allocations[-1] < allocations[0] * 3 + 1.0


def test_e2_memory_peak_is_small_absolute(benchmark):
    """The paper's '1 MB' claim, adapted: peak allocation stays in single-digit MB."""
    generator = ProteinDatabaseGenerator(
        ProteinConfig(target_bytes=int(1024 * 1024 * SCALE)), seed=11
    )

    def run():
        evaluator = TwigMEvaluator(PROTEIN_PAPER_QUERY)
        evaluator.evaluate(generator.chunks())
        return evaluator

    evaluator, memory = benchmark.pedantic(lambda: measure_peak_memory(run), rounds=1, iterations=1)
    assert evaluator.statistics.solutions_distinct > 0
    assert memory.peak_megabytes < 8.0
