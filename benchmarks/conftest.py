"""Shared fixtures for the benchmark suite.

Datasets are generated once per session and cached as strings so that
pytest-benchmark timing loops measure query evaluation, not data generation.
Sizes are chosen so the whole suite finishes in a few minutes on a laptop
while still being large enough for the shapes (flat memory, parse-dominated
time, exponential naive blow-up) to be visible.  The EXPERIMENTS.md tables
were produced with these defaults; scale them up via the VITEX_BENCH_SCALE
environment variable to stress the engine harder.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets.newsfeed import NewsFeedConfig, NewsFeedGenerator  # noqa: E402
from repro.datasets.protein import ProteinConfig, ProteinDatabaseGenerator  # noqa: E402
from repro.datasets.recursive import RecursiveBookGenerator, RecursiveConfig  # noqa: E402

#: Multiplier applied to every dataset size (default 1.0 ≈ quick laptop run).
SCALE = float(os.environ.get("VITEX_BENCH_SCALE", "1.0"))


def pytest_configure(config):
    """Trim pytest-benchmark's defaults so tier-1 stays under ~90 s.

    The default 5 rounds × 1 s max-time per benchmark put the seed suite
    near 190 s of wall clock without improving the measurements for the
    multi-hundred-millisecond operations benchmarked here.  Only the
    defaults are overridden — explicit ``--benchmark-*`` flags win.
    """
    option = config.option
    if getattr(option, "benchmark_min_rounds", None) == 5:
        option.benchmark_min_rounds = 1
    if getattr(option, "benchmark_max_time", None) == 1.0:
        option.benchmark_max_time = 0.25
    if getattr(option, "benchmark_calibration_precision", None) == 10:
        option.benchmark_calibration_precision = 5


def pytest_report_header(config):
    return f"vitex benchmarks: dataset scale factor {SCALE}"


@pytest.fixture(scope="session")
def protein_document() -> str:
    """A ~2 MB (at scale 1.0) synthetic protein database document."""
    target = int(2 * 1024 * 1024 * SCALE)
    return ProteinDatabaseGenerator(ProteinConfig(target_bytes=target), seed=11).text()


@pytest.fixture(scope="session")
def recursive_document() -> str:
    """A deeply recursive document where section/table nest 10 levels deep."""
    depth = max(6, int(10 * SCALE))
    return RecursiveBookGenerator(
        RecursiveConfig(
            section_depth=depth,
            table_depth=4,
            section_groups=2,
            cells_per_table=2,
            author_probability=1.0,
            position_probability=1.0,
            noise_per_section=0,
        ),
        seed=21,
    ).text()


@pytest.fixture(scope="session")
def newsfeed_document() -> str:
    """A stock/news stream with a few thousand updates."""
    updates = int(3000 * SCALE)
    return NewsFeedGenerator(NewsFeedConfig(updates=max(200, updates)), seed=14).text()
