"""E5 — "works efficiently in practice on a variety of queries and datasets".

Paper claim (Feature 5): ViteX is efficient across a variety of queries and
datasets, not just the headline protein query.

Reproduced shape: the canned query suite (5 protein + 5 recursive + 5 auction
+ 3 news queries) runs over all four synthetic datasets; every query finishes
with sane throughput, answers are produced for (almost) every query, and the
TwigM overhead over a bare parse remains bounded across the board.  The table
printed at the end is the per-query row set the paper summarises verbally.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import print_report, render_table
from repro.bench.runner import run_query_variety
from repro.bench.workloads import WORKLOADS, get_workload
from repro.core.engine import TwigMEvaluator

from conftest import SCALE

VARIETY_SCALE = 0.4 * SCALE


@pytest.mark.benchmark(group="E5-variety")
class TestRepresentativeQueryBenchmarks:
    """One pytest-benchmark target per dataset (its first canned query)."""

    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    def test_first_query_of_each_workload(self, benchmark, workload_name):
        workload = get_workload(workload_name)
        document = workload.dataset(VARIETY_SCALE).text()
        query = workload.queries[0]

        def run():
            return TwigMEvaluator(query).evaluate(document)

        result = benchmark(run)
        assert result is not None


def test_e5_query_variety_table(benchmark):
    """Print the full (dataset × query) matrix and check aggregate shape."""
    rows = benchmark.pedantic(
        lambda: run_query_variety(scale=VARIETY_SCALE, parser="native"), rounds=1, iterations=1
    )
    print_report(render_table(rows, title="E5: query variety across datasets"))

    assert {row["dataset"] for row in rows} == set(WORKLOADS)
    # Every run terminated and was measured.
    assert all(row["total_s"] >= 0 for row in rows)
    # Most queries find answers (a query suite that returns nothing would not
    # exercise candidate bookkeeping at all).
    with_answers = sum(1 for row in rows if row["solutions"] > 0)
    assert with_answers >= len(rows) - 2
    # Throughput stays within one order of magnitude across queries on the
    # same dataset — no query hits a pathological slow path.
    by_dataset = {}
    for row in rows:
        by_dataset.setdefault(row["dataset"], []).append(row["throughput_mb_s"])
    for dataset, throughputs in by_dataset.items():
        assert max(throughputs) / max(min(throughputs), 1e-9) < 30, dataset
