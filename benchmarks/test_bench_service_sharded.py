"""M3 benchmarks: multi-worker sharded service scaling.

M2 measures the single-process service; M3 measures the same workload with
subscription matching fanned out across worker *processes* —
:class:`repro.service.sharding.ShardedServiceServer` feeding every worker
over pipes and routing each subscription's solutions back through the
front.  Every worker count runs the identical document and subscriber set,
so the ``speedup`` column is a clean same-machine ratio of walls
(``workers=1`` is the plain single-process server, doubling as the
protocol-parity anchor), and each sharded count runs once per shard mode:
``events`` (the front parses once and broadcasts binary event frames,
worker protocol v2) and ``broadcast`` (raw-XML fan-out, every worker
re-parses).

On a single-core host expect speedup ≤ 1 in broadcast mode — N workers
serialize N× the parse work; events mode pays the parse once regardless of
N, which the ``total_cpu_s`` column makes visible even when walls tie.
The committed baseline (``vitex bench service --workers 1,2,4 --json
BENCH_service_sharded.json``) gates on "no worse than the single-core
ratio", which multi-core runners clear with margin.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_service_sharded_scaling

from conftest import SCALE


@pytest.mark.benchmark(group="service-sharded")
@pytest.mark.parametrize("workers,mode", [(1, "single"), (2, "events"), (2, "broadcast")])
def test_sharded_service_roundtrip(benchmark, workers, mode):
    def run():
        rows = run_service_sharded_scaling(
            workers=(workers,),
            records=int(1500 * SCALE),
            shard_modes=(mode,) if mode != "single" else ("events",),
        )
        # rows[0] is always the workers=1 anchor; the requested
        # (workers, mode) row is the one we benchmark.
        return next(
            row
            for row in rows
            if row["workers"] == workers and (workers == 1 or row["mode"] == mode)
        )

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row["workers"] == workers
    assert row["dropped"] == 0
    assert row["total_cpu_s"] > 0
    benchmark.extra_info.update(row)


def test_sharded_sweep_accounts_for_every_solution():
    """Acceptance: every (workers, mode) combination delivers the identical
    solution count.

    ``run_service_sharded_scaling`` already raises when delivered + dropped
    misses the string-count ground truth for *any* worker count; this test
    pins the sweep shape — a workers=1 baseline row, one row per shard mode
    at workers=2, speedup defined relative to the baseline, zero drops and
    CPU accounting throughout.
    """
    rows = run_service_sharded_scaling(workers=(1, 2), records=int(1500 * SCALE))
    assert [(row["workers"], row["mode"]) for row in rows] == [
        (1, "single"),
        (2, "events"),
        (2, "broadcast"),
    ]
    assert rows[0]["speedup"] == 1.0
    assert all(row["dropped"] == 0 for row in rows)
    assert len({row["solutions"] for row in rows}) == 1
    assert all(row["total_cpu_s"] > 0 for row in rows)


def test_events_mode_spends_less_worker_cpu_than_broadcast():
    """The tentpole claim: at workers=2, parse-once events mode burns
    measurably less total CPU per delivered solution than raw-XML
    broadcast on the same workload (the broadcast pool parses the document
    twice, the events pool zero times).

    The document must be large enough that per-document parse work clears
    the fixed pool cost (interpreter spawn is ~0.2 CPU-s per worker) and
    the 10 ms ``os.times()`` tick; 12000 records (the committed-sweep
    size) separates the modes by 6-9% in isolation.  Under a loaded host
    contention inflates individual runs, so we keep the per-mode *minimum*
    over up to three sweeps — noise only ever adds CPU — and stop at the
    first sweep that shows the gap.
    """
    best: dict = {}
    for _ in range(3):
        rows = run_service_sharded_scaling(workers=(2,), records=int(12000 * SCALE))
        for row in rows:
            if row["workers"] == 2:
                cpu = row["cpu_ms_per_solution"]
                best[row["mode"]] = min(best.get(row["mode"], cpu), cpu)
        if best["events"] < best["broadcast"]:
            break
    assert best["events"] < best["broadcast"]
