"""M3 benchmarks: multi-worker sharded service scaling.

M2 measures the single-process service; M3 measures the same workload with
subscription matching fanned out across worker *processes* —
:class:`repro.service.sharding.ShardedServiceServer` broadcasting the
document to every worker over pipes and routing each subscription's
solutions back through the front.  Every worker count runs the identical
document and subscriber set, so the ``speedup`` column is a clean
same-machine ratio of walls (``workers=1`` is the plain single-process
server, doubling as the protocol-parity anchor).

On a single-core host expect speedup ≤ 1 — N workers serialize N× the
parse work; the scaling headroom only shows with real cores.  The committed
baseline (``vitex bench service --workers 1,2,4 --json
BENCH_service_sharded.json``) therefore gates on "no worse than the
single-core ratio", which multi-core runners clear with margin.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_service_sharded_scaling

from conftest import SCALE


@pytest.mark.benchmark(group="service-sharded")
@pytest.mark.parametrize("workers", [1, 2])
def test_sharded_service_roundtrip(benchmark, workers):
    def run():
        rows = run_service_sharded_scaling(
            workers=(workers,), records=int(1500 * SCALE)
        )
        return rows[-1]  # the requested count (rows[0] is the workers=1 anchor)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row["workers"] == workers
    assert row["dropped"] == 0
    benchmark.extra_info.update(row)


def test_sharded_sweep_accounts_for_every_solution():
    """Acceptance: 1 and 2 workers deliver the identical solution count.

    ``run_service_sharded_scaling`` already raises when delivered + dropped
    misses the string-count ground truth for *any* worker count; this test
    pins the sweep shape — a workers=1 baseline row, speedup defined
    relative to it, zero drops throughout.
    """
    rows = run_service_sharded_scaling(workers=(1, 2), records=int(1500 * SCALE))
    assert [row["workers"] for row in rows] == [1, 2]
    assert rows[0]["speedup"] == 1.0
    assert all(row["dropped"] == 0 for row in rows)
    assert rows[0]["solutions"] == rows[1]["solutions"]
