#!/usr/bin/env python3
"""Recursive documents: watching the exponential match space get pruned.

Section 1 of the paper explains why streaming XPath is hard: on recursive
data a single XML node can have exponentially many pattern matches, and
predicate satisfaction is only known later in the stream.  This example makes
that concrete:

* it generates documents where ``section`` nests deeper and deeper,
* runs the query family ``//section[author]//section[author]...`` with both
  the TwigM engine (via :class:`repro.Engine`) and the naive
  match-enumerating baseline,
* prints how many explicit pattern matches the naive approach stores versus
  how many stack entries TwigM needs — the polynomial/exponential separation
  that is the paper's core claim.

Run it with ``python examples/recursive_documents.py [--depth 10] [--max-steps 5]``.
"""

from __future__ import annotations

import argparse
import time

from repro import Engine, Query
from repro.baselines import NaiveStreamingEvaluator
from repro.bench.reporting import render_table
from repro.datasets import RecursiveBookGenerator, RecursiveConfig
from repro.xpath import linear_descendant_query


def build_document(depth: int) -> str:
    """A document whose <section> elements nest ``depth`` levels deep."""
    generator = RecursiveBookGenerator(
        RecursiveConfig(
            section_depth=depth,
            table_depth=3,
            section_groups=1,
            cells_per_table=1,
            author_probability=1.0,
            position_probability=1.0,
            noise_per_section=0,
        ),
        seed=21,
    )
    return generator.text()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--depth", type=int, default=10, help="section nesting depth")
    parser.add_argument("--max-steps", type=int, default=5, help="largest query size (steps)")
    args = parser.parse_args()

    document = build_document(args.depth)
    print(f"Document: sections nested {args.depth} deep ({len(document)} characters)\n")

    rows = []
    for steps in range(1, args.max_steps + 1):
        query = linear_descendant_query("section", steps, predicate_tag="author")

        with Engine() as twigm:
            subscription = twigm.subscribe(Query(query))
            start = time.perf_counter()
            twigm_result = twigm.evaluate(document)[subscription.name]
            twigm_seconds = time.perf_counter() - start
            twigm_pushes = twigm.statistics()[subscription.name]["pushes"]

        naive = NaiveStreamingEvaluator(query)
        start = time.perf_counter()
        naive_result = naive.evaluate(document)
        naive_seconds = time.perf_counter() - start

        assert naive_result.keys() == twigm_result.keys(), "engines disagree!"

        rows.append(
            {
                "steps": steps,
                "query": query if steps <= 3 else f"//section[author] x {steps}",
                "solutions": len(twigm_result),
                "twigm_entries": twigm_pushes,
                "twigm_s": round(twigm_seconds, 4),
                "naive_records": naive.statistics.records_created,
                "naive_s": round(naive_seconds, 4),
            }
        )

    print(render_table(rows, title="TwigM stack entries vs naive explicit pattern matches"))
    print()
    last = rows[-1]
    ratio = last["naive_records"] / max(1, last["twigm_entries"])
    print(f"At {last['steps']} steps the naive evaluator stores {last['naive_records']} explicit")
    print(f"pattern matches where TwigM pushes only {last['twigm_entries']} stack entries "
          f"({ratio:.0f}x fewer).")
    print("Increase --depth to watch the gap grow exponentially while TwigM stays flat.")


if __name__ == "__main__":
    main()
