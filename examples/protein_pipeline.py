#!/usr/bin/env python3
"""Protein database pipeline: the paper's headline experiment, end to end.

The paper's Feature 5 reports that ``//ProteinEntry[reference]/@id`` over the
75 MB Georgetown Protein Sequence Database takes 6.02 seconds, 4.43 of which
is SAX parsing, with memory stable at about 1 MB (Feature 3).  This example
rebuilds that experiment on the synthetic protein dataset:

* generate a protein database of a chosen size (default 4 MB, scale with
  ``--size-mb``),
* run the paper's query plus a few variants over it with a single-query
  :class:`repro.Engine` per run,
* report the parse-time/total-time breakdown and the engine's peak state.

Run it with ``python examples/protein_pipeline.py [--size-mb 4]``.
"""

from __future__ import annotations

import argparse
import time

from repro import Engine, EngineConfig, Query
from repro.bench.metrics import measure_peak_memory, time_parse_only
from repro.bench.reporting import render_table
from repro.datasets import ProteinConfig, ProteinDatabaseGenerator

QUERIES = [
    "//ProteinEntry[reference]/@id",                      # the paper's query
    "//ProteinEntry[organism/source='Homo sapiens']/@id",  # value predicate
    "//reference//year/text()",                            # nested descendants
    "//ProteinEntry[feature and keyword]/protein",         # boolean predicate
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size-mb", type=float, default=4.0, help="document size in MB")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--parser", choices=EngineConfig.PARSERS, default="expat",
        help="SAX back-end (expat mirrors the paper's use of a C SAX parser)",
    )
    args = parser.parse_args()

    generator = ProteinDatabaseGenerator(
        ProteinConfig(target_bytes=int(args.size_mb * 1024 * 1024)), seed=args.seed
    )
    document_bytes = generator.size_bytes()
    print(f"Synthetic protein database: {document_bytes / (1024 * 1024):.2f} MB "
          f"(substitute for the paper's 75 MB PIR dataset)\n")

    # Parse-only pass: the baseline cost every streaming system pays.
    parse_seconds, event_count = time_parse_only(generator.chunks(), parser=args.parser)
    print(f"SAX parse only ({args.parser}): {parse_seconds:.2f} s "
          f"({event_count} events)\n")

    config = EngineConfig(parser=args.parser)
    rows = []
    for query in QUERIES:
        def run(query=query):
            engine = Engine(config)
            subscription = engine.subscribe(Query(query))
            started = time.perf_counter()
            results = engine.evaluate(generator.chunks())[subscription.name]
            stats = engine.statistics()[subscription.name]
            engine.close()
            return stats, results, time.perf_counter() - started

        (stats, results, elapsed), memory = measure_peak_memory(run)
        rows.append(
            {
                "query": query,
                "solutions": len(results),
                "total_s": round(elapsed, 2),
                "parse_s": round(parse_seconds, 2),
                "twigm_s": round(max(0.0, elapsed - parse_seconds), 2),
                "peak_state_entries": stats["peak_stack_entries"],
                "peak_alloc_mb": round(memory.peak_megabytes, 2),
            }
        )

    print(render_table(rows, title="Protein workload (paper: 6.02 s total / 4.43 s parse on 75 MB)"))
    print()
    print("Shape to observe: parsing dominates the end-to-end time for every query,")
    print("and the engine's peak state stays flat regardless of the document size —")
    print("re-run with a larger --size-mb to see the memory claim hold.")


if __name__ == "__main__":
    main()
