#!/usr/bin/env python3
"""Standing subscriptions: many queries, one pass, eager delivery.

This example combines the two extensions the reproduction adds on top of the
paper's single-query engine:

* :class:`repro.Engine` — subscribe any number of XPath queries and drive
  them all from **one** sequential scan of the stream (parsing dominates
  cost, so this is ~N× cheaper than N scans);
* ``eager_emission`` — the single-query evaluator can also be configured to
  emit results the moment all remaining constraints are trivially satisfied.

The scenario is the paper's motivating one: a personalised news/stock feed
where different consumers subscribe to different fragments of the stream.

Run it with ``python examples/subscriptions.py [--updates 3000]``.
"""

from __future__ import annotations

import argparse
import time

from repro import Engine, Query, evaluate, stream_evaluate
from repro.bench.reporting import render_table
from repro.datasets import NewsFeedConfig, NewsFeedGenerator

SUBSCRIPTIONS = {
    "acme-quotes": "//update[quote/@symbol='ACME']",
    "expensive-quotes": "//update/quote[price>400]/@symbol",
    "market-news": "//headline[@section='markets']/title/text()",
    "tech-news": "//headline[@section='technology']/title/text()",
    "high-volume": "//quote[volume>90000]/@symbol",
}


def run_shared_pass(generator: NewsFeedGenerator) -> dict:
    """Evaluate every subscription in a single scan of the feed."""
    delivery_log = {}

    def on_match(match) -> None:
        delivery_log[match.name] = delivery_log.get(match.name, 0) + 1

    with Engine() as engine:
        for name, query in SUBSCRIPTIONS.items():
            engine.subscribe(Query(query), callback=on_match, name=name)

        start = time.perf_counter()
        results = engine.evaluate(generator.chunks())
        elapsed = time.perf_counter() - start
    return {"results": results, "elapsed": elapsed, "delivered": delivery_log}


def run_separate_passes(generator: NewsFeedGenerator) -> float:
    """Reference: evaluate each subscription with its own scan."""
    start = time.perf_counter()
    for query in SUBSCRIPTIONS.values():
        evaluate(query, generator.chunks())
    return time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=14)
    args = parser.parse_args()

    generator = NewsFeedGenerator(NewsFeedConfig(updates=args.updates), seed=args.seed)
    print(f"Feed: {args.updates} updates, {len(SUBSCRIPTIONS)} standing subscriptions\n")

    shared = run_shared_pass(generator)
    separate_elapsed = run_separate_passes(generator)

    rows = [
        {
            "subscription": name,
            "query": query,
            "solutions": len(shared["results"][name]),
            "push_deliveries": shared["delivered"].get(name, 0),
        }
        for name, query in SUBSCRIPTIONS.items()
    ]
    print(render_table(rows, title="Per-subscription results (single shared scan)"))
    print()
    print(f"shared single scan : {shared['elapsed']:.2f} s")
    print(f"one scan per query : {separate_elapsed:.2f} s")
    print(f"speed-up           : {separate_elapsed / max(shared['elapsed'], 1e-9):.1f}x")
    print()

    # Eager emission demo: how early does the first ACME alert arrive?
    query = SUBSCRIPTIONS["acme-quotes"]
    for eager in (False, True):
        start = time.perf_counter()
        first = None
        for _ in stream_evaluate(query, generator.chunks(), eager_emission=eager):
            first = time.perf_counter() - start
            break
        label = "eager emission" if eager else "lazy (paper)  "
        print(f"first ACME alert with {label}: {first * 1000:.1f} ms into the stream")


if __name__ == "__main__":
    main()
