#!/usr/bin/env python3
"""Quickstart: evaluate the paper's walk-through query over Figure 1.

This example covers the three ways to drive the unified engine:

1. one-shot evaluation (``repro.evaluate``),
2. incremental streaming (``repro.stream_evaluate``),
3. the unified :class:`repro.Engine` facade: compile a :class:`repro.Query`,
   subscribe it, and push SAX events yourself — the same wiring the paper's
   architecture figure shows, behind one verb set.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import Engine, Query, evaluate, stream_evaluate
from repro.core.builder import build_machine
from repro.datasets import FIGURE_1_QUERY, FIGURE_1_XML
from repro.xmlstream import tokenize
from repro.xpath import analyze, query_to_string


def one_shot_evaluation() -> None:
    """Evaluate a query over a complete document and inspect the results."""
    print("=" * 70)
    print("1. One-shot evaluation")
    print("=" * 70)
    print("Document: the paper's Figure 1 (recursive book/section/table data)")
    print(f"Query:    {FIGURE_1_QUERY}")
    print()

    results = evaluate(FIGURE_1_QUERY, FIGURE_1_XML)
    print(results.describe())
    print()
    print("The only solution is the <cell> whose start tag is on line 8 —")
    print("exactly the walk-through result from Section 1 of the paper.")
    print()


def incremental_streaming() -> None:
    """Stream solutions as they become known, without buffering the document."""
    print("=" * 70)
    print("2. Incremental streaming")
    print("=" * 70)
    query = "//table[position]"
    print(f"Query: {query}")
    for solution in stream_evaluate(query, FIGURE_1_XML):
        print(f"  solution as soon as it is known: {solution.describe()}")
    print()


def unified_engine() -> None:
    """Wire the pieces by hand: Query -> Engine subscription -> push events."""
    print("=" * 70)
    print("3. Unified engine (Query -> Engine.subscribe -> push events)")
    print("=" * 70)

    # XPath parser + normalizer: expression -> compiled, fingerprinted Query.
    query = Query(FIGURE_1_QUERY)
    print("Normalized query twig:")
    print(query_to_string(query.tree))
    print()
    print(f"Query statistics:   {analyze(query.tree).as_dict()}")
    print(f"Query fingerprint:  {query.fingerprint[:60]}...")
    print()

    # TwigM builder: query twig -> machine (one node per query node).
    machine = build_machine(query)
    print(machine.describe())
    print()

    # One engine, one subscription, events pushed one at a time.
    with Engine() as engine:
        subscription = engine.subscribe(
            query,
            callback=lambda match: print(f"  emitted while streaming: {match.describe()}"),
        )
        for event in tokenize(FIGURE_1_XML):
            engine.feed(event)
        result = engine.results()[subscription.name]
        print()
        print(f"Total solutions: {len(result)}")
        print("Engine statistics:")
        for key, value in engine.statistics()[subscription.name].items():
            print(f"  {key:>22}: {value}")


def main() -> None:
    one_shot_evaluation()
    incremental_streaming()
    unified_engine()


if __name__ == "__main__":
    main()
