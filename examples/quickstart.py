#!/usr/bin/env python3
"""Quickstart: evaluate the paper's walk-through query over Figure 1.

This example covers the three ways to drive the engine:

1. one-shot evaluation (``repro.evaluate``),
2. incremental streaming (``repro.stream_evaluate``),
3. the explicit pipeline (compile the query, build the TwigM machine, feed
   SAX events yourself) — the same wiring the paper's architecture figure
   shows.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import TwigMEvaluator, compile_query, evaluate, stream_evaluate
from repro.core.builder import build_machine
from repro.datasets import FIGURE_1_QUERY, FIGURE_1_XML
from repro.xmlstream import tokenize
from repro.xpath import analyze, query_to_string


def one_shot_evaluation() -> None:
    """Evaluate a query over a complete document and inspect the results."""
    print("=" * 70)
    print("1. One-shot evaluation")
    print("=" * 70)
    print("Document: the paper's Figure 1 (recursive book/section/table data)")
    print(f"Query:    {FIGURE_1_QUERY}")
    print()

    results = evaluate(FIGURE_1_QUERY, FIGURE_1_XML)
    print(results.describe())
    print()
    print("The only solution is the <cell> whose start tag is on line 8 —")
    print("exactly the walk-through result from Section 1 of the paper.")
    print()


def incremental_streaming() -> None:
    """Stream solutions as they become known, without buffering the document."""
    print("=" * 70)
    print("2. Incremental streaming")
    print("=" * 70)
    query = "//table[position]"
    print(f"Query: {query}")
    for solution in stream_evaluate(query, FIGURE_1_XML):
        print(f"  solution as soon as it is known: {solution.describe()}")
    print()


def explicit_pipeline() -> None:
    """Wire the pieces by hand: parser → TwigM builder → TwigM machine."""
    print("=" * 70)
    print("3. Explicit pipeline (XPath parser -> TwigM builder -> TwigM machine)")
    print("=" * 70)

    # XPath parser + normalizer: expression -> query twig.
    query_tree = compile_query(FIGURE_1_QUERY)
    print("Normalized query twig:")
    print(query_to_string(query_tree))
    print()
    print(f"Query statistics: {analyze(query_tree).as_dict()}")
    print()

    # TwigM builder: query twig -> machine (one node per query node).
    machine = build_machine(query_tree)
    print(machine.describe())
    print()

    # SAX parser + TwigM machine: feed events one at a time.
    evaluator = TwigMEvaluator(query_tree)
    for event in tokenize(FIGURE_1_XML):
        for solution in evaluator.feed(event):
            print(f"  emitted while streaming: {solution.describe()}")
    result = evaluator.finish()
    print()
    print(f"Total solutions: {len(result)}")
    print("Engine statistics:")
    for key, value in evaluator.statistics.as_dict().items():
        print(f"  {key:>22}: {value}")


def main() -> None:
    one_shot_evaluation()
    incremental_streaming()
    explicit_pipeline()


if __name__ == "__main__":
    main()
