#!/usr/bin/env python3
"""Stock ticker monitoring: incremental results on a genuinely unbounded stream.

The paper motivates streaming XPath with stock market data and personalised
news: results must be delivered while the stream is still arriving — and the
stream never ends.  This example runs exactly that scenario on the
infinite-stream subsystem:

* stock/news feed *documents* are generated round after round (never
  materialised as one blob),
* several subscriptions are registered on one :class:`repro.Engine`,
* the documents are pushed through :meth:`Engine.document_stream` — the
  unbounded session with autodetected document boundaries — and each
  subscription prints its alerts the moment the matching update has been
  fully received, while per-document machine state resets keep memory flat
  no matter how long the feed runs.

Run a bounded simulation with ``python examples/stock_ticker.py
[--updates 2000] [--rounds 3]``, or keep it running until Ctrl-C with
``--forever`` — the exit banner then prints the sealed per-window stats
(docs/s, matches/s, peak live entries, latency percentiles).
"""

from __future__ import annotations

import argparse
import signal
import time

from repro import Engine, Match, Query
from repro.core.docstream import WindowStats
from repro.datasets import NewsFeedConfig, NewsFeedGenerator


class Alerts:
    """Per-subscription alert counters fed by the engine's Match callbacks."""

    def __init__(self, clock_start: float) -> None:
        self.clock_start = clock_start
        self.counts: dict = {}
        self.first_alert_at: dict = {}

    def __call__(self, match: Match) -> None:
        count = self.counts.get(match.name, 0) + 1
        self.counts[match.name] = count
        if match.name not in self.first_alert_at:
            self.first_alert_at[match.name] = time.perf_counter() - self.clock_start
        if count <= 5:
            print(f"  [{match.name}] alert #{count}: {match.solution.describe()}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=2000, help="feed updates per document")
    parser.add_argument("--rounds", type=int, default=3, help="documents to stream (ignored with --forever)")
    parser.add_argument(
        "--forever",
        action="store_true",
        help="stream documents until Ctrl-C, then print per-window stats",
    )
    parser.add_argument("--seed", type=int, default=14)
    args = parser.parse_args()

    queries = {
        "ACME quotes": Query("//update[quote/@symbol='ACME']"),
        "big movers": Query("//update/quote[price>450]/@symbol"),
        "market headlines": Query("//headline[@section='markets']/title/text()"),
    }

    horizon = "until Ctrl-C" if args.forever else f"for {args.rounds} round(s)"
    print(
        f"Streaming feed documents of {args.updates} updates {horizon} "
        f"with {len(queries)} subscriptions...\n"
    )

    start = time.perf_counter()
    alerts = Alerts(start)
    windows: list[WindowStats] = []
    interrupted = False
    expected_acme = 0
    with Engine() as engine:
        for name, query in queries.items():
            engine.subscribe(query, callback=alerts, name=name)
        # The unbounded session: document boundaries are autodetected at each
        # root close, machine state resets between documents (flat memory),
        # subscriptions and their counters survive across every document.
        session = engine.document_stream(
            window_documents=5, on_window=windows.append
        )

        def _sigint_handler(signum, frame):
            raise KeyboardInterrupt

        try:
            previous_handler = signal.signal(signal.SIGINT, _sigint_handler)
        except ValueError:  # not the main thread (e.g. under a test runner)
            previous_handler = None
        round_index = 0
        try:
            while args.forever or round_index < args.rounds:
                generator = NewsFeedGenerator(
                    NewsFeedConfig(updates=args.updates), seed=args.seed + round_index
                )
                expected_acme += generator.expected_symbol_updates("ACME")
                for chunk in generator.chunks():
                    session.feed_text(chunk)
                round_index += 1
        except KeyboardInterrupt:
            interrupted = True
        finally:
            if previous_handler is not None:
                signal.signal(signal.SIGINT, previous_handler)
        final = session.close()
        elapsed = time.perf_counter() - start

        print()
        state = "interrupted" if interrupted else "finished"
        print(
            f"Stream {state}: {final['documents']} document(s), "
            f"{final['elements']} element(s) in {elapsed:.2f} s\n"
        )
        print(f"{'subscription':<20} {'alerts':>8} {'first alert (s)':>16} {'of total time':>14}")
        print("-" * 62)
        for name in queries:
            first = alerts.first_alert_at.get(name)
            fraction = f"{100 * first / elapsed:.1f}%" if first is not None else "-"
            first_text = f"{first:.4f}" if first is not None else "-"
            print(f"{name:<20} {alerts.counts.get(name, 0):>8} {first_text:>16} {fraction:>14}")
        print()
        if windows:
            print("Per-window stream stats (5 documents per window):")
            print(
                f"{'window':>6} {'docs/s':>8} {'matches/s':>10} "
                f"{'peak live':>10} {'p95 ms':>8}"
            )
            for window in windows[-8:]:
                print(
                    f"{window.index:>6} {window.docs_per_s:>8.1f} "
                    f"{window.matches_per_s:>10.1f} "
                    f"{window.peak_live_entries:>10} "
                    f"{window.latency_p95_ms:>8.1f}"
                )
            print()
        print("Each subscription received its first alert after a small fraction of the")
        print("stream, and memory stayed flat across documents — the unbounded-stream")
        print("requirement from the paper's motivation.")

        if not interrupted:
            # Bounded runs are deterministic: the ACME subscription must have
            # caught every ACME update across every streamed document.
            actual = alerts.counts.get("ACME quotes", 0)
            assert actual == expected_acme, (
                f"expected {expected_acme} ACME alerts, got {actual}"
            )


if __name__ == "__main__":
    main()
