#!/usr/bin/env python3
"""Stock ticker monitoring: incremental results on an unbounded-style stream.

The paper motivates streaming XPath with stock market data and personalised
news: results must be delivered while the stream is still arriving.  This
example simulates exactly that with the unified facade:

* a stock/news feed is generated chunk by chunk (never materialised),
* several subscriptions are registered on one :class:`repro.Engine`,
* the chunks are pushed through an :meth:`Engine.open` session — the same
  push surface the network service uses — and each subscription prints its
  alerts the moment the matching update has been fully received, long
  before the feed ends.

Run it with ``python examples/stock_ticker.py [--updates 2000]``.
"""

from __future__ import annotations

import argparse
import time

from repro import Engine, Match, Query
from repro.datasets import NewsFeedConfig, NewsFeedGenerator


class Alerts:
    """Per-subscription alert counters fed by the engine's Match callbacks."""

    def __init__(self, clock_start: float) -> None:
        self.clock_start = clock_start
        self.counts: dict = {}
        self.first_alert_at: dict = {}

    def __call__(self, match: Match) -> None:
        count = self.counts.get(match.name, 0) + 1
        self.counts[match.name] = count
        if match.name not in self.first_alert_at:
            self.first_alert_at[match.name] = time.perf_counter() - self.clock_start
        if count <= 5:
            print(f"  [{match.name}] alert #{count}: {match.solution.describe()}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=2000, help="number of feed updates")
    parser.add_argument("--seed", type=int, default=14)
    args = parser.parse_args()

    generator = NewsFeedGenerator(NewsFeedConfig(updates=args.updates), seed=args.seed)
    queries = {
        "ACME quotes": Query("//update[quote/@symbol='ACME']"),
        "big movers": Query("//update/quote[price>450]/@symbol"),
        "market headlines": Query("//headline[@section='markets']/title/text()"),
    }

    print(f"Streaming a feed of {args.updates} updates with {len(queries)} subscriptions...\n")

    start = time.perf_counter()
    alerts = Alerts(start)
    chunk_count = 0
    with Engine() as engine:
        for name, query in queries.items():
            engine.subscribe(query, callback=alerts, name=name)
        session = engine.open()
        for chunk in generator.chunks():
            chunk_count += 1
            session.feed_text(chunk)
        session.finish()
        elapsed = time.perf_counter() - start

        print()
        print(f"Feed finished: {chunk_count} chunks in {elapsed:.2f} s\n")
        print(f"{'subscription':<20} {'alerts':>8} {'first alert (s)':>16} {'of total time':>14}")
        print("-" * 62)
        for name in queries:
            first = alerts.first_alert_at.get(name)
            fraction = f"{100 * first / elapsed:.1f}%" if first is not None else "-"
            first_text = f"{first:.4f}" if first is not None else "-"
            print(f"{name:<20} {alerts.counts.get(name, 0):>8} {first_text:>16} {fraction:>14}")
        print()
        print("Each subscription received its first alert after a small fraction of the")
        print("stream — the incremental-output requirement from the paper's motivation.")

        expected = generator.expected_symbol_updates("ACME")
        actual = alerts.counts.get("ACME quotes", 0)
        assert actual == expected, f"expected {expected} ACME alerts, got {actual}"


if __name__ == "__main__":
    main()
