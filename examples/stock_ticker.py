#!/usr/bin/env python3
"""Stock ticker monitoring: incremental results on an unbounded-style stream.

The paper motivates streaming XPath with stock market data and personalised
news: results must be delivered while the stream is still arriving.  This
example simulates exactly that:

* a stock/news feed is generated chunk by chunk (never materialised),
* several "subscriptions" (XPath queries) are registered,
* each subscription prints its alerts the moment the matching update has
  been fully received, long before the feed ends.

Run it with ``python examples/stock_ticker.py [--updates 2000]``.
"""

from __future__ import annotations

import argparse
import time

from repro import TwigMEvaluator
from repro.datasets import NewsFeedConfig, NewsFeedGenerator
from repro.xmlstream import StreamTokenizer


class Subscription:
    """One registered query plus its alert counter."""

    def __init__(self, name: str, query: str) -> None:
        self.name = name
        self.query = query
        self.evaluator = TwigMEvaluator(query)
        self.alerts = 0
        self.first_alert_at = None

    def feed(self, event, clock_start: float) -> None:
        for solution in self.evaluator.feed(event):
            self.alerts += 1
            if self.first_alert_at is None:
                self.first_alert_at = time.perf_counter() - clock_start
            if self.alerts <= 5:
                print(f"  [{self.name}] alert #{self.alerts}: {solution.describe()}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=2000, help="number of feed updates")
    parser.add_argument("--seed", type=int, default=14)
    args = parser.parse_args()

    generator = NewsFeedGenerator(NewsFeedConfig(updates=args.updates), seed=args.seed)
    subscriptions = [
        Subscription("ACME quotes", "//update[quote/@symbol='ACME']"),
        Subscription("big movers", "//update/quote[price>450]/@symbol"),
        Subscription("market headlines", "//headline[@section='markets']/title/text()"),
    ]

    print(f"Streaming a feed of {args.updates} updates with {len(subscriptions)} subscriptions...\n")

    tokenizer = StreamTokenizer()
    start = time.perf_counter()
    chunk_count = 0
    for chunk in generator.chunks():
        chunk_count += 1
        for event in tokenizer.feed(chunk):
            for subscription in subscriptions:
                subscription.feed(event, start)
    for event in tokenizer.close():
        for subscription in subscriptions:
            subscription.feed(event, start)
    elapsed = time.perf_counter() - start

    print()
    print(f"Feed finished: {chunk_count} chunks in {elapsed:.2f} s\n")
    print(f"{'subscription':<20} {'alerts':>8} {'first alert (s)':>16} {'of total time':>14}")
    print("-" * 62)
    for subscription in subscriptions:
        first = subscription.first_alert_at
        fraction = f"{100 * first / elapsed:.1f}%" if first is not None else "-"
        first_text = f"{first:.4f}" if first is not None else "-"
        print(f"{subscription.name:<20} {subscription.alerts:>8} {first_text:>16} {fraction:>14}")
    print()
    print("Each subscription received its first alert after a small fraction of the")
    print("stream — the incremental-output requirement from the paper's motivation.")

    expected = generator.expected_symbol_updates("ACME")
    actual = subscriptions[0].alerts
    assert actual == expected, f"expected {expected} ACME alerts, got {actual}"


if __name__ == "__main__":
    main()
