"""The :class:`Query` value object: compile once, pass anywhere.

Every surface of the system historically accepted a raw XPath source string
and compiled it at the point of use (engine registration, sessions, the
service ``subscribe`` frame, the CLI).  :class:`Query` lifts that into a
first-class value: it compiles once, carries the normalized twig and the
canonical fingerprint of :mod:`repro.xpath.fingerprint`, hashes and compares
by that fingerprint, and is accepted by every one of those surfaces in place
of the string.

The original source text travels with the object unchanged, so registering a
:class:`Query` round-trips the wire protocol and the checkpoint format
byte-identically to registering the string it was compiled from.
"""

from __future__ import annotations

from typing import Union

from ..xpath.ast import QueryTree
from ..xpath.fingerprint import query_fingerprint
from ..xpath.normalize import compile_query, query_to_string


class Query:
    """A compiled, fingerprinted XPath query (immutable value object).

    Parameters
    ----------
    query:
        An XPath expression string (compiled here, raising
        :class:`~repro.errors.XPathSyntaxError` /
        :class:`~repro.errors.UnsupportedFeatureError` exactly as
        :func:`repro.compile_query` would), an already-normalized
        :class:`~repro.xpath.ast.QueryTree`, or another :class:`Query`
        (copied without recompiling).

    Two queries are equal — and hash equal — iff their canonical
    fingerprints are equal, i.e. iff they drive structurally identical TwigM
    machines; surface-syntax variants (``//a[b]`` vs ``//a[ b ]``) collapse.
    """

    __slots__ = ("_source", "_tree", "_fingerprint")

    def __init__(self, query: Union[str, QueryTree, "Query"]) -> None:
        if isinstance(query, Query):
            source: str = query._source
            tree: QueryTree = query._tree
            fingerprint: str = query._fingerprint
        elif isinstance(query, str):
            source = query
            tree = compile_query(query)
            fingerprint = query_fingerprint(tree)
        elif isinstance(query, QueryTree):
            tree = query
            source = query.source or query_to_string(query)
            fingerprint = query_fingerprint(tree)
        else:
            raise TypeError(
                f"Query() expects an XPath string, a QueryTree or a Query, "
                f"not {type(query).__name__}"
            )
        self._source = source
        self._tree = tree
        self._fingerprint = fingerprint

    # ------------------------------------------------------------ attributes

    @property
    def source(self) -> str:
        """The query text exactly as compiled (round-trips wire/checkpoint)."""
        return self._source

    @property
    def tree(self) -> QueryTree:
        """The normalized query twig (treat as read-only)."""
        return self._tree

    @property
    def fingerprint(self) -> str:
        """Canonical fingerprint of the normalized twig (the identity)."""
        return self._fingerprint

    @property
    def normalized(self) -> str:
        """The normalized spelling of the query (one canonical rendering)."""
        return query_to_string(self._tree)

    # ------------------------------------------------------------ value-ness

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Query):
            return self._fingerprint == other._fingerprint
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, Query):
            return self._fingerprint != other._fingerprint
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._fingerprint)

    def __str__(self) -> str:
        return self._source

    def __repr__(self) -> str:
        return f"Query({self._source!r})"


__all__ = ["Query"]
