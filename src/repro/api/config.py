"""Engine configuration: one typed object instead of scattered string kwargs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Tuple

from ..xmlstream.reader import DEFAULT_CHUNK_SIZE
from ..xmlstream.sax import PARSER_BACKENDS


@dataclass(frozen=True)
class EngineConfig:
    """Configuration for :class:`repro.api.Engine` (immutable).

    Parameters
    ----------
    parser:
        Parser backend driving every evaluation and session opened by the
        engine: ``"pure"`` (alias ``"native"``, the from-scratch tokenizer)
        or ``"expat"`` (the C accelerated backend).  The same backend
        selection rules as the legacy per-call ``parser=`` kwarg, applied
        engine-wide; individual calls may still override.
    collect_statistics:
        When False, the per-machine :class:`~repro.core.statistics.\
EngineStatistics` counters are not maintained (a measurable saving on the
        per-event hot path; the subscription service runs with them off).
    chunk_size:
        Read-chunk size used when the engine pulls from files/streams.
    resumable:
        Whether sessions opened by the engine support ``snapshot()``.  Only
        meaningful for the expat backend, which must spool the raw chunk
        prefix to be able to rebuild its parser on restore; pass False to
        opt out of that memory cost.
    containment_sharing:
        Opt-in machine sharing across *containment* families: linear
        predicate-free path queries selecting the same output label run on
        one shared anchor machine plus per-subscriber residual checks
        (:mod:`repro.xpath.containment`), collapsing a refinement family of
        N machines to 1.  Per-subscription result sets, solution sets and
        ``delivered`` counts are identical; matches are delivered earlier
        (at the output element's end tag), so the exact interleaving of the
        match stream across subscriptions can differ from the default.
    """

    parser: str = "native"
    collect_statistics: bool = True
    chunk_size: int = DEFAULT_CHUNK_SIZE
    resumable: bool = True
    containment_sharing: bool = False

    #: The valid ``parser`` spellings, shared with the CLI ``--parser`` flag.
    PARSERS: ClassVar[Tuple[str, ...]] = PARSER_BACKENDS

    def __post_init__(self) -> None:
        if self.parser not in PARSER_BACKENDS:
            raise ValueError(
                f"unknown parser backend {self.parser!r}; "
                f"expected one of {PARSER_BACKENDS}"
            )
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")


__all__ = ["EngineConfig"]
