"""The unified local engine: subscriptions, documents, sessions, snapshots.

:class:`Engine` subsumes the two historical evaluator classes behind one
verb set:

* ``TwigMEvaluator`` (one query, one machine) — single-query use is just an
  engine with one subscription; the fused fast paths of
  :mod:`repro.core.fastpath` are selected by the same rules as before, so
  the facade adds no per-event cost;
* ``MultiQueryEvaluator`` (indexed subscriptions) — :class:`Engine` wraps
  one (see :attr:`Engine.core`) and inherits its sharing machinery: shared
  compilation, shared machines, label dispatch.

Delivery is uniform: sessions, :meth:`Engine.stream` and subscription
callbacks all speak :class:`~repro.core.results.Match`.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..core.docstream import DocumentStreamSession, WindowStats
from ..core.multi import EngineStats, MultiQueryEvaluator, Subscription
from ..core.results import Match, ResultSet, Solution
from ..core.session import StreamSession
from ..xmlstream.events import Event
from ..xmlstream.reader import TextSource
from ..xpath.ast import QueryTree
from .config import EngineConfig
from .query import Query

#: What the engine accepts wherever a query is expected.
QuerySource = Union[str, Query, QueryTree]

#: Push-style delivery callback: receives every match as it becomes known.
MatchCallback = Callable[[Match], None]


class Engine:
    """One local evaluation engine for any number of standing queries.

    Construct with an :class:`EngineConfig` (or field overrides)::

        engine = Engine(EngineConfig(parser="expat"))
        engine = Engine(parser="expat")            # equivalent shorthand

    then ``subscribe`` queries and drive a stream one of three ways:
    :meth:`evaluate` (whole document), :meth:`stream` (pull matches
    incrementally) or :meth:`open` (push chunks in as they arrive).
    """

    def __init__(self, config: Optional[EngineConfig] = None, **overrides: Any) -> None:
        base = config if config is not None else EngineConfig()
        if overrides:
            base = dataclasses.replace(base, **overrides)
        self._config = base
        self._engine = MultiQueryEvaluator(
            collect_statistics=base.collect_statistics,
            containment_sharing=base.containment_sharing,
        )

    # ------------------------------------------------------------ properties

    @property
    def config(self) -> EngineConfig:
        """The engine's immutable configuration."""
        return self._config

    @property
    def core(self) -> MultiQueryEvaluator:
        """The underlying :class:`~repro.core.multi.MultiQueryEvaluator`.

        Exposed for interop with code written against the legacy surface
        (checkpoint internals, diagnostics); the facade owns its lifecycle.
        """
        return self._engine

    @property
    def subscriptions(self) -> List[Subscription]:
        """The registered subscriptions, in registration order."""
        return self._engine.subscriptions

    @property
    def machine_count(self) -> int:
        """Number of distinct TwigM machines (≤ number of subscriptions).

        .. deprecated:: 1.4
           Use :meth:`stats` — ``engine.stats().machines`` — which also
           reports the sharing breakdown, trie size and dispatch fanout.
        """
        warnings.warn(
            "Engine.machine_count is deprecated; use Engine.stats().machines "
            "(EngineStats also carries the sharing breakdown)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._engine.machine_count

    def stats(self) -> EngineStats:
        """Typed snapshot of the engine's sharing structure.

        Returns an :class:`~repro.core.multi.EngineStats` (frozen): how many
        subscriptions are registered, how many machines actually run, how
        the difference splits between fingerprint dedup and containment
        sharing, and the dispatch-index shape (trie nodes, peak per-tag
        fanout).
        """
        return self._engine.stats()

    def __len__(self) -> int:
        return len(self._engine)

    # ---------------------------------------------------------- subscriptions

    def subscribe(
        self,
        query: QuerySource,
        callback: Optional[MatchCallback] = None,
        name: Optional[str] = None,
    ) -> Subscription:
        """Register a standing query; returns its subscription handle.

        ``query`` may be a source string, a compiled :class:`Query`, or a
        normalized query twig.  ``callback``, when given, receives a
        :class:`~repro.core.results.Match` the moment each solution is known
        (push-style delivery); results are always also collected for
        pull-style access via :meth:`results`.  Subscribing is allowed
        mid-stream with the engine's remainder-only semantics.
        """
        subscription = self._engine.subscribe(query, name=name)
        if callback is not None:
            subscription.callback = _adapt_callback(subscription.name, callback)
        return subscription

    def subscribe_many(
        self,
        pairs: Iterable[Union[QuerySource, Tuple[QuerySource, Optional[str]]]],
        callback: Optional[MatchCallback] = None,
    ) -> List[Subscription]:
        """Register a batch of queries in one pass; all-or-nothing.

        Each item is a query (source string / :class:`Query` / twig) or a
        ``(query, name)`` pair.  ``callback``, when given, receives
        :class:`~repro.core.results.Match` objects for every subscription
        in the batch.  Compilation, sharing analysis and trie interning are
        amortized across the batch; if any item fails, every subscription
        this call already made is rolled back before the error propagates.
        Over a remote connection, :meth:`RemoteEngine.subscribe_many
        <repro.api.remote.RemoteEngine.subscribe_many>` ships the whole
        batch in one wire frame.
        """
        subscriptions = self._engine.subscribe_many(pairs)
        if callback is not None:
            for subscription in subscriptions:
                subscription.callback = _adapt_callback(subscription.name, callback)
        return subscriptions

    def unsubscribe(self, subscription: Union[str, Subscription]) -> Subscription:
        """Drop a subscription (by handle or name); allowed mid-stream."""
        name = (
            subscription if isinstance(subscription, str) else subscription.name
        )
        return self._engine.unregister(name)

    def pause(self, name: str) -> None:
        """Pause push-style delivery for the named subscription."""
        self._engine.pause(name)

    def resume(self, name: str) -> None:
        """Resume push-style delivery for the named subscription."""
        self._engine.resume(name)

    # ------------------------------------------------------------ evaluation

    def evaluate(
        self,
        source: Union[TextSource, Iterable[Event]],
        parser: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[str, ResultSet]:
        """Consume a whole document; returns a result set per subscription.

        Engages the fused fast paths (bulk scan / expat callbacks driving
        the dispatch index) under exactly the legacy selection rules.
        """
        return self._engine.evaluate(
            source,
            parser=parser if parser is not None else self._config.parser,
            chunk_size=(
                chunk_size if chunk_size is not None else self._config.chunk_size
            ),
        )

    def stream(
        self,
        source: Union[TextSource, Iterable[Event]],
        parser: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> Iterator[Match]:
        """Yield :class:`~repro.core.results.Match` pairs incrementally."""
        return self._engine.stream(
            source,
            parser=parser if parser is not None else self._config.parser,
            chunk_size=(
                chunk_size if chunk_size is not None else self._config.chunk_size
            ),
        )

    def feed(self, event: Event) -> List[Match]:
        """Feed one already-parsed event; returns the matches it completed."""
        return self._engine.feed(event)

    def open(
        self,
        parser: Optional[str] = None,
        encoding: Optional[str] = None,
        resumable: Optional[bool] = None,
    ) -> StreamSession:
        """Open a push-mode parse session for one document.

        The session accepts wire chunks split at arbitrary byte offsets
        (``feed_bytes`` / ``feed_text`` / ``finish``) and returns the
        matches each chunk completed; see
        :class:`~repro.core.session.StreamSession`.
        """
        return self._engine.session(
            parser=parser if parser is not None else self._config.parser,
            encoding=encoding,
            resumable=(
                resumable if resumable is not None else self._config.resumable
            ),
        )

    def document_stream(
        self,
        parser: Optional[str] = None,
        framing: str = "auto",
        encoding: Optional[str] = None,
        retain_documents: Optional[int] = None,
        retain_bytes: Optional[int] = None,
        window_documents: int = 100,
        on_window: Optional[Callable[[WindowStats], None]] = None,
        on_error: str = "raise",
        resumable: Optional[bool] = None,
    ) -> DocumentStreamSession:
        """Open an *unbounded* stream of documents (infinite-stream mode).

        Unlike :meth:`open` — one bounded document ended by ``finish()`` —
        the returned :class:`~repro.core.docstream.DocumentStreamSession`
        accepts an endless feed of concatenated documents
        (``framing="auto"``: boundaries autodetected at root-close) or
        length-framed units (``framing="framed"``).  Between documents the
        machines reset (memory stays flat over millions of elements) while
        subscriptions and their delivery counters stay alive; every
        ``window_documents`` completed documents a
        :class:`~repro.core.docstream.WindowStats` is sealed.

        With ``retain_documents`` / ``retain_bytes`` set, the session keeps
        a rolling spool of recent documents as replayable event frames, and
        ``session.subscribe(query, callback, replay_window=True)`` gives a
        late subscriber the retained window *plus* seamless live delivery —
        exactly once, no duplicate, no gap.  Callbacks registered through
        the session receive :class:`~repro.core.results.Match` objects,
        matching every other facade delivery surface.
        """
        return self._engine.document_stream(
            parser=parser if parser is not None else self._config.parser,
            framing=framing,
            encoding=encoding,
            retain_documents=retain_documents,
            retain_bytes=retain_bytes,
            window_documents=window_documents,
            on_window=on_window,
            on_error=on_error,
            resumable=(
                resumable if resumable is not None else self._config.resumable
            ),
            callback_adapter=_adapt_callback,
        )

    # ------------------------------------------------------------ state

    def results(self) -> Dict[str, ResultSet]:
        """Result sets accumulated so far, keyed by subscription name."""
        return self._engine.results()

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Engine counters per subscription (label-dispatch semantics)."""
        return self._engine.statistics()

    def reset(self) -> None:
        """Reset every machine so the next document can be processed."""
        self._engine.reset()

    def snapshot(self) -> Dict[str, Any]:
        """Engine-only snapshot (between documents); see :meth:`restore`.

        To checkpoint mid-document, snapshot the open session returned by
        :meth:`open` instead.
        """
        return self._engine.snapshot()

    def restore(self, snapshot: Dict[str, Any]) -> Optional[StreamSession]:
        """Restore a snapshot into this *fresh* engine.

        Accepts both engine-only snapshots (returns ``None``) and
        mid-document session snapshots (returns the restored live session).
        Raises :class:`~repro.errors.CheckpointError` on malformed or
        incompatible payloads, leaving the engine empty.
        """
        return self._engine.restore_session(snapshot)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Unsubscribe everything, releasing compiled-query cache refs."""
        self._engine.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<Engine parser={self._config.parser!r} "
            f"subscriptions={len(self._engine)} "
            f"machines={self._engine.machine_count}>"
        )


def _adapt_callback(name: str, callback: MatchCallback) -> Callable[[Solution], None]:
    """Wrap a Match callback for the core's Solution-typed delivery hook."""

    def deliver(solution: Solution) -> None:
        callback(Match(name, solution))

    return deliver


__all__ = ["Engine", "EngineStats", "MatchCallback", "QuerySource"]
