"""The unified ViteX facade: one engine, one query type, one match type.

Four PRs of growth left the reproduction with four divergent public
surfaces — ``TwigMEvaluator`` (single query), ``MultiQueryEvaluator``
(subscriptions), ``StreamSession`` (push-mode parsing) and the asyncio
``ServiceClient`` (network) — each with its own verbs and return shapes.
This package is the seam that unifies them:

* :class:`Query` — a compiled, fingerprinted, hashable value object accepted
  everywhere a query source string is accepted today;
* :class:`Engine` — the one local engine: ``subscribe`` standing queries,
  ``evaluate`` whole documents, ``open`` push-mode sessions,
  ``snapshot``/``restore`` live state, configured by :class:`EngineConfig`;
* :class:`Match` — the one named-solution delivery type used by sessions,
  callbacks and service pushes alike (tuple-compatible with the historical
  ``(name, solution)`` pairs);
* :func:`connect` → :class:`RemoteEngine` — the same verbs over the wire
  protocol, so a program written against the local engine ports to the
  service by swapping the constructor.

The legacy entry points remain importable and functional behind thin
:class:`DeprecationWarning` shims; see the README migration table.
"""

from ..core.docstream import DocumentStreamSession, WindowStats
from ..core.results import Match
from ..core.session import StreamSession as Session
from .config import EngineConfig
from .engine import Engine, EngineStats
from .query import Query
from .remote import RemoteEngine, RemoteSession, RemoteSubscription, connect

__all__ = [
    "DocumentStreamSession",
    "Engine",
    "EngineConfig",
    "EngineStats",
    "Match",
    "Query",
    "RemoteEngine",
    "RemoteSession",
    "RemoteSubscription",
    "Session",
    "WindowStats",
    "connect",
]
