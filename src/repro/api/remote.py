"""The remote engine: the local verb set over the service wire protocol.

A program written against the local :class:`~repro.api.engine.Engine` ports
to the subscription service by swapping the constructor::

    engine = Engine()                          # in-process
    engine = await connect("10.0.0.5", 8005)   # over the wire

Both speak the same verbs — ``subscribe`` (returns a handle), ``open`` (a
per-document session), ``stats``, ``checkpoint``/``restore`` — and both
deliver :class:`~repro.core.results.Match` objects.  The differences are
inherent to the transport and kept explicit:

* every verb is a coroutine;
* matches arrive on the connection's push lane — iterate
  :meth:`RemoteEngine.matches` *or* pass ``callback=`` to ``subscribe``
  (the two consume the same lane and are mutually exclusive);
* feeding a session returns no matches inline (the server pushes them).

The wire protocol is unchanged; :class:`RemoteEngine` wraps the existing
:class:`~repro.service.client.ServiceConnection` frame client.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Iterable, List, Optional, Tuple, Union

from ..core.results import Match
from ..errors import EngineError
from ..service.client import ServiceConnection
from ..service.protocol import MAX_BATCH_BYTES
from ..service.server import DEFAULT_PORT
from .engine import MatchCallback, QuerySource

#: Default characters per ``feed`` frame for :meth:`RemoteEngine.publish`
#: (worst-case JSON escaping keeps every frame under the protocol bound).
DEFAULT_PUBLISH_CHUNK = 32 * 1024


def _batch_chunks(
    items: List[Tuple[str, Optional[str]]]
) -> Iterable[List[Tuple[str, Optional[str]]]]:
    """Split batch items so each ``subscribe_batch`` frame stays bounded.

    Sizes each item by its actual JSON encoding, so a million short
    queries chunk into as few frames as the protocol bound allows while a
    handful of pathological ones still never overflow a frame.
    """
    chunk: List[Tuple[str, Optional[str]]] = []
    size = 64  # frame envelope: {"cmd":"subscribe_batch","items":[...]}
    for item in items:
        query, name = item
        entry: Dict[str, Any] = {"query": query}
        if name is not None:
            entry["name"] = name
        cost = len(json.dumps(entry, ensure_ascii=False).encode("utf-8")) + 1
        if chunk and size + cost > MAX_BATCH_BYTES:
            yield chunk
            chunk = []
            size = 64
        chunk.append(item)
        size += cost
    if chunk:
        yield chunk


class RemoteSubscription:
    """A standing query held on the server, owned by this connection."""

    __slots__ = ("_engine", "name", "query", "delivered", "callback_errors")

    def __init__(self, engine: "RemoteEngine", name: str, query: str) -> None:
        self._engine = engine
        #: Server-assigned subscription name (stable across reconnects).
        self.name = name
        #: The query source text as sent on the wire.
        self.query = query
        #: Matches seen by this client for this subscription.
        self.delivered = 0
        #: Callback invocations that raised (exceptions are isolated).
        self.callback_errors = 0

    async def unsubscribe(self) -> None:
        """Drop this subscription on the server."""
        await self._engine.unsubscribe(self.name)

    def __repr__(self) -> str:
        return f"<RemoteSubscription {self.name!r} {self.query!r}>"


class RemoteSession:
    """One document pushed to the service, chunk by chunk.

    Unlike the local :class:`~repro.core.session.StreamSession`, feeding
    returns no matches — the server pushes them to their subscribers while
    the document is still arriving.  Parse errors surface on the push lane
    (and make :meth:`finish` fail).
    """

    __slots__ = ("_engine", "_finished")

    def __init__(self, engine: "RemoteEngine") -> None:
        self._engine = engine
        self._finished = False

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` completed."""
        return self._finished

    async def feed_text(self, chunk: str) -> None:
        """Send one XML text chunk (chunks may split anywhere)."""
        self._check_open()
        await self._engine.connection.feed(chunk)

    async def finish(self) -> Dict[str, Any]:
        """End the document; returns the server's ``finished`` reply."""
        self._check_open()
        reply = await self._engine.connection.finish()
        self._finished = True
        return reply

    def _check_open(self) -> None:
        # Same contract as the local StreamSession: feeding past finish()
        # must fail loudly here, not silently open a new server document.
        if self._finished:
            raise EngineError("session already finished")


class RemoteEngine:
    """The unified engine verbs over one service connection.

    Construct via :func:`connect`.  One remote engine can subscribe, publish,
    or both; closing it drops its server-side subscriptions (per-connection
    ownership is the service's contract).
    """

    def __init__(self, connection: ServiceConnection) -> None:
        self._client = connection
        self._subscriptions: Dict[str, RemoteSubscription] = {}
        self._callbacks: Dict[str, MatchCallback] = {}
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        #: True while a matches() iterator is live (it owns the push lane).
        self._iterating = False

    # ------------------------------------------------------------ properties

    @property
    def connection(self) -> ServiceConnection:
        """The underlying frame-level client (escape hatch for raw frames)."""
        return self._client

    @property
    def subscriptions(self) -> Dict[str, RemoteSubscription]:
        """Subscriptions held by this engine, keyed by name."""
        return dict(self._subscriptions)

    # ---------------------------------------------------------- subscriptions

    async def subscribe(
        self,
        query: QuerySource,
        callback: Optional[MatchCallback] = None,
        name: Optional[str] = None,
        replay_window: bool = False,
    ) -> RemoteSubscription:
        """Register a standing query on the server; returns its handle.

        ``query`` may be a source string or a compiled
        :class:`~repro.api.query.Query`.  With ``callback``, a background
        dispatcher consumes the push lane and invokes it with each
        :class:`~repro.core.results.Match`; without, iterate
        :meth:`matches` yourself.  With ``replay_window=True`` (needs an
        open stream session with retention, see :meth:`stream_open`) the
        server first replays its retained document window to this
        subscription; replayed solutions arrive on the push lane marked
        ``"replayed": true`` and then live delivery continues seamlessly.
        """
        if callback is not None and self._iterating:
            raise RuntimeError(
                "cannot subscribe with a callback while a matches() iterator "
                "is live: both consume the connection's push lane (close the "
                "iterator first)"
            )
        source = query if isinstance(query, str) else query.source
        assigned = await self._client.subscribe(
            source, name, replay_window=replay_window
        )
        subscription = RemoteSubscription(self, assigned, source)
        self._subscriptions[assigned] = subscription
        if callback is not None:
            self._callbacks[assigned] = callback
            self._ensure_dispatcher()
        return subscription

    async def subscribe_many(
        self,
        pairs: Iterable[Union[QuerySource, Tuple[QuerySource, Optional[str]]]],
        callback: Optional[MatchCallback] = None,
    ) -> List[RemoteSubscription]:
        """Register a batch of queries in one wire round trip; all-or-nothing.

        The remote counterpart of :meth:`Engine.subscribe_many
        <repro.api.engine.Engine.subscribe_many>`: each item is a query or
        a ``(query, name)`` pair, and the whole batch travels as one
        ``subscribe_batch`` frame (chunked only when the encoded frame
        would exceed the protocol bound).  The server applies each frame
        all-or-nothing; if a later chunk fails, the subscriptions from
        earlier chunks are unsubscribed before the error propagates, so
        the caller still sees all-or-nothing.
        """
        if callback is not None and self._iterating:
            raise RuntimeError(
                "cannot subscribe with a callback while a matches() iterator "
                "is live: both consume the connection's push lane (close the "
                "iterator first)"
            )
        items: List[Tuple[str, Optional[str]]] = []
        for item in pairs:
            if isinstance(item, tuple):
                query, name = item
            else:
                query, name = item, None
            source = query if isinstance(query, str) else query.source
            items.append((source, name))
        subscriptions: List[RemoteSubscription] = []
        try:
            for chunk in _batch_chunks(items):
                names = await self._client.subscribe_batch(chunk)
                for (source, _), assigned in zip(chunk, names):
                    subscription = RemoteSubscription(self, assigned, source)
                    self._subscriptions[assigned] = subscription
                    subscriptions.append(subscription)
        except BaseException:
            for subscription in reversed(subscriptions):
                try:
                    await self.unsubscribe(subscription.name)
                except Exception:
                    pass  # rollback is best-effort on a failing connection
            raise
        if callback is not None:
            for subscription in subscriptions:
                self._callbacks[subscription.name] = callback
            self._ensure_dispatcher()
        return subscriptions

    async def unsubscribe(
        self, subscription: Union[str, RemoteSubscription]
    ) -> None:
        """Drop a subscription (by handle or name).

        Removing the last callback-delivered subscription also stops the
        background dispatcher, handing the push lane back to
        :meth:`matches`.
        """
        name = (
            subscription if isinstance(subscription, str) else subscription.name
        )
        await self._client.unsubscribe(name)
        self._subscriptions.pop(name, None)
        self._callbacks.pop(name, None)
        if not self._callbacks:
            await self._stop_dispatcher()

    # ------------------------------------------------------------ publishing

    def open(self) -> RemoteSession:
        """Open a push session for one document (the ``feed``/``finish``
        frames; the server arms its parse session on the first chunk)."""
        return RemoteSession(self)

    async def publish(
        self,
        source: Union[str, Iterable[str]],
        chunk_size: int = DEFAULT_PUBLISH_CHUNK,
    ) -> Dict[str, Any]:
        """Send a whole document and finish it; returns the server reply.

        ``source`` is the document text (chunked every ``chunk_size``
        characters) or an iterable of text chunks.
        """
        session = self.open()
        if isinstance(source, str):
            for start in range(0, len(source), chunk_size):
                await session.feed_text(source[start : start + chunk_size])
        else:
            for chunk in source:
                await session.feed_text(chunk)
        return await session.finish()

    # ------------------------------------------------------------ delivery

    async def matches(self, stop_at_eof: bool = False) -> AsyncIterator[Match]:
        """Iterate incoming :class:`~repro.core.results.Match` pushes.

        Ends when the connection closes, or at the next document boundary
        with ``stop_at_eof=True``.  Mutually exclusive with callback-style
        delivery (both consume the connection's push lane).
        """
        if self._dispatcher is not None:
            raise RuntimeError(
                "matches() cannot be used while subscription callbacks are "
                "active: both consume the connection's push lane"
            )
        self._iterating = True
        try:
            async for name, solution, _frame in self._client.solutions(
                stop_at_eof=stop_at_eof
            ):
                subscription = self._subscriptions.get(name)
                if subscription is not None:
                    subscription.delivered += 1
                yield Match(name, solution)
        finally:
            self._iterating = False

    def pending_pushes(self) -> list:
        """Drain already-received push frames without blocking (see
        :meth:`ServiceConnection.pending_pushes`; ``feed`` errors land
        here)."""
        return self._client.pending_pushes()

    # ------------------------------------------------------------ management

    async def stats(self) -> Dict[str, Any]:
        """Fetch the server's ``stats`` frame."""
        return await self._client.stats()

    async def ping(self) -> None:
        """Round-trip a ``ping`` (orders the push lane after prior feeds)."""
        await self._client.ping()

    async def stream_open(
        self,
        retain_documents: Optional[int] = None,
        retain_bytes: Optional[int] = None,
        window_documents: Optional[int] = None,
        on_error: Optional[str] = None,
        idle_timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Open an infinite-stream session on the server.

        While open, :meth:`feed` frames carry concatenated documents whose
        boundaries the server autodetects — ``finish`` is never sent; each
        completed document broadcasts an ``eof`` push.
        ``retain_documents``/``retain_bytes`` arm the rolling replay
        retention window for ``subscribe(..., replay_window=True)``;
        ``idle_timeout``/``heartbeat_interval`` arm the server-side
        liveness monitor (both off by default).  Returns the
        ``stream_opened`` reply.
        """
        return await self._client.stream_open(
            retain_documents=retain_documents,
            retain_bytes=retain_bytes,
            window_documents=window_documents,
            on_error=on_error,
            idle_timeout=idle_timeout,
            heartbeat_interval=heartbeat_interval,
        )

    async def stream_close(self) -> Dict[str, Any]:
        """End the server's stream session; returns its final stats."""
        return await self._client.stream_close()

    async def feed(self, chunk: str) -> None:
        """Send one raw ``feed`` frame (stream mode: no session lifecycle;
        the server splits the text at document boundaries itself)."""
        await self._client.feed(chunk)

    async def checkpoint(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Ask the server to write a checkpoint file; returns its metadata."""
        return await self._client.checkpoint(path)

    async def restore(self, path: str) -> Dict[str, Any]:
        """Ask an idle, empty server to restore a checkpoint file."""
        return await self._client.restore(path)

    # ------------------------------------------------------------ lifecycle

    async def close(self) -> None:
        """Close the connection (server drops owned subscriptions)."""
        await self._stop_dispatcher()
        self._iterating = False
        await self._client.close()

    async def __aenter__(self) -> "RemoteEngine":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def __repr__(self) -> str:
        return f"<RemoteEngine subscriptions={len(self._subscriptions)}>"

    # ------------------------------------------------------------ internals

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.ensure_future(self._dispatch_loop())

    async def _stop_dispatcher(self) -> None:
        if self._dispatcher is None:
            return
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None

    async def _dispatch_loop(self) -> None:
        async for name, solution, _frame in self._client.solutions():
            subscription = self._subscriptions.get(name)
            if subscription is not None:
                subscription.delivered += 1
            callback = self._callbacks.get(name)
            if callback is not None:
                try:
                    callback(Match(name, solution))
                except Exception:
                    if subscription is not None:
                        subscription.callback_errors += 1


async def connect(
    host: str = "127.0.0.1", port: int = DEFAULT_PORT
) -> RemoteEngine:
    """Connect to a running service; returns a :class:`RemoteEngine`.

    The remote counterpart of constructing a local
    :class:`~repro.api.engine.Engine`.
    """
    return RemoteEngine(await ServiceConnection.connect(host, port))


__all__ = [
    "DEFAULT_PUBLISH_CHUNK",
    "RemoteEngine",
    "RemoteSession",
    "RemoteSubscription",
    "connect",
]
