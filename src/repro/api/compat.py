"""Deprecation shims for the legacy top-level entry points.

The implementation classes stay where they are (``repro.core.engine``,
``repro.core.multi``, ``repro.service.client``) and keep working unchanged;
what is deprecated is reaching them through the historical *public* names.
Each shim is behaviourally identical to the class it wraps — same machinery,
same results — and only adds a :class:`DeprecationWarning` pointing at the
unified facade (see the README migration table and API stability policy).
"""

from __future__ import annotations

import warnings
from typing import Union

from ..core.engine import TwigMEvaluator as _TwigMEvaluator
from ..xpath.ast import QueryTree


class TwigMEvaluator(_TwigMEvaluator):
    """Deprecated single-query evaluator (use :class:`repro.Engine`).

    .. deprecated:: 1.1
       Single-query use is an :class:`repro.Engine` with one subscription
       (or the :func:`repro.evaluate` / :func:`repro.stream_evaluate`
       one-shot helpers).  This shim is behaviourally identical to the
       internal evaluator; it only adds the warning.
    """

    def __init__(
        self,
        query: Union[str, QueryTree],
        capture_fragments: bool = False,
        eager_emission: bool = False,
        collect_statistics: bool = True,
    ) -> None:
        warnings.warn(
            "TwigMEvaluator is deprecated; use repro.Engine (one engine, "
            "any number of subscriptions) or the repro.evaluate() / "
            "repro.stream_evaluate() helpers",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            query,
            capture_fragments=capture_fragments,
            eager_emission=eager_emission,
            collect_statistics=collect_statistics,
        )


__all__ = ["TwigMEvaluator"]
