"""Wire protocol for the subscription service: line-delimited JSON frames.

One frame per line, UTF-8, ``\\n``-terminated.  A line starting with ``{``
is a JSON object; any other non-empty line is a **raw XML frame** — shorthand
for ``{"cmd": "feed", "data": "<line>"}`` so a document can be piped in from
``netcat`` (note the transport strips the newline itself; use JSON ``feed``
frames when exact byte fidelity matters, e.g. newlines inside text nodes).

Client → server commands (``cmd``):

=============  =====================================  =======================
``cmd``        fields                                 reply (``type``)
=============  =====================================  =======================
``subscribe``  ``query``, optional ``name``           ``subscribed``
``unsubscribe``  ``name``                             ``unsubscribed``
``feed``       ``data`` (XML text chunk)              — (errors only)
``finish``     —                                      ``finished``
``stats``      —                                      ``stats``
``ping``       —                                      ``pong``
=============  =====================================  =======================

Server → client pushes (``type``): ``solution`` (a match for one of the
connection's subscriptions: ``name``, ``ts`` — the server's monotonic clock
at emission — and the ``solution`` payload), ``eof`` (the current document
finished; carries ``document`` sequence number and this connection's
``delivered``/``dropped`` counters), ``error`` (``message``, plus ``cmd``
when the error answers a specific command).

Solutions travel as flat JSON objects (:func:`solution_to_payload`) and are
reconstructed client-side into real :class:`~repro.core.results.Solution`
objects (:func:`solution_from_payload`), so client code sees the same API
as library code.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Union

from ..core.results import NodeRef, Solution, SolutionKind
from ..errors import ViteXError

#: Upper bound on one frame (guards the server against unbounded buffering
#: of a missing newline).  Sized so a 32 Ki-character feed chunk fits even
#: at the worst-case ~6-bytes-per-character JSON escaping.
MAX_FRAME_BYTES = 256 * 1024


class ProtocolError(ViteXError):
    """A frame that cannot be parsed or violates the protocol."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one frame to its wire form (JSON + newline, UTF-8).

    ``ensure_ascii=False``: the transport is UTF-8, and ``\\uXXXX``-escaping
    every non-ASCII character would inflate XML payloads up to 6× — enough
    to push an innocently-sized ``feed`` chunk past ``MAX_FRAME_BYTES``.
    """
    return (
        json.dumps(message, separators=(",", ":"), ensure_ascii=False) + "\n"
    ).encode("utf-8")


def decode_frame(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Raw (non-JSON) lines become ``feed`` frames; see the module docstring.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    line = line.rstrip("\r\n")
    if not line:
        raise ProtocolError("empty frame")
    if not line.startswith("{"):
        return {"cmd": "feed", "data": line}
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def solution_to_payload(solution: Solution) -> Dict[str, Any]:
    """Flatten a :class:`Solution` into its JSON wire payload."""
    node = solution.node
    payload: Dict[str, Any] = {
        "kind": solution.kind.value,
        "order": node.order,
        "tag": node.tag,
        "level": node.level,
    }
    if node.line is not None:
        payload["line"] = node.line
    if solution.attribute is not None:
        payload["attribute"] = solution.attribute
    if solution.value is not None:
        payload["value"] = solution.value
    if solution.fragment is not None:
        payload["fragment"] = solution.fragment
    return payload


def solution_from_payload(payload: Dict[str, Any]) -> Solution:
    """Rebuild a :class:`Solution` from its wire payload."""
    try:
        kind = SolutionKind(payload["kind"])
        node = NodeRef(
            order=payload["order"],
            tag=payload.get("tag", ""),
            level=payload.get("level", 0),
            line=payload.get("line"),
        )
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed solution payload: {payload!r}") from exc
    return Solution(
        kind=kind,
        node=node,
        attribute=payload.get("attribute"),
        value=payload.get("value"),
        fragment=payload.get("fragment"),
    )


def error_frame(message: str, cmd: Optional[str] = None) -> Dict[str, Any]:
    """Build an ``error`` push frame."""
    frame: Dict[str, Any] = {"type": "error", "message": message}
    if cmd is not None:
        frame["cmd"] = cmd
    return frame


__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "solution_from_payload",
    "solution_to_payload",
]
