"""Wire protocol for the subscription service: line-delimited JSON frames.

One frame per line, UTF-8, ``\\n``-terminated.  A line starting with ``{``
is a JSON object; any other non-empty line is a **raw XML frame** — shorthand
for ``{"cmd": "feed", "data": "<line>"}`` so a document can be piped in from
``netcat`` (note the transport strips the newline itself; use JSON ``feed``
frames when exact byte fidelity matters, e.g. newlines inside text nodes).

Client → server commands (``cmd``):

=============  =====================================  =======================
``cmd``        fields                                 reply (``type``)
=============  =====================================  =======================
``subscribe``  ``query``, optional ``name``           ``subscribed``
``subscribe_batch``  ``items`` (list of objects)      ``subscribed_batch``
``unsubscribe``  ``name``                             ``unsubscribed``
``feed``       ``data`` (XML text chunk)              — (errors only)
``finish``     —                                      ``finished``
``stats``      —                                      ``stats``
``ping``       —                                      ``pong``
``checkpoint``  optional ``path``                     ``checkpointed``
``restore``    ``path``                               ``restored``
``stream_open``  retention/monitor options (below)    ``stream_opened``
``stream_close``  —                                   ``stream_closed``
=============  =====================================  =======================

``stream_open`` switches the server into **infinite-stream mode**: every
subsequent ``feed`` carries concatenated documents whose boundaries the
server autodetects (``finish`` is rejected; each completed document
broadcasts an ``eof`` push, aborted for documents the parser rejected when
``on_error`` is ``"skip"``, the default).  Options: ``retain_documents`` /
``retain_bytes`` arm the rolling replay retention window,
``window_documents`` sizes the per-window stats buckets, ``on_error`` is
``"skip"`` or ``"raise"``, and ``idle_timeout`` / ``heartbeat_interval``
(seconds, both off by default) arm the liveness monitor: the server pushes
periodic ``heartbeat`` frames (``documents``/``elements``/``in_document``)
and tears an idle stream session down with a ``stream_idle`` push (a push,
not the ``stream_closed`` reply type, so FIFO reply matching is
undisturbed).  With retention armed, ``subscribe`` accepts
``"replay_window": true``: the ``subscribed`` reply carries ``replayed``
(how many retained solutions follow) and the replayed ``solution`` pushes
are marked ``"replayed": true`` before live delivery splices in exactly
once.  ``stream_close`` ends the session; its reply carries the final
``stats``.

``subscribe_batch`` registers many standing queries in one round trip:
each item is ``{"query": ..., "name": optional}`` and the reply carries
``subscriptions`` (a ``{"name", "query"}`` object per item, in order) plus
``mid_stream``.  The batch is all-or-nothing — if any item fails to
compile or collides on a name, no subscription from the batch survives and
the reply is a single ``error`` frame.  Re-attaching to a
checkpoint-restored subscription stays on the singular ``subscribe`` verb.
The sender keeps the encoded frame under :data:`MAX_FRAME_BYTES`
(:meth:`RemoteEngine.subscribe_many
<repro.api.remote.RemoteEngine.subscribe_many>` chunks large batches
automatically).  Servers that predate this verb answer it with an
``unknown command`` error, which FIFO-resolves the request like any other
command error.

``checkpoint`` writes the server's full live state (engine, machine stacks,
half-parsed document) to a disk file and replies with ``path``/``bytes``;
``subscribe`` with the ``name`` of a checkpoint-restored subscription
re-attaches to it (the reply carries ``"reattached": true``).  ``restore``
loads a checkpoint file into an idle, empty server; ``vitex resume`` does
this at startup.  Checkpoints live on the server's filesystem — snapshots
can exceed the frame bound, so they never travel inline — and
client-supplied paths are confined to the directory of the server's
configured checkpoint file (clients choose a file *name*, not a location).

Server → client pushes (``type``): ``solution`` (a match for one of the
connection's subscriptions: ``name``, ``ts`` — the server's monotonic clock
at emission — and the ``solution`` payload), ``eof`` (the current document
finished; carries ``document`` sequence number and this connection's
``delivered``/``dropped`` counters), ``error`` (``message``, plus ``cmd``
when the error answers a specific command).

Solutions travel as flat JSON objects (:func:`solution_to_payload`) and are
reconstructed client-side into real :class:`~repro.core.results.Solution`
objects (:func:`solution_from_payload`), so client code sees the same API
as library code.

Batched server → client frames
------------------------------

Under load the server's writer drains a connection's whole outbox per
flush; instead of N separate lines it may send one **batch frame** — a
JSON *array* line holding the queued frames in order
(:func:`encode_batch`).  Clients decode incoming lines with
:func:`decode_frames`, which yields the contained frames in order for both
shapes, so batching is invisible above the framing layer (FIFO reply
matching and per-subscription delivery order are unchanged).  Batch frames
only travel server → client: a client → server line starting with ``[``
is still a raw XML feed line.

Front ↔ worker framing (sharded service)
----------------------------------------

The multi-worker service (:mod:`repro.service.sharding`) reuses this
module's line framing on the pipes between the front process and its
worker processes.  Control frames are ordinary JSON lines; the hot
worker → front *solution* path uses a length-free fast framing so the
front can route a solution to its client connection without JSON-decoding
it::

    !<subscription name> \\x1f <pre-encoded client solution frame>\\n

(:data:`SOLUTION_PREFIX` / :data:`SOLUTION_SEP`; see
:func:`encode_worker_solution` / :func:`split_worker_solution`).  The
payload after the separator is the exact bytes the client will receive.

Worker-pipe protocol versions
-----------------------------

The front ↔ worker pipe speaks one of two negotiated protocols:

* **v1 (broadcast)** — every ``feed`` broadcasts the raw XML chunk as a
  JSON line and each worker parses the whole document itself.
* **v2 (events)** — the front parses the document exactly once and ships
  the decoded event stream as **binary event frames**
  (:mod:`repro.xmlstream.eventcodec`).  On the pipe a binary payload is a
  header line followed by exactly ``length`` raw bytes::

      #<doc epoch> <length>\\n<length bytes of event-frame payload>

  (:data:`EVENTS_PREFIX`; :func:`encode_event_header` /
  :func:`parse_event_header`).  Control frames stay JSON lines in both
  versions; only the document payload changes shape.

Negotiation is one round trip at spawn: the front sends
``{"cmd": "hello"}`` and the worker replies ``{"type": "hello",
"protocols": [1, 2], ...}``.  A worker that answers with an error (or
omits v2 from ``protocols``) is driven with v1 broadcast — the front
never sends a binary payload to a worker that did not advertise v2.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.results import Solution
from ..core.results import solution_from_payload as _solution_from_payload
from ..core.results import solution_to_payload as _solution_to_payload
from ..errors import ViteXError

#: Upper bound on one frame (guards the server against unbounded buffering
#: of a missing newline).  Sized so a 32 Ki-character feed chunk fits even
#: at the worst-case ~6-bytes-per-character JSON escaping.
MAX_FRAME_BYTES = 256 * 1024

#: Soft bound on one *batch* frame: the writer stops adding frames to a
#: batch once the combined size passes this, keeping every batch line
#: safely under the client reader's ``MAX_FRAME_BYTES`` limit.
MAX_BATCH_BYTES = MAX_FRAME_BYTES - 4096

#: First byte of a worker → front fast-path solution line.
SOLUTION_PREFIX = b"!"

#: Worker-pipe protocol v1: raw-XML broadcast, every worker parses.
PROTOCOL_V1 = 1

#: Worker-pipe protocol v2: parse-once binary event frames.
PROTOCOL_V2 = 2

#: Every protocol version this code base can speak on the worker pipe,
#: oldest first; a worker advertises these in its ``hello`` reply.
WORKER_PROTOCOLS = (PROTOCOL_V1, PROTOCOL_V2)

#: First byte of a front → worker binary event-payload header line.
#: Never ambiguous: JSON control frames start with ``{`` and raw feed
#: shorthand lines are full XML documents.
EVENTS_PREFIX = b"#"

#: Separator between the subscription name and the pre-encoded client
#: frame in a worker → front solution line (U+001F, unit separator — never
#: part of a subscription name, which the engine restricts to printable
#: user-supplied or ``qN`` auto names travelling through JSON).
SOLUTION_SEP = b"\x1f"


class ProtocolError(ViteXError):
    """A frame that cannot be parsed or violates the protocol."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one frame to its wire form (JSON + newline, UTF-8).

    ``ensure_ascii=False``: the transport is UTF-8, and ``\\uXXXX``-escaping
    every non-ASCII character would inflate XML payloads up to 6× — enough
    to push an innocently-sized ``feed`` chunk past ``MAX_FRAME_BYTES``.
    """
    return (
        json.dumps(message, separators=(",", ":"), ensure_ascii=False) + "\n"
    ).encode("utf-8")


def decode_frame(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Raw (non-JSON) lines become ``feed`` frames; see the module docstring.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    line = line.rstrip("\r\n")
    if not line:
        raise ProtocolError("empty frame")
    if not line.startswith("{"):
        return {"cmd": "feed", "data": line}
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def encode_batch(frames: Sequence[bytes]) -> bytes:
    """Combine pre-encoded frames into one JSON array line.

    Each input must be the output of :func:`encode_frame` (one JSON object,
    newline-terminated, no interior newlines); the result is a single
    ``[...]\\n`` line whose elements are the frames in order.  The caller is
    responsible for keeping the combined size under
    :data:`MAX_BATCH_BYTES` — this function only assembles bytes.
    """
    return b"[" + b",".join(frame.rstrip(b"\r\n") for frame in frames) + b"]\n"


def decode_frames(line: Union[str, bytes]) -> List[Dict[str, Any]]:
    """Parse one received line into its frames, batch-aware.

    A JSON array line yields its member frames in order; any other line
    yields exactly ``[decode_frame(line)]``.  Used on the *client* side,
    where batch frames may arrive; the server side keeps
    :func:`decode_frame`'s raw-XML shorthand (a feed line may legitimately
    start with ``[``).
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    stripped = line.rstrip("\r\n")
    if not stripped.startswith("["):
        return [decode_frame(stripped)]
    try:
        messages = json.loads(stripped)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON batch frame: {exc}") from exc
    if not isinstance(messages, list) or not all(
        isinstance(message, dict) for message in messages
    ):
        raise ProtocolError("batch frame must be a JSON array of objects")
    return messages


def encode_worker_solution(name: str, frame: bytes) -> bytes:
    """Build a worker → front fast-path solution line.

    ``frame`` is the pre-encoded client solution frame
    (:func:`encode_frame` output); the front forwards it verbatim to the
    owning connection after routing on ``name``.
    """
    return SOLUTION_PREFIX + name.encode("utf-8") + SOLUTION_SEP + frame


def split_worker_solution(line: bytes) -> Tuple[str, bytes]:
    """Split a fast-path solution line into ``(name, client frame bytes)``.

    The caller has already checked the :data:`SOLUTION_PREFIX`; raises
    :class:`ProtocolError` when the separator is missing.
    """
    try:
        sep = line.index(SOLUTION_SEP)
    except ValueError as exc:
        raise ProtocolError("worker solution line is missing its separator") from exc
    try:
        name = line[1:sep].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"worker solution name is not valid UTF-8: {exc}") from exc
    return name, line[sep + 1 :]


def encode_event_header(doc: int, payload_length: int) -> bytes:
    """Build the header line announcing a binary event payload (v2).

    Exactly ``payload_length`` raw bytes follow the newline; the receiver
    reads them without line framing.  ``doc`` is the front's document
    epoch, letting a worker drop in-flight payloads for an aborted epoch.
    """
    return b"#%d %d\n" % (doc, payload_length)


def parse_event_header(line: bytes) -> Tuple[int, int]:
    """Parse a v2 payload header line into ``(doc, payload_length)``.

    The caller has already checked the :data:`EVENTS_PREFIX`.
    """
    try:
        doc_text, length_text = line[1:].split()
        doc, length = int(doc_text), int(length_text)
    except ValueError as exc:
        raise ProtocolError(f"malformed event payload header {line!r}") from exc
    if doc < 0 or length < 0:
        raise ProtocolError(f"malformed event payload header {line!r}")
    return doc, length


def solution_to_payload(solution: Solution) -> Dict[str, Any]:
    """Flatten a :class:`Solution` into its JSON wire payload.

    The encoding itself lives in :mod:`repro.core.results` (it is shared
    with the checkpoint format); this wrapper is the wire-facing name.
    """
    return _solution_to_payload(solution)


def solution_from_payload(payload: Dict[str, Any]) -> Solution:
    """Rebuild a :class:`Solution` from its wire payload."""
    try:
        return _solution_from_payload(payload)
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed solution payload: {payload!r}") from exc


def error_frame(message: str, cmd: Optional[str] = None) -> Dict[str, Any]:
    """Build an ``error`` push frame."""
    frame: Dict[str, Any] = {"type": "error", "message": message}
    if cmd is not None:
        frame["cmd"] = cmd
    return frame


__all__ = [
    "EVENTS_PREFIX",
    "MAX_BATCH_BYTES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "ProtocolError",
    "SOLUTION_PREFIX",
    "SOLUTION_SEP",
    "WORKER_PROTOCOLS",
    "decode_frame",
    "decode_frames",
    "encode_batch",
    "encode_event_header",
    "encode_frame",
    "encode_worker_solution",
    "error_frame",
    "parse_event_header",
    "solution_from_payload",
    "solution_to_payload",
    "split_worker_solution",
]
