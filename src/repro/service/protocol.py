"""Wire protocol for the subscription service: line-delimited JSON frames.

One frame per line, UTF-8, ``\\n``-terminated.  A line starting with ``{``
is a JSON object; any other non-empty line is a **raw XML frame** — shorthand
for ``{"cmd": "feed", "data": "<line>"}`` so a document can be piped in from
``netcat`` (note the transport strips the newline itself; use JSON ``feed``
frames when exact byte fidelity matters, e.g. newlines inside text nodes).

Client → server commands (``cmd``):

=============  =====================================  =======================
``cmd``        fields                                 reply (``type``)
=============  =====================================  =======================
``subscribe``  ``query``, optional ``name``           ``subscribed``
``unsubscribe``  ``name``                             ``unsubscribed``
``feed``       ``data`` (XML text chunk)              — (errors only)
``finish``     —                                      ``finished``
``stats``      —                                      ``stats``
``ping``       —                                      ``pong``
``checkpoint``  optional ``path``                     ``checkpointed``
``restore``    ``path``                               ``restored``
=============  =====================================  =======================

``checkpoint`` writes the server's full live state (engine, machine stacks,
half-parsed document) to a disk file and replies with ``path``/``bytes``;
``subscribe`` with the ``name`` of a checkpoint-restored subscription
re-attaches to it (the reply carries ``"reattached": true``).  ``restore``
loads a checkpoint file into an idle, empty server; ``vitex resume`` does
this at startup.  Checkpoints live on the server's filesystem — snapshots
can exceed the frame bound, so they never travel inline — and
client-supplied paths are confined to the directory of the server's
configured checkpoint file (clients choose a file *name*, not a location).

Server → client pushes (``type``): ``solution`` (a match for one of the
connection's subscriptions: ``name``, ``ts`` — the server's monotonic clock
at emission — and the ``solution`` payload), ``eof`` (the current document
finished; carries ``document`` sequence number and this connection's
``delivered``/``dropped`` counters), ``error`` (``message``, plus ``cmd``
when the error answers a specific command).

Solutions travel as flat JSON objects (:func:`solution_to_payload`) and are
reconstructed client-side into real :class:`~repro.core.results.Solution`
objects (:func:`solution_from_payload`), so client code sees the same API
as library code.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Union

from ..core.results import Solution
from ..core.results import solution_from_payload as _solution_from_payload
from ..core.results import solution_to_payload as _solution_to_payload
from ..errors import ViteXError

#: Upper bound on one frame (guards the server against unbounded buffering
#: of a missing newline).  Sized so a 32 Ki-character feed chunk fits even
#: at the worst-case ~6-bytes-per-character JSON escaping.
MAX_FRAME_BYTES = 256 * 1024


class ProtocolError(ViteXError):
    """A frame that cannot be parsed or violates the protocol."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one frame to its wire form (JSON + newline, UTF-8).

    ``ensure_ascii=False``: the transport is UTF-8, and ``\\uXXXX``-escaping
    every non-ASCII character would inflate XML payloads up to 6× — enough
    to push an innocently-sized ``feed`` chunk past ``MAX_FRAME_BYTES``.
    """
    return (
        json.dumps(message, separators=(",", ":"), ensure_ascii=False) + "\n"
    ).encode("utf-8")


def decode_frame(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Raw (non-JSON) lines become ``feed`` frames; see the module docstring.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    line = line.rstrip("\r\n")
    if not line:
        raise ProtocolError("empty frame")
    if not line.startswith("{"):
        return {"cmd": "feed", "data": line}
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def solution_to_payload(solution: Solution) -> Dict[str, Any]:
    """Flatten a :class:`Solution` into its JSON wire payload.

    The encoding itself lives in :mod:`repro.core.results` (it is shared
    with the checkpoint format); this wrapper is the wire-facing name.
    """
    return _solution_to_payload(solution)


def solution_from_payload(payload: Dict[str, Any]) -> Solution:
    """Rebuild a :class:`Solution` from its wire payload."""
    try:
        return _solution_from_payload(payload)
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"malformed solution payload: {payload!r}") from exc


def error_frame(message: str, cmd: Optional[str] = None) -> Dict[str, Any]:
    """Build an ``error`` push frame."""
    frame: Dict[str, Any] = {"type": "error", "message": message}
    if cmd is not None:
        frame["cmd"] = cmd
    return frame


__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "solution_from_payload",
    "solution_to_payload",
]
