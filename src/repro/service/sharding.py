"""Multi-worker sharded service: the front process and its worker pool.

Architecture::

    client A ──subscribe──▶ ┌───────────────────────────┐    pipes
    client B ──subscribe──▶ │  ShardedServiceServer     │◀────────▶ worker 0
                            │   routing: name → worker  │◀────────▶ worker 1
    publisher ──feed/──────▶│   outboxes / backpressure │◀────────▶ worker 2
               finish       └───────────────────────────┘  (engines live here)

The front speaks the unchanged client protocol; each worker
(:mod:`repro.service.worker`) is a separate process running its own
:class:`~repro.core.multi.MultiQueryEvaluator`, so parsing and matching use
as many cores as there are workers.

**Sharding policy — by subscription, fingerprint-affine.**  Each
``subscribe`` is routed to one worker.  Structurally identical queries
(equal canonical fingerprints) are pinned to the same worker, preserving
the engine's machine dedup across processes; a new fingerprint goes to the
worker with the fewest distinct fingerprints (≈ fewest machines).  The
front owns the subscription *namespace* (auto-naming, duplicate detection)
because per-worker engines cannot see each other's names.

**Feeds broadcast to every worker.**  Each worker consumes the whole
document, so all workers share one document-global element pre-order and a
mid-stream ``subscribe`` can land on any worker with correct remainder
semantics.  Scaling comes from splitting the *matching and serialization*
work — which dominates at high subscription counts — not the parse.

**Shard modes — parse-once events vs raw-XML broadcast.**  In ``events``
mode (worker-pipe protocol v2) the front parses each document exactly
once and broadcasts the decoded event stream as binary frames
(:mod:`repro.xmlstream.eventcodec`); workers feed the frames straight
into :class:`~repro.core.session.EventStreamSession`, so total parse CPU
stays constant as workers are added.  In ``broadcast`` mode (protocol
v1) the front fans out raw XML text and every worker re-parses it.  The
mode is negotiated at spawn: each worker answers ``hello`` with the
protocols it speaks, ``auto`` picks events iff *all* workers offer v2,
and ``--shard-mode events`` refuses to start otherwise.  Client-visible
behaviour (pushes, errors, eof frames) is identical in both modes.

**Document epochs.**  Every ``feed``/``finish`` carries the front's
document epoch.  A parse failure in a worker emits an ``aborted`` push;
the front aborts the document exactly once (later pushes for the same
epoch are stale) and workers silently drop in-flight ``feed`` frames of a
poisoned epoch.  One deliberate divergence from the single-process server:
chunks already in flight when a document aborts are *dropped* rather than
re-interpreted as the start of a new document.

**Crash containment.**  A worker exiting unexpectedly detaches exactly the
subscriptions routed to it: each owner gets an ``error`` push naming the
subscription, and the remaining workers keep delivering.

**Checkpoints** are version-2 payloads: one core snapshot per worker plus
the routing table (query, fingerprint, worker, counters per subscription).
Between documents a checkpoint restores onto *any* worker count — idle
machines are start states, so the front simply re-routes every query —
while a mid-document checkpoint carries per-shard parse state and must be
restored onto a matching worker count.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..core.builder import shared_compiled_cache
from ..core.checkpoint import (
    decode_spool,
    encode_spool,
    snapshot_subscription_sources,
)
from ..core.docstream import DocumentBoundaryScanner, DocumentStreamSession
from ..core.multi import MultiQueryEvaluator
from ..errors import CheckpointError, EngineError, ViteXError
from ..xmlstream.eventcodec import EVENTS_PER_FRAME, EventFrameEncoder
from ..xmlstream.events import Event, StartElement
from .protocol import (
    PROTOCOL_V1,
    PROTOCOL_V2,
    ProtocolError,
    SOLUTION_PREFIX,
    decode_frame,
    encode_event_header,
    encode_frame,
    error_frame,
    solution_from_payload,
    solution_to_payload,
    split_worker_solution,
)
from .server import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CHECKPOINT_VERSION_SHARDED,
    CHECKPOINT_VERSION_STREAM,
    DEFAULT_PORT,
    ServiceServer,
    _SubscriptionHandle,
    _encode_checkpoint,
    _write_atomically,
)

#: StreamReader limit for worker stdout: snapshot frames embed the engine
#: state (and, mid-document, the expat raw-byte spool), so they dwarf the
#: client protocol's frame bound.
WORKER_PIPE_LIMIT = 64 * 1024 * 1024


class WorkerError(ViteXError):
    """A worker process died or refused a front request."""


class _WorkerHandle:
    """One worker process: pipes, FIFO reply matching, reader task."""

    __slots__ = (
        "index",
        "parser",
        "process",
        "alive",
        "closing",
        "_server",
        "_pending",
        "_reader_task",
    )

    def __init__(self, index: int, parser: str, server: "ShardedServiceServer") -> None:
        self.index = index
        self.parser = parser
        self.process: Optional[asyncio.subprocess.Process] = None
        self.alive = False
        #: Set before an orderly shutdown so the reader's EOF is not
        #: mistaken for a crash.
        self.closing = False
        self._server = server
        self._pending: Deque[asyncio.Future] = deque()
        self._reader_task: Optional[asyncio.Task] = None

    async def spawn(self) -> None:
        env = dict(os.environ)
        src_dir = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        self.process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.service.worker",
            "--parser",
            self.parser,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=env,
            limit=WORKER_PIPE_LIMIT,
        )
        self.alive = True
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    # --------------------------------------------------------------- writes

    def write(self, wire: bytes) -> None:
        """Queue raw bytes on the worker's stdin (no reply expected)."""
        if not self.alive or self.process is None:
            return
        try:
            self.process.stdin.write(wire)
        except (ConnectionError, RuntimeError):
            pass

    async def drain_stdin(self) -> None:
        if not self.alive or self.process is None:
            return
        try:
            await self.process.stdin.drain()
        except (ConnectionError, RuntimeError):
            pass

    def request(self, frame: Dict[str, Any]) -> asyncio.Future:
        """Write a command frame and return the future for its FIFO reply.

        The write happens synchronously (ordering on the worker's stdin is
        fixed at call time — this is what keeps ``subscribe`` and broadcast
        ``feed`` frames correctly interleaved under the pipeline lock); the
        returned future resolves when the reader task matches the reply.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if not self.alive or self.process is None:
            future.set_exception(WorkerError(f"worker {self.index} is not running"))
            return future
        try:
            self.process.stdin.write(encode_frame(frame))
        except (ConnectionError, RuntimeError) as exc:
            future.set_exception(WorkerError(f"worker {self.index}: {exc}"))
            return future
        self._pending.append(future)
        return future

    async def call(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Round-trip one command; raises :class:`WorkerError` on death."""
        future = self.request(frame)
        await self.drain_stdin()
        return await future

    # --------------------------------------------------------------- reader

    async def _read_loop(self) -> None:
        assert self.process is not None
        reader = self.process.stdout
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                if line.startswith(SOLUTION_PREFIX):
                    # Hot path: route on the name, forward the pre-encoded
                    # client frame bytes without decoding them.
                    try:
                        name, frame_bytes = split_worker_solution(line)
                    except ProtocolError:  # pragma: no cover - worker bug
                        continue
                    self._server._on_worker_solution(name, frame_bytes)
                    continue
                try:
                    frame = decode_frame(line)
                except ProtocolError:  # pragma: no cover - worker bug
                    continue
                if frame.get("type") == "aborted":
                    self._server._on_worker_abort(self, frame)
                    continue
                if self._pending:
                    self._pending.popleft().set_result(frame)
        except asyncio.CancelledError:
            raise
        except Exception:
            pass
        finally:
            was_alive = self.alive
            self.alive = False
            self._fail_pending(WorkerError(f"worker {self.index} exited"))
            if was_alive and not self.closing and not self._server._closed:
                self._server._on_worker_crash(self)

    def _fail_pending(self, exc: Exception) -> None:
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved: fire-and-forget requests (unsubscribe)
                # never await their future.
                future.exception()

    # ------------------------------------------------------------ lifecycle

    async def close(self) -> None:
        """Orderly worker shutdown: EOF on stdin, bounded wait, then kill."""
        self.closing = True
        process = self.process
        if process is not None and process.returncode is None:
            try:
                process.stdin.close()
            except (ConnectionError, RuntimeError):
                pass
            try:
                await asyncio.wait_for(process.wait(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - wedged worker
                process.kill()
                await process.wait()
        self.alive = False
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None


class _FrontParser:
    """The parse-once front parser for events shard mode.

    Tokenizes the document exactly once — natively or through expat,
    matching the server's ``parser`` — and hands the decoded events to the
    frame encoder.  Keeps the raw chunk spool so a mid-document checkpoint
    can rebuild parser state by replaying it through a fresh parser (the
    worker shards themselves are spool-free: an events session snapshot
    carries no parse state).  ``elements`` counts start tags and is the
    authoritative document-global element total.
    """

    __slots__ = ("parser", "elements", "_tokenizer", "_expat", "_spool")

    def __init__(self, parser: str) -> None:
        self.parser = parser
        self.elements = 0
        self._spool: List[str] = []
        if parser == "expat":
            from ..xmlstream.expat_backend import ExpatEventSource

            self._expat: Optional[Any] = ExpatEventSource()
            self._tokenizer = None
        else:
            from ..xmlstream.tokenizer import StreamTokenizer

            self._tokenizer = StreamTokenizer()
            self._expat = None

    def feed(self, chunk: str) -> List[Event]:
        self._spool.append(chunk)
        events: List[Event] = []
        try:
            if self._tokenizer is not None:
                for event in self._tokenizer.feed(chunk):
                    events.append(event)
            else:
                events = self._expat.feed(chunk)
        finally:
            # Count even on a mid-chunk parse error: the abort accounting
            # reports how far the document got, like a worker's would.
            self.elements += sum(
                1 for event in events if type(event) is StartElement
            )
        return events

    def close(self) -> List[Event]:
        if self._tokenizer is not None:
            events = list(self._tokenizer.close())
        else:
            events = self._expat.close()
        self.elements += sum(1 for event in events if type(event) is StartElement)
        return events

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "parser": self.parser,
            "spool": encode_spool(list(self._spool)),
            "elements": self.elements,
        }

    @classmethod
    def restore(cls, state: Dict[str, Any], parser: str) -> "_FrontParser":
        """Replay the checkpointed spool once through a fresh parser.

        The replayed events are discarded — the worker shards already hold
        the matching engine state — but the parser ends up at exactly the
        checkpointed chunk boundary, ready for the next ``feed``.
        """
        front = cls(state.get("parser") or parser)
        for chunk in decode_spool(state.get("spool") or []):
            if isinstance(chunk, bytes):
                chunk = chunk.decode("utf-8")
            front.feed(chunk)
        front.elements = state.get("elements", front.elements)
        return front


class ShardedServiceServer(ServiceServer):
    """The front process of the sharded service.

    Speaks the unchanged client protocol (same frames, same replies, same
    backpressure accounting); delegates all parsing and matching to worker
    processes.  ``workers=1`` is the degenerate case used by parity tests —
    identical protocol behaviour to :class:`ServiceServer` with the engine
    one pipe away.
    """

    def __init__(
        self, workers: int = 2, shard_mode: str = "auto", **kwargs: Any
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_mode not in ("auto", "events", "broadcast"):
            raise ValueError("shard_mode must be 'auto', 'events' or 'broadcast'")
        super().__init__(**kwargs)
        self._worker_count = workers
        #: Requested mode; the *negotiated* mode lives in ``_events_mode``.
        self.shard_mode = shard_mode
        self._events_mode = False
        self._workers: List[_WorkerHandle] = []
        self._worker_stats: List[Dict[str, Any]] = []
        #: Serializes writes that must hit every worker in the same order
        #: (feed/finish broadcasts, subscribes, snapshot gathers).
        self._pipeline_lock = asyncio.Lock()
        # Routing state.  ``_shard_load`` counts distinct fingerprints per
        # worker (≈ machines, thanks to engine dedup); ``_affinity`` maps a
        # fingerprint to its pinned worker and refcount.
        self._routes: Dict[str, int] = {}
        self._fingerprints: Dict[str, str] = {}
        self._affinity: Dict[str, List[int]] = {}
        self._shard_load: List[int] = []
        self._auto_name_counter = 0
        # Document state: the front owns the document lifecycle; workers
        # are slaved to its epoch counter.
        self._doc_epoch = 0
        self._doc_open = False
        self._feeder = None
        #: Mode of the *current* document: pinned at its first feed (or at
        #: a mid-document restore, where it follows the shard session type)
        #: so a restored raw-XML document keeps streaming over protocol v1
        #: even when the pool negotiated events mode.
        self._doc_events: Optional[bool] = None
        self._front: Optional[_FrontParser] = None
        self._front_encoder: Optional[EventFrameEncoder] = None
        #: Local subscriptions registered before the workers exist; routed
        #: when :meth:`start` spawns them.
        self._pending_local: List[str] = []
        # Infinite-stream mode (stream_open).  The front splits the feed at
        # document boundaries and drives the workers' feed/finish lifecycle
        # itself; an optional front-local mirror session owns the retention
        # spool and every replay_window subscription.
        self._stream_scanner: Optional[DocumentBoundaryScanner] = None
        self._stream_skip_doc = False
        self._stream_base = (0, 0, 0)
        self._front_engine: Optional[MultiQueryEvaluator] = None
        self._front_stream: Optional[DocumentStreamSession] = None
        self._front_replay: set = set()

    # ------------------------------------------------------------ lifecycle

    async def _ensure_workers(self) -> None:
        if self._workers:
            return
        for index in range(self._worker_count):
            handle = _WorkerHandle(index, self.parser, self)
            await handle.spawn()
            self._workers.append(handle)
            self._worker_stats.append(
                {
                    "worker": index,
                    "mode": "process",
                    "pid": handle.pid,
                    "alive": True,
                    "subscriptions": 0,
                    "machine_count": 0,
                    "elements": 0,
                    "events_per_sec": 0.0,
                    "queue_depth": 0,
                    "cpu_seconds": 0.0,
                    "protocol": PROTOCOL_V1,
                }
            )
        self._shard_load = [0] * self._worker_count
        await self._negotiate_protocols()

    async def _negotiate_protocols(self) -> None:
        """Resolve the shard mode against what the workers actually speak.

        Every worker answers ``hello`` with its protocol list; a worker
        that errors (an older binary) counts as v1-only.  ``auto`` settles
        on events iff the whole pool offers v2 — a single capped worker
        silently falls the pool back to raw-XML broadcast, which is always
        safe because client-visible behaviour is identical.
        """
        if self.shard_mode == "broadcast":
            self._events_mode = False
            return
        pool_v2 = True
        for worker in self._workers:
            try:
                reply = await worker.call({"cmd": "hello"})
            except WorkerError:
                pool_v2 = False
                continue
            protocols = (
                reply.get("protocols") if reply.get("type") == "hello" else None
            )
            supported = isinstance(protocols, list) and PROTOCOL_V2 in protocols
            if worker.index < len(self._worker_stats):
                self._worker_stats[worker.index]["protocol"] = (
                    PROTOCOL_V2 if supported else PROTOCOL_V1
                )
            pool_v2 = pool_v2 and supported
        if self.shard_mode == "events" and not pool_v2:
            raise ViteXError(
                "--shard-mode events needs every worker to speak protocol v2; "
                "at least one only offered v1 (use --shard-mode auto to allow "
                "falling back to raw-XML broadcast)"
            )
        self._events_mode = pool_v2

    async def start(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> None:
        await self._ensure_workers()
        await self._flush_pending_local()
        await super().start(host, port)

    async def close(self) -> None:
        if self._closed:
            return
        for worker in self._workers:
            worker.closing = True
        if self._stream_scanner is not None:
            self._close_stream_session(reason="server closing")
        await super().close()
        await asyncio.gather(
            *(worker.close() for worker in self._workers), return_exceptions=True
        )

    async def drain(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: like the base server, plus worker drain."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._stream_scanner is not None:
            self._close_stream_session(reason="server draining")
            self._broadcast_eof(self._documents, aborted=False, draining=True)
        elif self._doc_open:
            document = self._documents
            self._documents += 1
            self._aborted_documents += 1
            self._close_epoch()
            self._broadcast_eof(
                document, aborted=True, error="server draining", draining=True
            )
        else:
            self._broadcast_eof(self._documents, aborted=False, draining=True)
        await self._flush_outboxes(timeout)
        for worker in self._workers:
            if worker.alive:
                worker.closing = True
                worker.request({"cmd": "drain"})

    def _document_in_progress(self) -> bool:
        return self._doc_open

    def _alive_workers(self) -> List[_WorkerHandle]:
        return [worker for worker in self._workers if worker.alive]

    def _close_epoch(self) -> None:
        self._doc_open = False
        self._doc_epoch += 1
        self._feeder = None
        self._doc_events = None
        self._front = None
        self._front_encoder = None

    # ------------------------------------------------------------ routing

    def _assign_name(self, name: Optional[str]) -> str:
        if name is None:
            while True:
                name = f"q{self._auto_name_counter}"
                self._auto_name_counter += 1
                if name not in self._subscriptions:
                    return name
        if any(ord(char) < 32 or ord(char) == 127 for char in name):
            # Names travel in the worker fast-path framing; control
            # characters (newline, unit separator) would corrupt it.
            raise ProtocolError(
                "subscription names may not contain control characters"
            )
        if name in self._subscriptions:
            raise EngineError(f"a subscription named {name!r} already exists")
        return name

    def _fingerprint(self, query: str) -> str:
        """Validate + fingerprint a query through the shared compiled cache
        (raising exactly the errors the engine's own ``subscribe`` would)."""
        compiled = shared_compiled_cache.acquire(query)
        try:
            return compiled.fingerprint
        finally:
            shared_compiled_cache.release(compiled)

    def _pick_worker(self, fingerprint: str) -> int:
        pinned = self._affinity.get(fingerprint)
        if pinned is not None and self._workers[pinned[0]].alive:
            return pinned[0]
        candidates = [
            (self._shard_load[worker.index], worker.index)
            for worker in self._workers
            if worker.alive
        ]
        if not candidates:
            raise ViteXError("no alive workers")
        return min(candidates)[1]

    def _acquire_affinity(self, fingerprint: str, index: int) -> None:
        pinned = self._affinity.get(fingerprint)
        if pinned is not None and pinned[0] == index:
            pinned[1] += 1
            return
        self._affinity[fingerprint] = [index, 1]
        self._shard_load[index] += 1

    def _release_affinity(self, fingerprint: str) -> None:
        pinned = self._affinity.get(fingerprint)
        if pinned is None:
            return
        pinned[1] -= 1
        if pinned[1] <= 0:
            del self._affinity[fingerprint]
            if 0 <= pinned[0] < len(self._shard_load):
                self._shard_load[pinned[0]] -= 1

    def _install_route(self, name: str, fingerprint: str, index: int) -> None:
        self._routes[name] = index
        self._fingerprints[name] = fingerprint
        self._acquire_affinity(fingerprint, index)

    def _remove_subscription(self, name: str) -> None:
        if name in self._front_replay:
            self._front_replay.discard(name)
            if self._front_engine is not None:
                try:
                    self._front_engine.unregister(name)
                except EngineError:
                    pass
        handle = self._subscriptions.pop(name, None)
        if handle is None:
            return
        if handle.connection is not None and name in handle.connection.names:
            handle.connection.names.remove(name)
        index = self._routes.pop(name, None)
        fingerprint = self._fingerprints.pop(name, None)
        if fingerprint is not None:
            self._release_affinity(fingerprint)
        if name in self._pending_local:
            self._pending_local.remove(name)
        if index is None or self._closed:
            return
        worker = self._workers[index] if index < len(self._workers) else None
        if worker is not None and worker.alive:
            # Fire-and-forget: the FIFO reply resolves a future nobody
            # awaits, keeping reply matching aligned.
            worker.request({"cmd": "unsubscribe", "name": name})

    # ------------------------------------------------- local subscriptions

    def add_local_subscription(self, query, name=None, callback=None) -> str:
        # Keyed on the listener, not the worker pool: a restore spawns the
        # workers early, but new local queries (``vitex resume --watch``)
        # are still fine until ``start()`` flushes the pending list.
        if self._server is not None:
            raise RuntimeError(
                "add_local_subscription must be called before start() on a "
                "sharded server"
            )
        fingerprint = self._fingerprint(query)
        name = self._assign_name(name)
        handle = _SubscriptionHandle(name, query, None, callback)
        self._subscriptions[name] = handle
        self._fingerprints[name] = fingerprint
        self._pending_local.append(name)
        return name

    async def _flush_pending_local(self) -> None:
        for name in list(self._pending_local):
            handle = self._subscriptions[name]
            fingerprint = self._fingerprints[name]
            index = self._pick_worker(fingerprint)
            self._routes[name] = index
            self._acquire_affinity(fingerprint, index)
            reply = await self._workers[index].call(
                {"cmd": "subscribe", "query": handle.query, "name": name}
            )
            if reply.get("type") == "error":
                raise ViteXError(reply.get("message", "worker subscribe failed"))
        self._pending_local.clear()

    def _query_equivalent(self, name, handle, query) -> bool:
        if query == handle.query:
            return True
        fingerprint = self._fingerprints.get(name)
        if fingerprint is None:
            return False
        return self._fingerprint(query) == fingerprint

    # ------------------------------------------------------ frame handlers

    async def _cmd_subscribe(self, connection, frame) -> None:
        query = frame.get("query")
        if not isinstance(query, str) or not query:
            raise ProtocolError("subscribe needs a 'query' string")
        if frame.get("replay_window"):
            self._subscribe_replay(connection, frame, query)
            return
        name = frame.get("name")
        if isinstance(name, str):
            handle = self._subscriptions.get(name)
            if handle is not None and handle.detached:
                self._reattach_subscription(connection, handle, query)
                return
        fingerprint = self._fingerprint(query)
        name = self._assign_name(name)
        index = self._pick_worker(fingerprint)
        handle = _SubscriptionHandle(name, query, connection)
        # Reserve the name and route before the await: a concurrent
        # subscribe must see the name as taken.
        self._subscriptions[name] = handle
        connection.names.append(name)
        self._install_route(name, fingerprint, index)
        try:
            async with self._pipeline_lock:
                future = self._workers[index].request(
                    {"cmd": "subscribe", "query": query, "name": name}
                )
            reply = await future
            if reply.get("type") == "error":
                raise ViteXError(reply.get("message", "worker subscribe failed"))
        except BaseException:
            self._remove_subscription(name)
            raise
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "subscribed",
                    "name": name,
                    "query": reply.get("query", query),
                    "mid_stream": self._doc_open,
                }
            ),
        )

    async def _cmd_subscribe_batch(self, connection, frame) -> None:
        """All-or-nothing batch subscribe across the worker pool.

        Phase 1 validates every item and reserves names/routes before any
        await, so concurrent subscribes see the whole batch as taken.
        Phase 2 queues every worker request in one locked pass (FIFO reply
        alignment, same as the singular path) and awaits the replies.  Any
        failure unwinds every reservation — workers that already accepted
        their item get a fire-and-forget ``unsubscribe`` from
        :meth:`_remove_subscription`.
        """
        pairs = self._batch_items(frame)
        registered: List[Tuple[str, str, int]] = []
        try:
            for query, name in pairs:
                if isinstance(name, str):
                    handle = self._subscriptions.get(name)
                    if handle is not None and handle.detached:
                        raise ProtocolError(
                            f"subscription {name!r} is detached; re-attach "
                            "it with a plain subscribe, not subscribe_batch"
                        )
                fingerprint = self._fingerprint(query)
                assigned = self._assign_name(name)
                index = self._pick_worker(fingerprint)
                self._subscriptions[assigned] = _SubscriptionHandle(
                    assigned, query, connection
                )
                connection.names.append(assigned)
                self._install_route(assigned, fingerprint, index)
                registered.append((assigned, query, index))
            futures = []
            async with self._pipeline_lock:
                for assigned, query, index in registered:
                    futures.append(
                        self._workers[index].request(
                            {"cmd": "subscribe", "query": query, "name": assigned}
                        )
                    )
            for future in futures:
                reply = await future
                if reply.get("type") == "error":
                    raise ViteXError(
                        reply.get("message", "worker subscribe failed")
                    )
        except BaseException:
            for assigned, _query, _index in reversed(registered):
                self._remove_subscription(assigned)
            raise
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "subscribed_batch",
                    "subscriptions": [
                        {"name": assigned, "query": query}
                        for assigned, query, _index in registered
                    ],
                    "mid_stream": self._doc_open,
                }
            ),
        )

    def _reattach_subscription(self, connection, handle, query) -> None:
        # Same semantics as the base server, but mid_stream reflects the
        # front's document state (the front has no local session).
        if not self._query_equivalent(handle.name, handle, query):
            raise ProtocolError(
                f"subscription {handle.name!r} was restored for query "
                f"{handle.query!r}; cannot re-attach a different query"
            )
        handle.connection = connection
        handle.detached = False
        connection.names.append(handle.name)
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "subscribed",
                    "name": handle.name,
                    "query": handle.query,
                    "mid_stream": self._doc_open,
                    "reattached": True,
                    "delivered": handle.delivered,
                }
            ),
        )

    async def _cmd_feed(self, connection, frame) -> None:
        data = frame.get("data")
        if not isinstance(data, str):
            raise ProtocolError("feed needs a 'data' string")
        if self._stream_scanner is not None:
            await self._stream_feed_sharded(connection, data)
            return
        if self._doc_events is None:
            self._doc_events = self._events_mode
        if self._doc_events:
            await self._feed_events(connection, data)
            return
        await self._feed_broadcast(connection, data)

    async def _feed_broadcast(self, connection, data: str) -> None:
        """Fan one raw-XML chunk out to every worker (protocol v1)."""
        workers = self._alive_workers()
        if not workers:
            raise ViteXError("no alive workers")
        started = time.perf_counter()
        async with self._pipeline_lock:
            self._doc_open = True
            self._feeder = connection
            wire = encode_frame({"cmd": "feed", "data": data, "doc": self._doc_epoch})
            for worker in workers:
                worker.write(wire)
            await asyncio.gather(
                *(worker.drain_stdin() for worker in workers),
                return_exceptions=True,
            )
        self._busy_seconds += time.perf_counter() - started

    # ------------------------------------------------- events-mode pipeline

    def _encode_event_wire(self, events: List[Event]) -> bytes:
        """Frame a run of events for broadcast (header + binary payload).

        Long runs split at ``EVENTS_PER_FRAME`` so no single payload grows
        unboundedly; an empty run still emits one empty frame, so every
        worker opens its shard session on the document's first feed.
        """
        encoder = self._front_encoder
        assert encoder is not None
        epoch = self._doc_epoch
        if not events:
            payload = encoder.encode(())
            return encode_event_header(epoch, len(payload)) + payload
        parts: List[bytes] = []
        for index in range(0, len(events), EVENTS_PER_FRAME):
            payload = encoder.encode(events[index : index + EVENTS_PER_FRAME])
            parts.append(encode_event_header(epoch, len(payload)) + payload)
        return b"".join(parts)

    def _abort_front_document(self, message: str) -> None:
        """A front-side parse failure aborts the document front-wide.

        Mirrors :meth:`_on_worker_abort`'s accounting — in events mode the
        parse error happens *here*, so no ``aborted`` push will ever come
        back from a worker; instead the front tells every worker to tear
        its shard down quietly.  The feeder's error frame comes from
        re-raising the parse error through ``_dispatch``.  Runs under the
        pipeline lock.
        """
        wire = encode_frame({"cmd": "abort", "doc": self._doc_epoch})
        for worker in self._alive_workers():
            worker.write(wire)
        elements = self._front.elements if self._front is not None else 0
        document = self._documents
        self._documents += 1
        self._aborted_documents += 1
        self._elements_total += elements
        self._close_epoch()
        self._broadcast_eof(document, aborted=True, error=message)

    async def _feed_events(self, connection, data: str) -> None:
        """Parse one chunk once, broadcast the encoded events to the pool."""
        workers = self._alive_workers()
        if not workers:
            raise ViteXError("no alive workers")
        started = time.perf_counter()
        async with self._pipeline_lock:
            self._doc_open = True
            self._feeder = connection
            if self._front is None:
                self._front = _FrontParser(self.parser)
                self._front_encoder = EventFrameEncoder()
            try:
                events = self._front.feed(data)
            except ViteXError as exc:
                self._busy_seconds += time.perf_counter() - started
                self._abort_front_document(str(exc))
                raise
            wire = self._encode_event_wire(events)
            for worker in workers:
                worker.write(wire)
            await asyncio.gather(
                *(worker.drain_stdin() for worker in workers),
                return_exceptions=True,
            )
        self._busy_seconds += time.perf_counter() - started

    async def _finish_events(self, connection, frame, reply: bool = True) -> None:
        if not self._doc_open or self._front is None:
            raise ProtocolError("no document in progress")
        epoch = self._doc_epoch
        started = time.perf_counter()
        async with self._pipeline_lock:
            workers = self._alive_workers()
            if not workers:
                raise ViteXError("no alive workers")
            try:
                tail = self._front.close()
            except ViteXError as exc:
                self._busy_seconds += time.perf_counter() - started
                self._abort_front_document(str(exc))
                raise
            elements = self._front.elements
            wire = self._encode_event_wire(tail)
            futures = []
            for worker in workers:
                worker.write(wire)
                futures.append(worker.request({"cmd": "finish", "doc": epoch}))
        replies = await asyncio.gather(*futures, return_exceptions=True)
        self._busy_seconds += time.perf_counter() - started
        good = [reply for reply in replies if isinstance(reply, dict)]
        if not good:
            raise ViteXError("all workers failed during finish")
        aborted = [reply for reply in good if reply.get("aborted")]
        if aborted or not self._doc_open or self._doc_epoch != epoch:
            message = next(
                (reply["message"] for reply in aborted if reply.get("message")), None
            )
            if message:
                raise ViteXError(message)
            raise ProtocolError("no document in progress")
        document = self._documents
        self._documents += 1
        # The front's count is authoritative: it parsed the one and only
        # copy of the document (workers would report the same number).
        self._elements_total += elements
        self._close_epoch()
        if reply:
            self._enqueue(
                connection,
                None,
                encode_frame(
                    {"type": "finished", "document": document, "elements": elements}
                ),
            )
        self._broadcast_eof(document, aborted=False)

    async def _cmd_finish(self, connection, frame) -> None:
        if self._stream_scanner is not None:
            raise ProtocolError(
                "finish is not used in stream mode: document boundaries are "
                "autodetected (stream_close ends the session)"
            )
        await self._finish_document(connection, frame, reply=True)

    async def _finish_document(self, connection, frame, reply: bool = True) -> None:
        if self._doc_events:
            await self._finish_events(connection, frame, reply=reply)
            return
        if not self._doc_open:
            raise ProtocolError("no document in progress")
        epoch = self._doc_epoch
        started = time.perf_counter()
        async with self._pipeline_lock:
            futures = [
                worker.request({"cmd": "finish", "doc": epoch})
                for worker in self._alive_workers()
            ]
        replies = await asyncio.gather(*futures, return_exceptions=True)
        self._busy_seconds += time.perf_counter() - started
        good = [reply for reply in replies if isinstance(reply, dict)]
        if not good:
            raise ViteXError("all workers failed during finish")
        aborted = [reply for reply in good if reply.get("aborted")]
        if aborted or not self._doc_open or self._doc_epoch != epoch:
            # The abort push (processed by the reader before these replies)
            # already broadcast the eof; answer the finisher the way the
            # single-process server would.
            message = next(
                (reply["message"] for reply in aborted if reply.get("message")), None
            )
            if message:
                raise ViteXError(message)
            raise ProtocolError("no document in progress")
        elements = max(entry.get("elements", 0) for entry in good)
        document = self._documents
        self._documents += 1
        self._elements_total += elements
        self._close_epoch()
        if reply:
            self._enqueue(
                connection,
                None,
                encode_frame(
                    {"type": "finished", "document": document, "elements": elements}
                ),
            )
        self._broadcast_eof(document, aborted=False)

    # ---------------------------------------------------------- stream mode

    def _stream_mode(self) -> bool:
        return self._stream_scanner is not None

    def _open_stream_session(self, options: Dict[str, Any]) -> None:
        """Sharded stream session: a boundary scanner plus, when retention
        is requested, a front-local mirror session that owns the spool.

        The workers keep doing what they do in bounded mode — the front
        feeds them one document at a time and runs the finish cycle itself
        at every boundary the scanner reports.  ``replay_window``
        subscriptions are served *entirely* by the mirror (replay and live)
        because the exactly-once splice cannot span processes; when the
        stream session closes they are migrated onto workers like ordinary
        subscriptions.
        """
        self._stream_scanner = DocumentBoundaryScanner()
        self._stream_skip_doc = False
        self._stream_base = (
            self._documents,
            self._aborted_documents,
            self._elements_total,
        )
        self._stream_options = options
        if options.get("retain_documents") or options.get("retain_bytes"):
            self._front_engine = MultiQueryEvaluator()
            self._front_stream = self._front_engine.document_stream(
                parser=self.parser,
                retain_documents=options.get("retain_documents"),
                retain_bytes=options.get("retain_bytes"),
                window_documents=options.get("window_documents") or 100,
                on_error="skip",
            )

    def _close_stream_session(self, reason: str) -> Dict[str, Any]:
        scanner = self._stream_scanner
        assert scanner is not None
        if self._doc_open:
            # Mid-document close: poison the open epoch on every worker and
            # account the partial document as aborted, like a bounded abort.
            wire = encode_frame({"cmd": "abort", "doc": self._doc_epoch})
            for worker in self._alive_workers():
                worker.write(wire)
            document = self._documents
            self._documents += 1
            self._aborted_documents += 1
            self._close_epoch()
            self._broadcast_eof(document, aborted=True, error=f"stream {reason}")
        base_docs, base_aborted, base_elements = self._stream_base
        failed = self._aborted_documents - base_aborted
        stats: Dict[str, Any] = {
            "documents": self._documents - base_docs - failed,
            "documents_failed": failed,
            "elements": self._elements_total - base_elements,
            "in_document": scanner.in_document,
        }
        stats.update(self._stream_monitor_stats())
        self._stream_scanner = None
        self._stream_skip_doc = False
        self._migrate_replay_subscriptions()
        if self._front_stream is not None:
            front_stats = self._front_stream.stats()
            if "spool" in front_stats:
                stats["spool"] = front_stats["spool"]
            self._front_stream.close()
            self._front_stream = None
        if self._front_engine is not None:
            self._front_engine.close()
            self._front_engine = None
        self._stream_options = {}
        if self._stream_monitor_task is not None:
            self._stream_monitor_task.cancel()
            self._stream_monitor_task = None
        return stats

    def _migrate_replay_subscriptions(self) -> None:
        """Re-home replay subscriptions onto workers at stream close.

        On the single-process server a replay subscription outlives the
        stream session because it lives on the shared engine.  Here its
        engine (the front mirror) dies with the session, so each one gets a
        fresh worker route — live delivery continues in bounded mode with
        no visible difference to the client.
        """
        for name in sorted(self._front_replay):
            handle = self._subscriptions.get(name)
            if handle is None:
                continue
            try:
                fingerprint = self._fingerprint(handle.query)
                index = self._pick_worker(fingerprint)
            except ViteXError:
                continue
            self._install_route(name, fingerprint, index)
            worker = self._workers[index]
            if worker.alive:
                # Fire-and-forget, like _remove_subscription's unsubscribe.
                worker.request(
                    {"cmd": "subscribe", "query": handle.query, "name": name}
                )
        self._front_replay.clear()

    def _stream_stats(self) -> Optional[Dict[str, Any]]:
        scanner = self._stream_scanner
        if scanner is None:
            return None
        base_docs, base_aborted, base_elements = self._stream_base
        failed = self._aborted_documents - base_aborted
        payload: Dict[str, Any] = {
            "documents": self._documents - base_docs - failed,
            "documents_failed": failed,
            "elements": self._elements_total - base_elements,
            "in_document": self._doc_open or scanner.in_document,
            "replay_subscriptions": len(self._front_replay),
        }
        if self._front_stream is not None and self._front_stream.spool is not None:
            payload["spool"] = self._front_stream.spool.accounting()
        payload.update(self._stream_monitor_stats())
        return payload

    def _heartbeat_frame(self) -> Dict[str, Any]:
        frame = super()._heartbeat_frame()
        scanner = self._stream_scanner
        if scanner is not None:
            frame["in_document"] = self._doc_open or scanner.in_document
        return frame

    def _subscribe_replay(self, connection, frame, query: str) -> None:
        """``replay_window`` on the sharded front: mirror-served, no route."""
        if self._front_stream is None:
            raise ProtocolError(
                "replay_window needs an open stream session with retention "
                "(stream_open with retain_documents or retain_bytes)"
            )
        requested = frame.get("name")
        if requested is not None and not isinstance(requested, str):
            raise ProtocolError("subscribe 'name' must be a string")
        # The front owns the namespace: collide against *all* server
        # subscriptions, not just the mirror engine's.
        name = self._assign_name(requested)
        subscription, replayed = self._front_stream.subscribe_replay(
            query, name=name
        )
        handle = _SubscriptionHandle(name, subscription.query, connection)
        handle.delivered = len(replayed)
        self._subscriptions[name] = handle
        connection.names.append(name)
        self._front_replay.add(name)
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "subscribed",
                    "name": name,
                    "query": subscription.query,
                    "mid_stream": self._doc_open or self._front_stream.in_document,
                    "replayed": len(replayed),
                }
            ),
        )
        ts = asyncio.get_running_loop().time()
        self._solutions_total += len(replayed)
        connection.delivered += len(replayed)
        for pair in replayed:
            self._enqueue(
                connection,
                name,
                encode_frame(
                    {
                        "type": "solution",
                        "name": name,
                        "ts": ts,
                        "replayed": True,
                        "solution": solution_to_payload(pair.solution),
                    }
                ),
            )

    async def _stream_feed_sharded(self, connection, data: str) -> None:
        """One stream-mode feed: split at boundaries, drive the workers.

        The scanner hands back ``(segment, completed)`` pieces; each
        segment streams to the workers over the normal feed path (events
        or broadcast, pinned per document as usual) and every completed
        boundary runs the finish cycle — no client ``finished`` reply, one
        ``eof`` broadcast per document, exactly like the bounded protocol.
        A document some worker failed is skipped to the next boundary
        (``on_error="skip"``) or tears the stream session down
        (``on_error="raise"``).
        """
        scanner = self._stream_scanner
        assert scanner is not None
        self._stream_last_feed = time.monotonic()
        self._arm_stream_monitor()
        raise_mode = self._stream_options.get("on_error") == "raise"
        for segment, completed in scanner.feed(data):
            if self._stream_scanner is None:
                return  # torn down mid-loop (worker abort in raise mode)
            # The retention mirror consumes the same segments in lockstep
            # (its own scanner and skip handling are independent); its
            # pairs — the replay subscriptions' live deliveries — must
            # route before the segment's eof can broadcast.
            front = self._front_stream
            if front is not None:
                mirror_pairs = front.feed_text(segment)
                if mirror_pairs:
                    self._route(mirror_pairs)
            if self._stream_skip_doc:
                if completed:
                    self._stream_skip_doc = False
                continue
            try:
                if self._doc_events is None:
                    self._doc_events = self._events_mode
                if self._doc_events:
                    await self._feed_events(connection, segment)
                else:
                    await self._feed_broadcast(connection, segment)
                if self._stream_scanner is None:
                    return
                if completed and not self._stream_skip_doc:
                    if self._doc_open:
                        await self._finish_document(connection, {}, reply=False)
                elif completed:
                    self._stream_skip_doc = False
            except ViteXError as exc:
                # The document's abort accounting already ran — either
                # synchronously (_abort_front_document in events mode) or
                # via the worker abort push racing the finish replies.
                if raise_mode:
                    if self._stream_scanner is not None:
                        self._close_stream_session(reason="parse error")
                    raise
                self._stream_skip_doc = not completed

    async def _cmd_stats(self, connection, frame) -> None:
        await self._refresh_worker_stats()
        self._enqueue(connection, None, encode_frame(self.stats()))

    async def _cmd_checkpoint(self, connection, frame) -> None:
        path = frame.get("path")
        if path is not None:
            if not isinstance(path, str) or not path:
                raise ProtocolError("checkpoint 'path' must be a non-empty string")
            path = self._client_checkpoint_path(path)
        meta = await self.save_checkpoint_async(path)
        meta["type"] = "checkpointed"
        self._enqueue(connection, None, encode_frame(meta))

    async def _cmd_restore(self, connection, frame) -> None:
        path = frame.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError("restore needs a 'path' string")
        meta = await self.restore_from_file(self._client_checkpoint_path(path))
        meta["type"] = "restored"
        self._enqueue(connection, None, encode_frame(meta))

    # The dispatch table must point at the overridden coroutines (the base
    # class dict captured the base functions).
    _COMMANDS = dict(ServiceServer._COMMANDS)
    _COMMANDS.update(
        {
            "subscribe": _cmd_subscribe,
            "subscribe_batch": _cmd_subscribe_batch,
            "feed": _cmd_feed,
            "finish": _cmd_finish,
            "stats": _cmd_stats,
            "checkpoint": _cmd_checkpoint,
            "restore": _cmd_restore,
        }
    )

    # ------------------------------------------------------ worker events

    def _on_worker_solution(self, name: str, frame_bytes: bytes) -> None:
        """Route one pre-encoded solution frame to its owner (hot path)."""
        handle = self._subscriptions.get(name)
        if handle is None:
            return  # unsubscribed while the solution was in flight
        handle.delivered += 1
        self._solutions_total += 1
        if handle.connection is None:
            if handle.callback is not None and not handle.detached:
                try:
                    frame = decode_frame(frame_bytes)
                    handle.callback(name, solution_from_payload(frame["solution"]))
                except Exception:
                    handle.callback_errors += 1
            return
        handle.connection.delivered += 1
        self._enqueue(handle.connection, name, frame_bytes)

    def _on_worker_abort(self, worker: _WorkerHandle, frame: Dict[str, Any]) -> None:
        """First worker to fail a document epoch aborts it front-wide."""
        if not self._doc_open or frame.get("doc") != self._doc_epoch:
            return  # stale: another worker already aborted this epoch
        streaming = self._stream_scanner is not None
        skip_mode = streaming and self._stream_options.get("on_error") != "raise"
        message = frame.get("message", "document aborted")
        feeder = self._feeder
        document = self._documents
        self._documents += 1
        self._aborted_documents += 1
        self._elements_total += frame.get("elements", 0)
        self._close_epoch()
        self._broadcast_eof(document, aborted=True, error=message)
        if (
            not skip_mode
            and frame.get("origin") == "feed"
            and feeder is not None
            and feeder in self._connections
        ):
            self._enqueue(feeder, None, encode_frame(error_frame(message, cmd="feed")))
        if streaming:
            if skip_mode:
                # Swallow the rest of this document; the stream resumes at
                # the next boundary the scanner reports.
                self._stream_skip_doc = True
            else:
                self._close_stream_session(reason="parse error")

    def _on_worker_crash(self, worker: _WorkerHandle) -> None:
        """Contain a dead worker: detach exactly its subscriptions."""
        affected = [
            name for name, index in self._routes.items() if index == worker.index
        ]
        for name in affected:
            handle = self._subscriptions.get(name)
            message = (
                f"worker {worker.index} died; subscription {name!r} was detached"
            )
            if handle is not None and handle.connection is not None:
                self._enqueue(
                    handle.connection,
                    None,
                    encode_frame({"type": "error", "message": message, "name": name}),
                )
            self._remove_subscription(name)
        if self._worker_stats and worker.index < len(self._worker_stats):
            self._worker_stats[worker.index]["alive"] = False

    # ------------------------------------------------------------ stats

    def stats(self) -> Dict[str, Any]:
        payload = super().stats()
        cached = []
        for worker, entry in zip(self._workers, self._worker_stats):
            entry = dict(entry)
            entry["alive"] = worker.alive
            entry["queue_depth"] = worker.queue_depth
            cached.append(entry)
        if cached:
            payload["workers"] = cached
            payload["machine_count"] = sum(e["machine_count"] for e in cached)
            payload["elements"] = max(
                self._elements_total, max(e["elements"] for e in cached)
            )
            busy = self._busy_seconds
            payload["events_per_sec"] = (
                round(payload["elements"] / busy, 1) if busy > 0 else 0.0
            )
        payload["document_open"] = self._doc_open
        payload["worker_count"] = len(self._workers)
        payload["shard_mode"] = "events" if self._events_mode else "broadcast"
        if cached:
            payload["worker_cpu_seconds"] = round(
                sum(e.get("cpu_seconds", 0.0) for e in cached), 4
            )
        return payload

    async def _refresh_worker_stats(self) -> None:
        for worker, entry in zip(self._workers, self._worker_stats):
            entry["alive"] = worker.alive
            entry["queue_depth"] = worker.queue_depth
            if not worker.alive:
                continue
            try:
                reply = await worker.call({"cmd": "stats"})
            except WorkerError:
                continue
            if reply.get("type") != "stats":
                continue
            for key in (
                "subscriptions",
                "machine_count",
                "elements",
                "events_per_sec",
                "cpu_seconds",
            ):
                if key in reply:
                    entry[key] = reply[key]

    # ------------------------------------------------------------ checkpoint

    async def _capture_checkpoint(self) -> Dict[str, Any]:
        """Gather one consistent snapshot per worker (version-2 payload).

        Holding the pipeline lock keeps feed broadcasts out of the gap
        between the per-worker snapshot requests, so every shard is taken
        at the same chunk boundary.
        """
        if self._stream_scanner is not None:
            raise CheckpointError(
                "cannot checkpoint while a stream session is open on the "
                "sharded front (its state spans processes); close it with "
                "stream_close first"
            )
        workers = self._alive_workers()
        if len(workers) != len(self._workers):
            raise CheckpointError("cannot checkpoint while a worker is down")
        async with self._pipeline_lock:
            # Captured under the lock so the front parser state and every
            # worker snapshot sit at the same chunk boundary.
            front_state = (
                self._front.snapshot_state() if self._front is not None else None
            )
            futures = [worker.request({"cmd": "snapshot"}) for worker in workers]
        replies = await asyncio.gather(*futures)
        shards = []
        for reply in replies:
            if reply.get("type") != "snapshot":
                raise CheckpointError(
                    reply.get("message", "worker snapshot failed")
                )
            shards.append(reply["snapshot"])
        payload: Dict[str, Any] = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION_SHARDED,
            "server": {
                "parser": self.parser,
                "workers": len(self._workers),
                "shard_mode": "events" if self._events_mode else "broadcast",
                "documents": self._documents,
                "aborted_documents": self._aborted_documents,
                "elements_total": self._elements_total,
                "solutions_total": self._solutions_total,
                "subscriptions": {
                    name: {
                        "query": handle.query,
                        "fingerprint": self._fingerprints.get(name),
                        "worker": self._routes.get(name),
                        "delivered": handle.delivered,
                        "dropped": handle.dropped,
                        "callback_errors": handle.callback_errors,
                        "local": handle.connection is None and not handle.detached,
                    }
                    for name, handle in self._subscriptions.items()
                },
            },
            "shards": shards,
        }
        if front_state is not None:
            payload["front"] = front_state
        return payload

    async def save_checkpoint_async(self, path: Optional[str] = None) -> Dict[str, Any]:
        target = path or self.checkpoint_path
        payload = await self._capture_checkpoint()
        data = await asyncio.to_thread(_encode_checkpoint, payload)
        await asyncio.to_thread(_write_atomically, target, data)
        return self._record_checkpoint(target, data)

    def save_checkpoint(self, path: Optional[str] = None) -> Dict[str, Any]:
        raise CheckpointError(
            "the sharded server checkpoints asynchronously; "
            "use save_checkpoint_async()"
        )

    def checkpoint_state(self) -> Dict[str, Any]:
        raise CheckpointError(
            "the sharded server checkpoints asynchronously; "
            "use _capture_checkpoint()"
        )

    async def restore_from_file(self, path: str) -> Dict[str, Any]:  # type: ignore[override]
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"malformed checkpoint {path!r}: {exc}") from exc
        await self.restore_state(payload)
        return {
            "path": path,
            "document": self._documents,
            "mid_document": self._doc_open,
            "subscriptions": len(self._subscriptions),
            "elements": self._elements_total,
        }

    async def restore_state(self, payload: Dict[str, Any]) -> None:  # type: ignore[override]
        """Restore a version-1 or version-2 checkpoint across the workers.

        Between documents (every shard idle) any worker count works: the
        front re-routes each subscription and the workers rebuild their
        machines from the query sources.  Mid-document, shard *i* carries
        worker *i*'s parse state, so the worker count must match.
        """
        if self._doc_open:
            raise CheckpointError("cannot restore while a document is in progress")
        if self._subscriptions:
            raise CheckpointError("cannot restore over existing subscriptions")
        if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"not a {CHECKPOINT_FORMAT} payload "
                f"(format={payload.get('format')!r})"
            )
        version = payload.get("version")
        if version == CHECKPOINT_VERSION_STREAM:
            raise CheckpointError(
                "stream-mode checkpoints (version 3) restore on the "
                "single-process server only"
            )
        if version not in (CHECKPOINT_VERSION, CHECKPOINT_VERSION_SHARDED):
            raise CheckpointError(f"unsupported checkpoint version {version!r}")
        meta = payload.get("server") or {}
        if version == CHECKPOINT_VERSION:
            shards = [payload["snapshot"]]
            sources = snapshot_subscription_sources(payload["snapshot"])
            counters = meta.get("subscriptions", {})
            sub_meta: Dict[str, Dict[str, Any]] = {
                name: {"query": source, **counters.get(name, {})}
                for name, source in sources.items()
            }
        else:
            shards = payload.get("shards")
            if not isinstance(shards, list) or not shards:
                raise CheckpointError("sharded checkpoint has no shards")
            sub_meta = meta.get("subscriptions", {})
        self.parser = meta.get("parser", self.parser)
        await self._ensure_workers()
        mid_document = any(
            isinstance(shard, dict) and shard.get("session") is not None
            for shard in shards
        )
        if mid_document:
            events_doc = any(
                isinstance(shard, dict)
                and isinstance(shard.get("session"), dict)
                and shard["session"].get("parser") == "events"
                for shard in shards
            )
            front_state = payload.get("front")
            if events_doc:
                # Validate before touching the workers so a refused restore
                # leaves them untouched.
                if not self._events_mode:
                    raise CheckpointError(
                        "this checkpoint was taken mid-document in events "
                        "shard mode; restore it with --shard-mode auto or "
                        "events (every worker must speak protocol v2)"
                    )
                if not isinstance(front_state, dict):
                    raise CheckpointError(
                        "events-mode checkpoint is missing the front parser "
                        "state"
                    )
            await self._restore_mid_document(shards, sub_meta)
            if self._doc_open and events_doc:
                try:
                    self._front = _FrontParser.restore(front_state, self.parser)
                except ViteXError as exc:
                    raise CheckpointError(
                        f"cannot replay the front parser spool: {exc}"
                    ) from exc
                # Fresh codec state on both ends of every pipe: the worker
                # restore installed fresh decoders, so the interning tables
                # restart together at this chunk boundary.
                self._front_encoder = EventFrameEncoder()
                self._doc_events = True
            elif self._doc_open:
                self._doc_events = False
        else:
            await self._restore_redistributed(sub_meta)
        for name, info in sub_meta.items():
            handle = self._subscriptions.get(name)
            if handle is None:  # pragma: no cover - restore paths build all
                continue
            handle.delivered = info.get("delivered", 0)
            handle.dropped = info.get("dropped", 0)
            handle.callback_errors = info.get("callback_errors", 0)
            handle.detached = not info.get("local", False)
        self._documents = meta.get("documents", 0)
        self._aborted_documents = meta.get("aborted_documents", 0)
        self._elements_total = meta.get("elements_total", 0)
        self._solutions_total = meta.get("solutions_total", 0)

    async def _restore_mid_document(
        self, shards: List[Dict[str, Any]], sub_meta: Dict[str, Dict[str, Any]]
    ) -> None:
        if len(shards) != len(self._workers):
            raise CheckpointError(
                f"mid-document checkpoint has {len(shards)} shard(s); "
                f"restore it with --workers {len(shards)}"
            )
        any_open = False
        for worker, shard in zip(self._workers, shards):
            reply = await worker.call({"cmd": "restore", "snapshot": shard})
            if reply.get("type") != "restored":
                raise CheckpointError(reply.get("message", "worker restore failed"))
            any_open = any_open or bool(reply.get("mid_document"))
            for name in reply.get("subscriptions", []):
                info = sub_meta.get(name, {})
                query = info.get("query", "")
                fingerprint = info.get("fingerprint") or (
                    self._fingerprint(query) if query else ""
                )
                handle = _SubscriptionHandle(name, query, None)
                self._subscriptions[name] = handle
                if fingerprint:
                    self._install_route(name, fingerprint, worker.index)
                else:  # pragma: no cover - meta always carries the query
                    self._routes[name] = worker.index
        self._doc_open = any_open

    async def _restore_redistributed(
        self, sub_meta: Dict[str, Dict[str, Any]]
    ) -> None:
        for name, info in sub_meta.items():
            query = info.get("query")
            if not isinstance(query, str) or not query:
                raise CheckpointError(
                    f"checkpoint is missing the query for subscription {name!r}"
                )
            fingerprint = info.get("fingerprint") or self._fingerprint(query)
            index = self._pick_worker(fingerprint)
            handle = _SubscriptionHandle(name, query, None)
            self._subscriptions[name] = handle
            self._install_route(name, fingerprint, index)
            reply = await self._workers[index].call(
                {"cmd": "subscribe", "query": query, "name": name}
            )
            if reply.get("type") == "error":
                raise CheckpointError(
                    f"re-subscribing {name!r} failed: {reply.get('message')}"
                )


__all__ = ["ShardedServiceServer", "WorkerError", "WORKER_PIPE_LIMIT"]
