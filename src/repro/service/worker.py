"""Shard worker process: one engine, driven over stdin/stdout pipes.

``python -m repro.service.worker --parser <name>`` is spawned by
:class:`repro.service.sharding.ShardedServiceServer` — never by users.  The
front process writes one JSON frame per line to the worker's stdin and
reads frames back from its stdout:

* Every command except ``feed`` gets **exactly one reply frame**, in
  command order — the front matches replies FIFO, like the client protocol.
* ``feed`` is fire-and-forget.  Solutions it produces are written as
  fast-path lines (:func:`~repro.service.protocol.encode_worker_solution`):
  the *pre-encoded client frame* prefixed with the subscription name, so
  the front routes on the name without JSON-decoding the payload.
* A parse failure emits an ``aborted`` push (``doc``, ``message``,
  ``elements``, ``origin``) and poisons that document epoch: later ``feed``
  frames carrying the same ``doc`` are dropped silently (they were already
  in flight when the abort happened).

The loop is deliberately synchronous — a worker does nothing but parse,
match and write, so an event loop would only add overhead.  Backpressure is
the pipe itself: the front always drains worker stdout, and client-facing
overload is handled by the front's bounded outboxes.

Worker commands (beyond the client-protocol subset)::

    {"cmd": "snapshot"}                  -> {"type": "snapshot", ...}
    {"cmd": "restore", "snapshot": ...}  -> {"type": "restored", ...}
    {"cmd": "drain"}                     -> {"type": "drained"} + exit 0

Stdin EOF also exits cleanly: if the front dies, its workers follow.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

from ..core.multi import MultiQueryEvaluator
from ..core.results import Solution
from ..core.session import StreamSession
from .protocol import (
    decode_frame,
    encode_frame,
    encode_worker_solution,
    solution_to_payload,
)


class ShardWorker:
    """The worker-side loop: engine state plus the pipe protocol."""

    def __init__(self, parser: str = "native") -> None:
        self.parser = parser
        self._engine = MultiQueryEvaluator(collect_statistics=False)
        self._session: Optional[StreamSession] = None
        #: Document epoch poisoned by a parse failure; feeds carrying it
        #: are in-flight stragglers and are dropped without a sound.
        self._failed_doc: Optional[int] = None
        self._documents = 0
        self._elements_total = 0
        self._solutions_total = 0
        self._busy_seconds = 0.0
        self._out: Optional[BinaryIO] = None

    # ------------------------------------------------------------ main loop

    def run(self, stdin: BinaryIO, stdout: BinaryIO) -> int:
        """Serve frames until ``drain`` or stdin EOF; returns the exit code."""
        self._out = stdout
        try:
            while True:
                line = stdin.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                if not self._handle_line(line):
                    break
        finally:
            self._engine.close()
        return 0

    def _handle_line(self, line: bytes) -> bool:
        """Process one frame; returns False when the worker should exit."""
        assert self._out is not None
        try:
            frame = decode_frame(line)
        except Exception as exc:
            self._write({"type": "error", "message": f"bad worker frame: {exc}"})
            self._out.flush()
            return True
        cmd = frame.get("cmd")
        keep_going = True
        if cmd == "feed":
            self._feed(frame)
        else:
            try:
                if cmd == "subscribe":
                    reply = self._cmd_subscribe(frame)
                elif cmd == "unsubscribe":
                    reply = self._cmd_unsubscribe(frame)
                elif cmd == "finish":
                    reply = self._cmd_finish(frame)
                elif cmd == "stats":
                    reply = self.stats()
                elif cmd == "ping":
                    reply = {"type": "pong"}
                elif cmd == "snapshot":
                    reply = self._cmd_snapshot(frame)
                elif cmd == "restore":
                    reply = self._cmd_restore(frame)
                elif cmd == "drain":
                    reply = {"type": "drained"}
                    keep_going = False
                else:
                    reply = {"type": "error", "message": f"unknown worker command {cmd!r}"}
            except Exception as exc:
                reply = {"type": "error", "message": str(exc)}
            self._write(reply)
        self._out.flush()
        return keep_going

    def _write(self, frame: Dict[str, Any]) -> None:
        assert self._out is not None
        self._out.write(encode_frame(frame))

    # ------------------------------------------------------------ commands

    def _cmd_subscribe(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        # The front owns naming (a shared namespace across workers), so
        # ``name`` is always present here.
        subscription = self._engine.subscribe(frame["query"], name=frame["name"])
        return {
            "type": "subscribed",
            "name": subscription.name,
            "query": subscription.query,
            "mid_stream": self._session is not None,
        }

    def _cmd_unsubscribe(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        name = frame["name"]
        self._engine.unregister(name)
        return {"type": "unsubscribed", "name": name}

    def _feed(self, frame: Dict[str, Any]) -> None:
        doc = frame.get("doc", 0)
        if doc == self._failed_doc:
            return
        if self._session is None:
            self._session = self._engine.session(parser=self.parser)
        started = time.perf_counter()
        try:
            pairs = self._session.feed_text(frame.get("data", ""))
        except Exception as exc:
            self._busy_seconds += time.perf_counter() - started
            self._abort(doc, str(exc), origin="feed")
            return
        self._busy_seconds += time.perf_counter() - started
        if pairs:
            self._emit(pairs)

    def _cmd_finish(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        doc = frame.get("doc", 0)
        if doc == self._failed_doc or self._session is None:
            # Epoch already died (the front raced a finish against an
            # in-flight abort); no message — the front answers the client
            # with its own "no document in progress".
            return {"type": "finished", "aborted": True, "elements": 0}
        session = self._session
        started = time.perf_counter()
        try:
            pairs = session.finish()
        except Exception as exc:
            self._busy_seconds += time.perf_counter() - started
            elements = self._abort(doc, str(exc), origin="finish")
            return {
                "type": "finished",
                "aborted": True,
                "elements": elements,
                "message": str(exc),
            }
        self._busy_seconds += time.perf_counter() - started
        if pairs:
            self._emit(pairs)
        elements = session.element_count
        self._elements_total += elements
        self._documents += 1
        self._session = None
        self._engine.reset()
        return {"type": "finished", "elements": elements}

    def _abort(self, doc: int, message: str, origin: str) -> int:
        """Tear the document down and push ``aborted``; returns elements."""
        elements = self._session.element_count if self._session is not None else 0
        self._elements_total += elements
        self._session = None
        self._failed_doc = doc
        self._write(
            {
                "type": "aborted",
                "doc": doc,
                "message": message,
                "elements": elements,
                "origin": origin,
            }
        )
        return elements

    def _cmd_snapshot(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self._session is not None:
            snapshot = self._session.snapshot()
        else:
            snapshot = self._engine.snapshot()
        return {
            "type": "snapshot",
            "snapshot": snapshot,
            "elements_total": self._elements_total,
        }

    def _cmd_restore(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self._session is not None or self._engine.machine_count:
            raise RuntimeError("cannot restore into a non-empty worker")
        engine = MultiQueryEvaluator(collect_statistics=False)
        session = engine.restore_session(frame["snapshot"])
        old = self._engine
        self._engine = engine
        self._session = session
        old.close()
        return {
            "type": "restored",
            "subscriptions": sorted(engine._subscriptions),
            "mid_document": session is not None,
        }

    def stats(self) -> Dict[str, Any]:
        elements = self._elements_total
        if self._session is not None:
            elements += self._session.element_count
        busy = self._busy_seconds
        return {
            "type": "stats",
            "pid": os.getpid(),
            "parser": self.parser,
            "machine_count": self._engine.machine_count,
            "subscriptions": len(self._engine._subscriptions),
            "documents": self._documents,
            "document_open": self._session is not None,
            "elements": elements,
            "events_per_sec": round(elements / busy, 1) if busy > 0 else 0.0,
            "solutions": self._solutions_total,
        }

    # ------------------------------------------------------------ solutions

    def _emit(self, pairs: List[Tuple[str, Solution]]) -> None:
        """Write delivered pairs as fast-path lines, one shared timestamp.

        The timestamp mirrors the single-process server: one clock read per
        routed batch.  ``time.monotonic`` is ``CLOCK_MONOTONIC``, the same
        clock asyncio's loop time uses, so front- and worker-stamped
        solutions are comparable.
        """
        assert self._out is not None
        ts = time.monotonic()
        self._solutions_total += len(pairs)
        for name, solution in pairs:
            frame = encode_frame(
                {
                    "type": "solution",
                    "name": name,
                    "ts": ts,
                    "solution": solution_to_payload(solution),
                }
            )
            self._out.write(encode_worker_solution(name, frame))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.worker",
        description="ViteX shard worker (spawned by the sharded service).",
    )
    parser.add_argument("--parser", default="native", help="XML parser backend")
    args = parser.parse_args(argv)
    worker = ShardWorker(parser=args.parser)
    return worker.run(sys.stdin.buffer, sys.stdout.buffer)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())


__all__ = ["ShardWorker", "main"]
