"""Shard worker process: one engine, driven over stdin/stdout pipes.

``python -m repro.service.worker --parser <name>`` is spawned by
:class:`repro.service.sharding.ShardedServiceServer` — never by users.  The
front process writes one JSON frame per line to the worker's stdin and
reads frames back from its stdout:

* Every command except ``feed`` gets **exactly one reply frame**, in
  command order — the front matches replies FIFO, like the client protocol.
* ``feed`` is fire-and-forget.  Solutions it produces are written as
  fast-path lines (:func:`~repro.service.protocol.encode_worker_solution`):
  the *pre-encoded client frame* prefixed with the subscription name, so
  the front routes on the name without JSON-decoding the payload.
* A parse failure emits an ``aborted`` push (``doc``, ``message``,
  ``elements``, ``origin``) and poisons that document epoch: later ``feed``
  frames carrying the same ``doc`` are dropped silently (they were already
  in flight when the abort happened).

The loop is deliberately synchronous — a worker does nothing but parse,
match and write, so an event loop would only add overhead.  Backpressure is
the pipe itself: the front always drains worker stdout, and client-facing
overload is handled by the front's bounded outboxes.

Worker commands (beyond the client-protocol subset)::

    {"cmd": "hello"}                     -> {"type": "hello", "protocols": [1, 2], ...}
    {"cmd": "abort", "doc": N}           -> (no reply; front-initiated teardown)
    {"cmd": "snapshot"}                  -> {"type": "snapshot", ...}
    {"cmd": "restore", "snapshot": ...}  -> {"type": "restored", ...}
    {"cmd": "drain"}                     -> {"type": "drained"} + exit 0

Protocol v2 (parse-once events mode) adds the binary payload path: a
``#<doc> <length>`` header line followed by ``length`` raw bytes of
event-frame payload (:mod:`repro.xmlstream.eventcodec`).  The worker
decodes the frame and pushes the events through an
:class:`~repro.core.session.EventStreamSession` — no parser runs in this
process.  ``abort`` exists because in events mode parse errors happen in
the *front*: the worker is told to tear the document down instead of
detecting the failure itself.

Stdin EOF also exits cleanly: if the front dies, its workers follow.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, BinaryIO, Dict, List, Optional, Tuple, Union

from ..core.multi import MultiQueryEvaluator
from ..core.results import Solution
from ..core.session import EventStreamSession, StreamSession
from .protocol import (
    EVENTS_PREFIX,
    PROTOCOL_V2,
    WORKER_PROTOCOLS,
    decode_frame,
    encode_frame,
    encode_worker_solution,
    parse_event_header,
    solution_to_payload,
)

#: Environment override capping the highest protocol version a worker
#: advertises — the test hook proving the front's v1 fallback against a
#: worker that pretends not to know v2.
MAX_PROTOCOL_ENV = "VITEX_WORKER_MAX_PROTOCOL"


class ShardWorker:
    """The worker-side loop: engine state plus the pipe protocol."""

    def __init__(self, parser: str = "native", max_protocol: int = PROTOCOL_V2) -> None:
        self.parser = parser
        self.protocols = [v for v in WORKER_PROTOCOLS if v <= max_protocol]
        self._engine = MultiQueryEvaluator(collect_statistics=False)
        self._session: Optional[Union[StreamSession, EventStreamSession]] = None
        #: Document epoch poisoned by a parse failure; feeds carrying it
        #: are in-flight stragglers and are dropped without a sound.
        self._failed_doc: Optional[int] = None
        self._documents = 0
        self._elements_total = 0
        self._solutions_total = 0
        self._busy_seconds = 0.0
        self._out: Optional[BinaryIO] = None

    # ------------------------------------------------------------ main loop

    def run(self, stdin: BinaryIO, stdout: BinaryIO) -> int:
        """Serve frames until ``drain`` or stdin EOF; returns the exit code."""
        self._out = stdout
        try:
            while True:
                line = stdin.readline()
                if not line:
                    break
                if line.startswith(EVENTS_PREFIX):
                    # v2 binary event payload: header line + raw bytes.
                    try:
                        doc, length = parse_event_header(line)
                    except Exception as exc:
                        self._write(
                            {"type": "error", "message": f"bad worker frame: {exc}"}
                        )
                        stdout.flush()
                        continue
                    payload = stdin.read(length)
                    if payload is None or len(payload) < length:
                        break  # front died mid-payload; follow it down
                    self._feed_events(doc, payload)
                    stdout.flush()
                    continue
                if not line.strip():
                    continue
                if not self._handle_line(line):
                    break
        finally:
            self._engine.close()
        return 0

    def _handle_line(self, line: bytes) -> bool:
        """Process one frame; returns False when the worker should exit."""
        assert self._out is not None
        try:
            frame = decode_frame(line)
        except Exception as exc:
            self._write({"type": "error", "message": f"bad worker frame: {exc}"})
            self._out.flush()
            return True
        cmd = frame.get("cmd")
        keep_going = True
        if cmd == "feed":
            self._feed(frame)
        elif cmd == "abort":
            # Fire-and-forget like feed: the front already accounted for
            # the abort (it initiated it); a reply would desync the FIFO.
            self._cmd_abort(frame)
        else:
            try:
                if cmd == "subscribe":
                    reply = self._cmd_subscribe(frame)
                elif cmd == "unsubscribe":
                    reply = self._cmd_unsubscribe(frame)
                elif cmd == "finish":
                    reply = self._cmd_finish(frame)
                elif cmd == "stats":
                    reply = self.stats()
                elif cmd == "ping":
                    reply = {"type": "pong"}
                elif cmd == "hello":
                    reply = {
                        "type": "hello",
                        "pid": os.getpid(),
                        "parser": self.parser,
                        "protocols": self.protocols,
                    }
                elif cmd == "snapshot":
                    reply = self._cmd_snapshot(frame)
                elif cmd == "restore":
                    reply = self._cmd_restore(frame)
                elif cmd == "drain":
                    reply = {"type": "drained"}
                    keep_going = False
                else:
                    reply = {"type": "error", "message": f"unknown worker command {cmd!r}"}
            except Exception as exc:
                reply = {"type": "error", "message": str(exc)}
            self._write(reply)
        self._out.flush()
        return keep_going

    def _write(self, frame: Dict[str, Any]) -> None:
        assert self._out is not None
        self._out.write(encode_frame(frame))

    # ------------------------------------------------------------ commands

    def _cmd_subscribe(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        # The front owns naming (a shared namespace across workers), so
        # ``name`` is always present here.
        subscription = self._engine.subscribe(frame["query"], name=frame["name"])
        return {
            "type": "subscribed",
            "name": subscription.name,
            "query": subscription.query,
            "mid_stream": self._session is not None,
        }

    def _cmd_unsubscribe(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        name = frame["name"]
        self._engine.unregister(name)
        return {"type": "unsubscribed", "name": name}

    def _feed(self, frame: Dict[str, Any]) -> None:
        doc = frame.get("doc", 0)
        if doc == self._failed_doc:
            return
        if self._session is None:
            self._session = self._engine.session(parser=self.parser)
        started = time.perf_counter()
        try:
            pairs = self._session.feed_text(frame.get("data", ""))
        except Exception as exc:
            self._busy_seconds += time.perf_counter() - started
            self._abort(doc, str(exc), origin="feed")
            return
        self._busy_seconds += time.perf_counter() - started
        if pairs:
            self._emit(pairs)

    def _feed_events(self, doc: int, payload: bytes) -> None:
        """Protocol v2 feed: push one binary frame through the session.

        Fire-and-forget like a v1 ``feed``; decode or dispatch failures
        surface as an ``aborted`` push exactly like a local parse error
        (they indicate a corrupt pipe or an engine bug, both fatal to the
        document but contained to it).  The session owns the frame codec
        and drives the fused decode-into-transitions path, so no event
        objects are materialised for the dominant record kinds.
        """
        if doc == self._failed_doc:
            return  # in-flight payload for an epoch the abort already killed
        if self._session is None:
            self._session = self._engine.event_session()
        started = time.perf_counter()
        try:
            pairs = self._session.feed_frame(payload)  # type: ignore[union-attr]
        except Exception as exc:
            self._busy_seconds += time.perf_counter() - started
            self._abort(doc, str(exc), origin="feed")
            return
        self._busy_seconds += time.perf_counter() - started
        if pairs:
            self._emit(pairs)

    def _cmd_abort(self, frame: Dict[str, Any]) -> None:
        """Front-initiated document teardown (events mode parse failure).

        Quiet by design: no ``aborted`` push travels back — the front
        already did its abort accounting before sending this command; the
        worker only has to reach the same clean state a local abort would.
        """
        doc = frame.get("doc", 0)
        session = self._session
        if session is not None:
            elements = session.element_count
            if not session.failed:
                if isinstance(session, EventStreamSession):
                    session.abort()
                else:
                    session._abort()
            self._elements_total += elements
            self._session = None
        self._failed_doc = doc

    def _cmd_finish(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        doc = frame.get("doc", 0)
        if doc == self._failed_doc or self._session is None:
            # Epoch already died (the front raced a finish against an
            # in-flight abort); no message — the front answers the client
            # with its own "no document in progress".
            return {"type": "finished", "aborted": True, "elements": 0}
        session = self._session
        started = time.perf_counter()
        try:
            pairs = session.finish()
        except Exception as exc:
            self._busy_seconds += time.perf_counter() - started
            elements = self._abort(doc, str(exc), origin="finish")
            return {
                "type": "finished",
                "aborted": True,
                "elements": elements,
                "message": str(exc),
            }
        self._busy_seconds += time.perf_counter() - started
        if pairs:
            self._emit(pairs)
        elements = session.element_count
        self._elements_total += elements
        self._documents += 1
        self._session = None
        self._engine.reset()
        return {"type": "finished", "elements": elements}

    def _abort(self, doc: int, message: str, origin: str) -> int:
        """Tear the document down and push ``aborted``; returns elements."""
        session = self._session
        elements = session.element_count if session is not None else 0
        if session is not None and not session.failed:
            # Raw-XML sessions abort themselves inside feed/finish; an
            # events-mode *decode* failure happens outside the session, so
            # reset the engine here before the next document.
            if isinstance(session, EventStreamSession):
                session.abort()
            else:
                session._abort()
        self._elements_total += elements
        self._session = None
        self._failed_doc = doc
        self._write(
            {
                "type": "aborted",
                "doc": doc,
                "message": message,
                "elements": elements,
                "origin": origin,
            }
        )
        return elements

    def _cmd_snapshot(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self._session is not None:
            snapshot = self._session.snapshot()
        else:
            snapshot = self._engine.snapshot()
        return {
            "type": "snapshot",
            "snapshot": snapshot,
            "elements_total": self._elements_total,
        }

    def _cmd_restore(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        if self._session is not None or self._engine.machine_count:
            raise RuntimeError("cannot restore into a non-empty worker")
        engine = MultiQueryEvaluator(collect_statistics=False)
        session = engine.restore_session(frame["snapshot"])
        old = self._engine
        self._engine = engine
        self._session = session
        # An events-mode restore continues mid-document with a fresh codec
        # pair: the restored session starts a fresh decoder and the front
        # resets its encoder at the same stream boundary.
        old.close()
        return {
            "type": "restored",
            "subscriptions": sorted(engine._subscriptions),
            "mid_document": session is not None,
        }

    def stats(self) -> Dict[str, Any]:
        elements = self._elements_total
        if self._session is not None:
            elements += self._session.element_count
        busy = self._busy_seconds
        times = os.times()
        return {
            "type": "stats",
            "pid": os.getpid(),
            "parser": self.parser,
            "machine_count": self._engine.machine_count,
            "subscriptions": len(self._engine._subscriptions),
            "documents": self._documents,
            "document_open": self._session is not None,
            "elements": elements,
            "events_per_sec": round(elements / busy, 1) if busy > 0 else 0.0,
            "solutions": self._solutions_total,
            # This process's total CPU (user+system): the honest cost of
            # re-parsing under v1 broadcast vs decoding under v2 events.
            "cpu_seconds": round(times.user + times.system, 4),
        }

    # ------------------------------------------------------------ solutions

    def _emit(self, pairs: List[Tuple[str, Solution]]) -> None:
        """Write delivered pairs as fast-path lines, one shared timestamp.

        The timestamp mirrors the single-process server: one clock read per
        routed batch.  ``time.monotonic`` is ``CLOCK_MONOTONIC``, the same
        clock asyncio's loop time uses, so front- and worker-stamped
        solutions are comparable.
        """
        assert self._out is not None
        ts = time.monotonic()
        self._solutions_total += len(pairs)
        for name, solution in pairs:
            frame = encode_frame(
                {
                    "type": "solution",
                    "name": name,
                    "ts": ts,
                    "solution": solution_to_payload(solution),
                }
            )
            self._out.write(encode_worker_solution(name, frame))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.worker",
        description="ViteX shard worker (spawned by the sharded service).",
    )
    parser.add_argument("--parser", default="native", help="XML parser backend")
    parser.add_argument(
        "--max-protocol",
        type=int,
        default=int(os.environ.get(MAX_PROTOCOL_ENV, str(PROTOCOL_V2))),
        help="highest worker-pipe protocol version to advertise",
    )
    args = parser.parse_args(argv)
    worker = ShardWorker(parser=args.parser, max_protocol=args.max_protocol)
    return worker.run(sys.stdin.buffer, sys.stdout.buffer)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())


__all__ = ["ShardWorker", "main"]
