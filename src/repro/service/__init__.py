"""Streaming subscription service: standing XPath queries over live XML.

The paper's motivating scenario — many clients holding standing queries
against one XML stream that is still arriving — needs more than a library:
it needs a long-lived process that owns the shared
:class:`~repro.core.multi.MultiQueryEvaluator`, accepts the stream from the
wire, and fans solutions out to subscribers as each chunk is parsed.  This
package is that process:

* :mod:`repro.service.protocol` — the line-delimited JSON wire protocol
  (``subscribe`` / ``unsubscribe`` / ``feed`` / ``finish`` / ``stats`` and
  the ``solution`` push frames);
* :mod:`repro.service.server` — the asyncio server: per-connection
  subscription ownership, chunk-level push parsing via
  :class:`~repro.core.session.StreamSession`, bounded per-client outboxes
  with drop-oldest backpressure, graceful teardown;
* :mod:`repro.service.client` — the asyncio client used by ``vitex
  publish`` / ``vitex subscribe`` and the M2 benchmark.
"""

from .client import ServiceClient, ServiceConnection, ServiceError
from .protocol import (
    decode_frame,
    encode_frame,
    solution_from_payload,
    solution_to_payload,
)
from .server import ServiceServer

__all__ = [
    "ServiceClient",
    "ServiceConnection",
    "ServiceError",
    "ServiceServer",
    "decode_frame",
    "encode_frame",
    "solution_from_payload",
    "solution_to_payload",
]
