"""Asyncio client for the subscription service.

:class:`ServiceConnection` speaks the line-delimited JSON protocol of
:mod:`repro.service.protocol`.  A background reader task splits incoming
frames into two lanes:

* **replies** (``subscribed`` / ``unsubscribed`` / ``finished`` / ``stats``
  / ``pong`` / command ``error``) resolve pending request futures in FIFO
  order — the server answers commands in order per connection;
* **pushes** (``solution`` / ``eof`` / unsolicited ``error``) land in an
  internal queue consumed via :meth:`next_push` or the :meth:`solutions`
  iterator.

One client can be publisher, subscriber, or both.  Typical subscriber::

    client = await ServiceConnection.connect(host, port)
    await client.subscribe("//quote[symbol]")
    async for name, solution, frame in client.solutions():
        print(name, solution.describe())

and publisher::

    await client.feed(chunk)        # repeat as chunks arrive
    summary = await client.finish()

:class:`ServiceClient` is the deprecated public spelling of the same class —
it warns on construction and points at the :func:`repro.connect` /
:class:`repro.RemoteEngine` facade, which layers the unified verb set
(``subscribe`` → handles, ``open``/``publish``, ``matches``) on top of this
connection.
"""

from __future__ import annotations

import asyncio
import warnings
from collections import deque
from typing import Any, AsyncIterator, Deque, Dict, Optional, Sequence, Tuple

from ..core.results import Solution
from ..errors import ViteXError
from .protocol import MAX_FRAME_BYTES, decode_frames, encode_frame, solution_from_payload
from .server import DEFAULT_PORT

#: Reply frame types, matched FIFO to in-flight commands.
_REPLY_TYPES = frozenset(
    {
        "subscribed",
        "subscribed_batch",
        "unsubscribed",
        "finished",
        "stats",
        "pong",
        "checkpointed",
        "restored",
        "stream_opened",
        "stream_closed",
    }
)

#: Commands that get a reply frame.  An ``error`` naming one of these
#: resolves the oldest pending request; errors for fire-and-forget commands
#: (``feed``) and unsolicited errors go to the push lane instead.
_REQUEST_CMDS = frozenset(
    {
        "subscribe",
        "subscribe_batch",
        "unsubscribe",
        "finish",
        "stats",
        "ping",
        "checkpoint",
        "restore",
        "stream_open",
        "stream_close",
    }
)


class ServiceError(ViteXError):
    """An ``error`` frame received from the service."""


class ServiceConnection:
    """One connection to a :class:`~repro.service.server.ServiceServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Deque[asyncio.Future] = deque()
        self._pushes: asyncio.Queue = asyncio.Queue()
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = DEFAULT_PORT
    ) -> "ServiceConnection":
        """Open a connection to the service."""
        reader, writer = await asyncio.open_connection(host, port, limit=MAX_FRAME_BYTES)
        return cls(reader, writer)

    # ------------------------------------------------------------ commands

    async def subscribe(
        self,
        query: str,
        name: Optional[str] = None,
        replay_window: bool = False,
    ) -> str:
        """Register a standing query; returns the (possibly auto-) name.

        ``query`` may also be a compiled :class:`repro.api.Query`; its
        source text is what travels on the wire.  With
        ``replay_window=True`` (needs an open stream session with
        retention, see :meth:`stream_open`) the server replays its
        retained document window to this subscription before live
        delivery begins; the replayed ``solution`` pushes carry
        ``"replayed": true`` and the ``subscribed`` reply counts them.
        """
        if not isinstance(query, str):  # compiled repro.api.Query
            query = query.source
        frame: Dict[str, Any] = {"cmd": "subscribe", "query": query}
        if name is not None:
            frame["name"] = name
        if replay_window:
            frame["replay_window"] = True
        reply = await self._request(frame)
        return reply["name"]

    async def subscribe_batch(
        self, items: Sequence[Tuple[str, Optional[str]]]
    ) -> list:
        """Register many standing queries in one ``subscribe_batch`` frame.

        ``items`` is a sequence of ``(query, name)`` pairs (``name`` may be
        None for an auto-assigned name; a query may be a compiled
        :class:`repro.api.Query`).  Returns the assigned names in item
        order.  The server applies the batch all-or-nothing: on any
        failure no subscription from it survives and this raises
        :class:`ServiceError`.  The caller keeps the encoded frame under
        :data:`~repro.service.protocol.MAX_FRAME_BYTES`;
        :meth:`repro.api.remote.RemoteEngine.subscribe_many` chunks large
        batches automatically.
        """
        payload = []
        for query, name in items:
            if not isinstance(query, str):  # compiled repro.api.Query
                query = query.source
            entry: Dict[str, Any] = {"query": query}
            if name is not None:
                entry["name"] = name
            payload.append(entry)
        reply = await self._request({"cmd": "subscribe_batch", "items": payload})
        return [entry["name"] for entry in reply["subscriptions"]]

    async def unsubscribe(self, name: str) -> None:
        """Drop a subscription owned by this connection."""
        await self._request({"cmd": "unsubscribe", "name": name})

    async def feed(self, data: str) -> None:
        """Send one XML text chunk (no reply; parse errors arrive as pushes)."""
        await self._send({"cmd": "feed", "data": data})

    async def finish(self) -> Dict[str, Any]:
        """End the current document; returns the ``finished`` reply."""
        return await self._request({"cmd": "finish"})

    async def stream_open(self, **options: Any) -> Dict[str, Any]:
        """Open an infinite-stream session on the server.

        Keyword options travel verbatim in the ``stream_open`` frame:
        ``retain_documents`` / ``retain_bytes`` (rolling replay retention),
        ``window_documents`` (stats window), ``on_error`` (``"skip"``
        default: a malformed document is skipped and the stream resumes at
        the next boundary), ``idle_timeout`` and ``heartbeat_interval``
        (seconds; both off by default).  While the stream is open, ``feed``
        frames carry concatenated documents whose boundaries the server
        autodetects; each completed document broadcasts an ``eof`` push.
        """
        frame: Dict[str, Any] = {"cmd": "stream_open"}
        for key, value in options.items():
            if value is not None:
                frame[key] = value
        return await self._request(frame)

    async def stream_close(self) -> Dict[str, Any]:
        """End the stream session; returns its final stats payload."""
        return await self._request({"cmd": "stream_close"})

    async def stats(self) -> Dict[str, Any]:
        """Fetch the server's ``stats`` frame."""
        return await self._request({"cmd": "stats"})

    async def ping(self) -> None:
        """Round-trip a ``ping``."""
        await self._request({"cmd": "ping"})

    async def checkpoint(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Ask the server to write a checkpoint file; returns its metadata.

        Without ``path`` the server uses its configured checkpoint path.
        The reply carries ``path``, ``bytes``, ``document`` and
        ``mid_document``.
        """
        frame: Dict[str, Any] = {"cmd": "checkpoint"}
        if path is not None:
            frame["path"] = path
        return await self._request(frame)

    async def restore(self, path: str) -> Dict[str, Any]:
        """Ask an idle, empty server to restore a checkpoint file."""
        return await self._request({"cmd": "restore", "path": path})

    # ------------------------------------------------------------ pushes

    async def next_push(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Await the next push frame (``solution`` / ``eof`` / ``error``).

        Raises :class:`asyncio.TimeoutError` on timeout and
        :class:`ConnectionError` when the connection is gone and the queue
        is drained.
        """
        if self._closed and self._pushes.empty():
            raise ConnectionError("service connection closed")
        getter = self._pushes.get()
        frame = await (asyncio.wait_for(getter, timeout) if timeout else getter)
        if frame is None:
            raise ConnectionError("service connection closed")
        return frame

    def pending_pushes(self) -> list:
        """Drain already-received push frames without blocking.

        Useful for publishers: ``feed`` errors arrive on the push lane, so
        after a round-trip (``ping``/``finish``) any parse failure for the
        chunks sent so far is guaranteed to be here.
        """
        frames = []
        while True:
            try:
                frame = self._pushes.get_nowait()
            except asyncio.QueueEmpty:
                return frames
            if frame is not None:
                frames.append(frame)

    async def solutions(
        self, stop_at_eof: bool = False
    ) -> AsyncIterator[Tuple[str, Solution, Dict[str, Any]]]:
        """Iterate ``(name, solution, frame)`` for incoming solution pushes.

        Non-solution pushes are skipped, except that ``stop_at_eof=True``
        ends the iteration at the next ``eof`` frame; iteration also ends
        when the connection closes.
        """
        while True:
            try:
                frame = await self.next_push()
            except ConnectionError:
                return
            kind = frame.get("type")
            if kind == "solution":
                yield (
                    frame["name"],
                    solution_from_payload(frame["solution"]),
                    frame,
                )
            elif kind == "eof" and stop_at_eof:
                return

    # ------------------------------------------------------------ lifecycle

    async def close(self) -> None:
        """Close the connection and stop the reader task.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._drain_pending(ConnectionError("service connection closed"))

    async def __aenter__(self) -> "ServiceConnection":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------ internals

    async def _send(self, frame: Dict[str, Any]) -> None:
        if self._closed:
            raise ConnectionError("service connection closed")
        self._writer.write(encode_frame(frame))
        await self._writer.drain()

    async def _request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(future)
        try:
            await self._send(frame)
        except BaseException:
            self._pending.remove(future)
            raise
        return await future

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                # Batch-aware: a line may carry one frame or a JSON array of
                # frames (the server's writer coalesces a whole outbox drain);
                # either way the contained frames dispatch in order.
                for frame in decode_frames(line):
                    kind = frame.get("type")
                    if kind in _REPLY_TYPES:
                        if self._pending:
                            self._pending.popleft().set_result(frame)
                    elif (
                        kind == "error"
                        and frame.get("cmd") in _REQUEST_CMDS
                        and self._pending
                    ):
                        self._pending.popleft().set_exception(
                            ServiceError(frame.get("message", "service error"))
                        )
                    else:
                        self._pushes.put_nowait(frame)
        except asyncio.CancelledError:
            raise
        except Exception:
            # Connection torn down mid-read (or a malformed frame): the
            # finally block marks the client closed and wakes all waiters.
            pass
        finally:
            self._closed = True
            self._drain_pending(ConnectionError("service connection closed"))
            self._pushes.put_nowait(None)  # wake next_push waiters

    def _drain_pending(self, exc: Exception) -> None:
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(exc)


class ServiceClient(ServiceConnection):
    """Deprecated spelling of :class:`ServiceConnection`.

    .. deprecated:: 1.1
       Use :func:`repro.connect` (→ :class:`repro.RemoteEngine`) for the
       unified facade, or :class:`ServiceConnection` for the raw protocol
       client.  ``ServiceClient`` remains behaviourally identical; it only
       adds this warning.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        warnings.warn(
            "ServiceClient is deprecated; use repro.connect() / "
            "repro.RemoteEngine (or repro.service.client.ServiceConnection "
            "for the raw protocol client)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(reader, writer)


__all__ = ["ServiceClient", "ServiceConnection", "ServiceError"]
