"""The asyncio subscription server: one shared engine, many subscribers.

Architecture::

    client A ──subscribe──▶ ┌──────────────────────────────┐
    client B ──subscribe──▶ │  ServiceServer               │
                            │   MultiQueryEvaluator (one)  │──▶ outbox A ──▶ A
    publisher ──feed/──────▶│   StreamSession (per doc)    │──▶ outbox B ──▶ B
               finish       └──────────────────────────────┘

* **One engine, one stream.**  All connections share a single
  :class:`~repro.core.multi.MultiQueryEvaluator`; ``feed`` frames from any
  connection advance the one global document through a push-mode
  :class:`~repro.core.session.StreamSession`.  Subscribing mid-document is
  allowed and follows the engine's remainder-only semantics.
* **Per-connection subscription ownership.**  A subscription belongs to the
  connection that created it: only that connection may unsubscribe it, its
  solutions go only to that connection's outbox, and closing the connection
  unregisters everything it owned (releasing compiled-query cache refs).
* **Bounded outboxes, drop-oldest backpressure.**  Each connection has a
  bounded frame queue drained by its own writer task.  The parse loop never
  blocks on a slow consumer: when an outbox is full the *oldest* frame is
  dropped and counted (per connection and per subscription), favouring
  fresh solutions — the stock-ticker trade-off.
* **Document lifecycle.**  ``finish`` ends the current document: the
  publisher gets a ``finished`` reply, every subscriber connection gets an
  ``eof`` frame, and the engine resets for the next document while keeping
  all subscriptions registered (standing queries).  A malformed chunk
  aborts the document the same way (``eof`` with ``aborted``), leaving the
  machines clean.

Parsing runs synchronously on the event loop — chunks are bounded by
:data:`~repro.service.protocol.MAX_FRAME_BYTES`, so each ``feed`` is a
bounded slice of CPU.  Sharding across processes is the roadmap's next step.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..core.multi import MultiQueryEvaluator
from ..core.results import Solution
from ..core.session import StreamSession
from ..errors import ViteXError
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    solution_to_payload,
)

#: Default TCP port (unassigned range; "ViteX" on a phone keypad is 84839,
#: which does not fit, so the year of the paper it reproduces: 2005 → 8005).
DEFAULT_PORT = 8005

#: Default per-connection outbox bound (frames).
DEFAULT_OUTBOX_LIMIT = 4096


class _SubscriptionHandle:
    """Server-side bookkeeping for one registered subscription."""

    __slots__ = (
        "name",
        "query",
        "connection",
        "callback",
        "delivered",
        "dropped",
        "callback_errors",
    )

    def __init__(
        self,
        name: str,
        query: str,
        connection: Optional["_Connection"],
        callback: Optional[Callable[[str, Solution], None]] = None,
    ) -> None:
        self.name = name
        self.query = query
        self.connection = connection  # None for server-local subscriptions
        self.callback = callback
        self.delivered = 0
        self.dropped = 0
        self.callback_errors = 0


class _Connection:
    """One client connection: reader state, bounded outbox, writer task."""

    __slots__ = (
        "reader",
        "writer",
        "outbox",
        "wake",
        "writer_task",
        "handler_task",
        "names",
        "delivered",
        "dropped",
        "peer",
    )

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.outbox: Deque[Tuple[Optional[str], bytes]] = deque()
        self.wake = asyncio.Event()
        self.writer_task: Optional[asyncio.Task] = None
        self.handler_task: Optional[asyncio.Task] = None
        self.names: List[str] = []  # subscriptions owned, registration order
        self.delivered = 0
        self.dropped = 0
        try:
            self.peer = writer.get_extra_info("peername")
        except Exception:  # pragma: no cover - transport without peername
            self.peer = None


class ServiceServer:
    """Long-lived subscription service over one shared TwigM engine."""

    def __init__(
        self,
        parser: str = "native",
        outbox_limit: int = DEFAULT_OUTBOX_LIMIT,
    ) -> None:
        if outbox_limit <= 0:
            raise ValueError("outbox_limit must be positive")
        self.parser = parser
        self._outbox_limit = outbox_limit
        self._engine = MultiQueryEvaluator(collect_statistics=False)
        self._session: Optional[StreamSession] = None
        self._connections: set = set()
        self._subscriptions: Dict[str, _SubscriptionHandle] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        # Lifetime counters for /stats.
        self._documents = 0
        self._elements_total = 0
        self._solutions_total = 0
        self._busy_seconds = 0.0
        self._started_at = time.monotonic()

    # ------------------------------------------------------------ lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> None:
        """Bind and start accepting connections (use ``port=0`` for an
        ephemeral port; see :attr:`address`)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_FRAME_BYTES
        )

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The first bound ``(host, port)``, once started."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        """Block serving until cancelled or :meth:`close` is called."""
        if self._server is None:
            raise RuntimeError("call start() first")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        """Graceful teardown: stop accepting, drop connections, release the
        engine's compiled-query cache references.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        connections = list(self._connections)
        for connection in connections:
            await self._drop_connection(connection)
        # Reap the per-connection handler tasks so shutdown leaves no
        # pending tasks behind for the loop to complain about.
        current = asyncio.current_task()
        for connection in connections:
            task = connection.handler_task
            if task is None or task is current:
                continue
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._session = None
        self._engine.close()

    @property
    def engine(self) -> MultiQueryEvaluator:
        """The shared engine (read-mostly; the server owns its lifecycle)."""
        return self._engine

    # -------------------------------------------------- local subscriptions

    def add_local_subscription(
        self,
        query: str,
        name: Optional[str] = None,
        callback: Optional[Callable[[str, Solution], None]] = None,
    ) -> str:
        """Register a server-owned standing query (``vitex serve --watch``).

        Solutions invoke ``callback(name, solution)`` on the event loop
        instead of travelling to a connection.  Returns the subscription
        name.
        """
        subscription = self._engine.register(query, name=name)
        handle = _SubscriptionHandle(
            subscription.name, subscription.query, None, callback
        )
        self._subscriptions[subscription.name] = handle
        return subscription.name

    # ------------------------------------------------------------ stats

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: engine shape, rates, delivery counters."""
        elements = self._elements_total
        if self._session is not None:
            elements += self._session.element_count
        busy = self._busy_seconds
        return {
            "type": "stats",
            "parser": self.parser,
            "machine_count": self._engine.machine_count,
            "subscriptions": len(self._subscriptions),
            "connections": len(self._connections),
            "documents": self._documents,
            "elements": elements,
            "events_per_sec": round(elements / busy, 1) if busy > 0 else 0.0,
            "solutions": self._solutions_total,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "subscription_detail": {
                name: {
                    "query": handle.query,
                    "delivered": handle.delivered,
                    "dropped": handle.dropped,
                    "callback_errors": handle.callback_errors,
                    "local": handle.connection is None,
                }
                for name, handle in self._subscriptions.items()
            },
        }

    # ------------------------------------------------------ connection I/O

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(reader, writer)
        self._connections.add(connection)
        connection.handler_task = asyncio.current_task()
        connection.writer_task = asyncio.ensure_future(self._writer_loop(connection))
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Frame exceeded MAX_FRAME_BYTES: protocol violation.
                    self._enqueue(
                        connection,
                        None,
                        encode_frame(error_frame("frame too large; closing")),
                    )
                    break
                if not line:
                    break
                if line.strip():
                    self._dispatch(connection, line)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Cancelled by close(): finish cleanly so the reaping await in
            # close() (and the loop's shutdown) sees a completed task.
            pass
        finally:
            await self._drop_connection(connection)

    async def _writer_loop(self, connection: _Connection) -> None:
        """Drain the outbox; the only place that awaits socket writes."""
        writer = connection.writer
        outbox = connection.outbox
        try:
            while True:
                await connection.wake.wait()
                connection.wake.clear()
                while outbox:
                    batch: List[bytes] = []
                    while outbox and len(batch) < 128:
                        batch.append(outbox.popleft()[1])
                    writer.write(b"".join(batch))
                    await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    def _enqueue(
        self, connection: _Connection, name: Optional[str], frame: bytes
    ) -> None:
        """Queue a frame; drop the oldest *solution* when the bound is hit.

        Never blocks and never awaits: called from the parse loop.  Only
        solution frames (``name`` set) are droppable — losing a reply or an
        ``eof`` would wedge the client protocol, and control frames are
        bounded by the client's own request rate, so exempting them keeps
        the outbox bound meaningful where it matters (solution fan-out).
        """
        outbox = connection.outbox
        if len(outbox) >= self._outbox_limit:
            for index, (queued_name, _) in enumerate(outbox):
                if queued_name is not None:
                    del outbox[index]
                    connection.dropped += 1
                    handle = self._subscriptions.get(queued_name)
                    if handle is not None:
                        handle.dropped += 1
                    break
            # All-control outbox: append anyway; see the docstring.
        outbox.append((name, frame))
        connection.wake.set()

    async def _drop_connection(self, connection: _Connection) -> None:
        if connection not in self._connections:
            return
        self._connections.discard(connection)
        for name in list(connection.names):
            self._remove_subscription(name)
        if connection.writer_task is not None:
            connection.writer_task.cancel()
            try:
                await connection.writer_task
            except asyncio.CancelledError:
                pass
        try:
            connection.writer.close()
            await connection.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def _remove_subscription(self, name: str) -> None:
        handle = self._subscriptions.pop(name, None)
        if handle is None:
            return
        if handle.connection is not None and name in handle.connection.names:
            handle.connection.names.remove(name)
        try:
            self._engine.unregister(name)
        except ViteXError:  # pragma: no cover - engine/server maps in sync
            pass

    # ------------------------------------------------------ frame dispatch

    def _dispatch(self, connection: _Connection, line: bytes) -> None:
        try:
            frame = decode_frame(line)
        except ProtocolError as exc:
            self._enqueue(connection, None, encode_frame(error_frame(str(exc))))
            return
        cmd = frame.get("cmd")
        handler = self._COMMANDS.get(cmd)
        if handler is None:
            self._enqueue(
                connection,
                None,
                encode_frame(error_frame(f"unknown command {cmd!r}", cmd=cmd)),
            )
            return
        try:
            handler(self, connection, frame)
        except ViteXError as exc:
            self._enqueue(
                connection, None, encode_frame(error_frame(str(exc), cmd=cmd))
            )

    def _cmd_subscribe(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        query = frame.get("query")
        if not isinstance(query, str) or not query:
            raise ProtocolError("subscribe needs a 'query' string")
        name = frame.get("name")
        subscription = self._engine.register(query, name=name)
        handle = _SubscriptionHandle(subscription.name, subscription.query, connection)
        self._subscriptions[subscription.name] = handle
        connection.names.append(subscription.name)
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "subscribed",
                    "name": subscription.name,
                    "query": subscription.query,
                    "mid_stream": self._session is not None,
                }
            ),
        )

    def _cmd_unsubscribe(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        name = frame.get("name")
        handle = self._subscriptions.get(name) if isinstance(name, str) else None
        if handle is None:
            raise ProtocolError(f"no subscription named {name!r}")
        if handle.connection is not connection:
            raise ProtocolError(f"subscription {name!r} belongs to another connection")
        self._remove_subscription(name)
        self._enqueue(
            connection, None, encode_frame({"type": "unsubscribed", "name": name})
        )

    def _cmd_feed(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        data = frame.get("data")
        if not isinstance(data, str):
            raise ProtocolError("feed needs a 'data' string")
        if self._session is None:
            self._session = self._engine.session(parser=self.parser)
        started = time.perf_counter()
        try:
            pairs = self._session.feed_text(data)
        except ViteXError as exc:
            self._abort_document(str(exc))
            raise
        finally:
            self._busy_seconds += time.perf_counter() - started
        if pairs:
            self._route(pairs)

    def _cmd_finish(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        session = self._session
        if session is None:
            raise ProtocolError("no document in progress")
        started = time.perf_counter()
        try:
            pairs = session.finish()
        except ViteXError as exc:
            self._abort_document(str(exc))
            raise
        finally:
            self._busy_seconds += time.perf_counter() - started
        if pairs:
            self._route(pairs)
        document = self._documents
        elements = session.element_count
        self._elements_total += elements
        self._documents = document + 1
        self._session = None
        self._engine.reset()
        self._enqueue(
            connection,
            None,
            encode_frame(
                {"type": "finished", "document": document, "elements": elements}
            ),
        )
        self._broadcast_eof(document, aborted=False)

    def _cmd_stats(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        self._enqueue(connection, None, encode_frame(self.stats()))

    def _cmd_ping(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        self._enqueue(connection, None, encode_frame({"type": "pong"}))

    _COMMANDS: Dict[str, Callable] = {
        "subscribe": _cmd_subscribe,
        "unsubscribe": _cmd_unsubscribe,
        "feed": _cmd_feed,
        "finish": _cmd_finish,
        "stats": _cmd_stats,
        "ping": _cmd_ping,
    }

    # ------------------------------------------------------ solution fanout

    def _route(self, pairs: List[Tuple[str, Solution]]) -> None:
        """Fan delivered pairs out to their owners' outboxes (or callbacks)."""
        ts = asyncio.get_running_loop().time()
        subscriptions = self._subscriptions
        self._solutions_total += len(pairs)
        for name, solution in pairs:
            handle = subscriptions.get(name)
            if handle is None:  # pragma: no cover - engine/server maps in sync
                continue
            handle.delivered += 1
            if handle.connection is None:
                if handle.callback is not None:
                    # Same isolation as the engine's deliver path: one bad
                    # local callback must not abort the feed that was being
                    # parsed (or drop the publisher's connection).
                    try:
                        handle.callback(name, solution)
                    except Exception:
                        handle.callback_errors += 1
                continue
            handle.connection.delivered += 1
            frame = encode_frame(
                {
                    "type": "solution",
                    "name": name,
                    "ts": ts,
                    "solution": solution_to_payload(solution),
                }
            )
            self._enqueue(handle.connection, name, frame)

    def _broadcast_eof(self, document: int, aborted: bool, error: str = "") -> None:
        for connection in self._connections:
            if not connection.names:
                continue
            frame: Dict[str, Any] = {
                "type": "eof",
                "document": document,
                "aborted": aborted,
                "delivered": connection.delivered,
                "dropped": connection.dropped,
            }
            if error:
                frame["error"] = error
            self._enqueue(connection, None, encode_frame(frame))

    def _abort_document(self, message: str) -> None:
        """A chunk failed to parse: the session already reset the machines;
        tell subscribers the document died and arm a fresh one."""
        document = self._documents
        self._documents = document + 1
        self._session = None
        self._broadcast_eof(document, aborted=True, error=message)


__all__ = ["DEFAULT_OUTBOX_LIMIT", "DEFAULT_PORT", "ServiceServer"]
