"""The asyncio subscription server: one shared engine, many subscribers.

Architecture::

    client A ──subscribe──▶ ┌──────────────────────────────┐
    client B ──subscribe──▶ │  ServiceServer               │
                            │   MultiQueryEvaluator (one)  │──▶ outbox A ──▶ A
    publisher ──feed/──────▶│   StreamSession (per doc)    │──▶ outbox B ──▶ B
               finish       └──────────────────────────────┘

* **One engine, one stream.**  All connections share a single
  :class:`~repro.core.multi.MultiQueryEvaluator`; ``feed`` frames from any
  connection advance the one global document through a push-mode
  :class:`~repro.core.session.StreamSession`.  Subscribing mid-document is
  allowed and follows the engine's remainder-only semantics.
* **Per-connection subscription ownership.**  A subscription belongs to the
  connection that created it: only that connection may unsubscribe it, its
  solutions go only to that connection's outbox, and closing the connection
  unregisters everything it owned (releasing compiled-query cache refs).
* **Bounded outboxes, drop-oldest backpressure.**  Each connection has a
  bounded frame queue drained by its own writer task.  The parse loop never
  blocks on a slow consumer: when an outbox is full the *oldest* frame is
  dropped and counted (per connection and per subscription), favouring
  fresh solutions — the stock-ticker trade-off.
* **Document lifecycle.**  ``finish`` ends the current document: the
  publisher gets a ``finished`` reply, every subscriber connection gets an
  ``eof`` frame, and the engine resets for the next document while keeping
  all subscriptions registered (standing queries).  A malformed chunk
  aborts the document the same way (``eof`` with ``aborted``), leaving the
  machines clean.

Parsing runs synchronously on the event loop — chunks are bounded by
:data:`~repro.service.protocol.MAX_FRAME_BYTES`, so each ``feed`` is a
bounded slice of CPU.  Sharding across processes is the roadmap's next step.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import os
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..core.builder import shared_compiled_cache
from ..core.docstream import DocumentBoundaryScanner, DocumentStreamSession
from ..core.multi import MultiQueryEvaluator
from ..core.results import Solution
from ..core.session import StreamSession
from ..errors import CheckpointError, ViteXError
from .protocol import (
    MAX_BATCH_BYTES,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_batch,
    encode_frame,
    error_frame,
    solution_to_payload,
)

#: Default TCP port (unassigned range; "ViteX" on a phone keypad is 84839,
#: which does not fit, so the year of the paper it reproduces: 2005 → 8005).
DEFAULT_PORT = 8005

#: Default per-connection outbox bound (frames).
DEFAULT_OUTBOX_LIMIT = 4096

#: Format marker of the service checkpoint file (wraps a core snapshot with
#: server-level counters and subscription routing metadata).
CHECKPOINT_FORMAT = "vitex-checkpoint"

#: Version of the service checkpoint layout.
CHECKPOINT_VERSION = 1

#: Version of the *sharded* checkpoint layout: a list of per-worker core
#: snapshots (``shards``) plus a routing table in the server metadata.
#: Written by :class:`repro.service.sharding.ShardedServiceServer`; both
#: server classes can restore either version (a mid-document sharded
#: checkpoint needs as many shards as workers, see :meth:`restore_state`).
CHECKPOINT_VERSION_SHARDED = 2

#: Version of the *stream-mode* checkpoint layout: the ``snapshot`` is a
#: :class:`~repro.core.docstream.DocumentStreamSession` snapshot (carrying
#: the retention-spool frames alongside the engine state) and the server
#: metadata gains a ``stream`` section with the session's configuration
#: and idle/heartbeat counters.  Restorable on the single-process server
#: only; the sharded front refuses it (its stream state spans processes).
CHECKPOINT_VERSION_STREAM = 3

#: Default on-disk checkpoint location (relative to the server's cwd).
DEFAULT_CHECKPOINT_PATH = "vitex-checkpoint.json"


def _encode_checkpoint(payload: Dict[str, Any]) -> bytes:
    """Serialize a checkpoint payload (thread-safe: payload is isolated)."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False)
        + "\n"
    ).encode("utf-8")


def _write_atomically(target: str, data: bytes) -> None:
    """Write next to the final location, then ``os.replace`` into place."""
    tmp = f"{target}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, target)


class _SubscriptionHandle:
    """Server-side bookkeeping for one registered subscription."""

    __slots__ = (
        "name",
        "query",
        "connection",
        "callback",
        "delivered",
        "dropped",
        "callback_errors",
        "detached",
    )

    def __init__(
        self,
        name: str,
        query: str,
        connection: Optional["_Connection"],
        callback: Optional[Callable[[str, Solution], None]] = None,
    ) -> None:
        self.name = name
        self.query = query
        self.connection = connection  # None for server-local subscriptions
        self.callback = callback
        self.delivered = 0
        self.dropped = 0
        self.callback_errors = 0
        #: True for a connection-owned subscription restored from a
        #: checkpoint whose owner has not re-attached yet: a ``subscribe``
        #: frame with the same name (and an equivalent query) claims it.
        self.detached = False


class _Connection:
    """One client connection: reader state, bounded outbox, writer task."""

    __slots__ = (
        "reader",
        "writer",
        "outbox",
        "wake",
        "writer_task",
        "handler_task",
        "names",
        "delivered",
        "dropped",
        "peer",
    )

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.outbox: Deque[Tuple[Optional[str], bytes]] = deque()
        self.wake = asyncio.Event()
        self.writer_task: Optional[asyncio.Task] = None
        self.handler_task: Optional[asyncio.Task] = None
        self.names: List[str] = []  # subscriptions owned, registration order
        self.delivered = 0
        self.dropped = 0
        try:
            self.peer = writer.get_extra_info("peername")
        except Exception:  # pragma: no cover - transport without peername
            self.peer = None


class ServiceServer:
    """Long-lived subscription service over one shared TwigM engine."""

    def __init__(
        self,
        parser: str = "native",
        outbox_limit: int = DEFAULT_OUTBOX_LIMIT,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: Optional[float] = None,
        batch_frames: bool = True,
    ) -> None:
        if outbox_limit <= 0:
            raise ValueError("outbox_limit must be positive")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        self.parser = parser
        self._outbox_limit = outbox_limit
        #: When True (the default) the writer coalesces a multi-frame drain
        #: into one JSON array line (:func:`~repro.service.protocol.
        #: encode_batch`) — one syscall and one client wake-up per flush
        #: instead of per frame.  False keeps the one-line-per-frame wire
        #: shape (used by the before/after benchmark note).
        self._batch_frames = batch_frames
        self._engine = MultiQueryEvaluator(collect_statistics=False)
        self._session: Optional[StreamSession] = None
        self._connections: set = set()
        self._subscriptions: Dict[str, _SubscriptionHandle] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        # Checkpointing: target path for /checkpoint frames without an
        # explicit path and for the periodic auto-checkpoint task.
        self.checkpoint_path = checkpoint_path or DEFAULT_CHECKPOINT_PATH
        self._checkpoint_interval = checkpoint_interval
        self._checkpoint_task: Optional[asyncio.Task] = None
        self._checkpoints_written = 0
        self._last_checkpoint_bytes = 0
        self._last_checkpoint_at: Optional[float] = None
        self._last_checkpoint_error: Optional[str] = None
        # Lifetime counters for /stats.
        self._documents = 0
        self._aborted_documents = 0
        self._elements_total = 0
        self._solutions_total = 0
        self._busy_seconds = 0.0
        self._started_at = time.monotonic()
        # Infinite-stream mode (stream_open): an unbounded multi-document
        # session with rolling retention, replacing the per-document
        # feed/finish lifecycle until stream_close.
        self._stream: Optional[DocumentStreamSession] = None
        #: Server-side boundary splitter, kept in lockstep with the stream
        #: session's own scanner so each document's eof broadcast lands
        #: between that document's solutions and the next document's.
        self._stream_splitter: Optional[DocumentBoundaryScanner] = None
        self._stream_options: Dict[str, Any] = {}
        self._stream_docs_acked = 0
        self._stream_failed_acked = 0
        self._stream_last_feed = 0.0
        self._stream_monitor_task: Optional[asyncio.Task] = None
        self._heartbeats_sent = 0
        self._idle_stream_closures = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> None:
        """Bind and start accepting connections (use ``port=0`` for an
        ephemeral port; see :attr:`address`)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_FRAME_BYTES
        )
        if self._checkpoint_interval is not None and self._checkpoint_task is None:
            self._checkpoint_task = asyncio.ensure_future(self._auto_checkpoint_loop())

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The first bound ``(host, port)``, once started."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        """Block serving until cancelled or :meth:`close` is called."""
        if self._server is None:
            raise RuntimeError("call start() first")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        """Graceful teardown: stop accepting, drop connections, release the
        engine's compiled-query cache references.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        await self._stop_stream_monitor()
        if self._stream is not None:
            self._fold_stream_counters()
            self._stream.close()
            self._stream = None
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            try:
                await self._checkpoint_task
            except asyncio.CancelledError:
                pass
            self._checkpoint_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        connections = list(self._connections)
        for connection in connections:
            await self._drop_connection(connection)
        # Reap the per-connection handler tasks so shutdown leaves no
        # pending tasks behind for the loop to complain about.
        current = asyncio.current_task()
        for connection in connections:
            task = connection.handler_task
            if task is None or task is current:
                continue
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._session = None
        self._engine.close()

    async def drain(self, timeout: float = 10.0) -> None:
        """Graceful shutdown prelude (``vitex serve`` on SIGTERM).

        Stops accepting new connections, ends the current document — an
        abort carrying ``"server draining"`` if one is mid-parse, a clean
        ``eof`` broadcast otherwise, both marked ``"draining": true`` so
        clients can distinguish shutdown from document lifecycle — then
        waits (bounded) for every connection's outbox to flush.  The caller
        still runs :meth:`close` afterwards.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._stream is not None:
            self._close_stream_session(reason="server draining")
            self._broadcast_eof(self._documents, aborted=False, draining=True)
        elif self._session is not None:
            self._abort_document("server draining", draining=True)
        else:
            self._broadcast_eof(self._documents, aborted=False, draining=True)
        await self._flush_outboxes(timeout)

    async def _flush_outboxes(self, timeout: float) -> None:
        """Wait until every connection outbox has been written (bounded)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(not connection.outbox for connection in self._connections):
                return
            await asyncio.sleep(0.02)

    @property
    def engine(self) -> MultiQueryEvaluator:
        """The shared engine (read-mostly; the server owns its lifecycle)."""
        return self._engine

    # -------------------------------------------------- local subscriptions

    def add_local_subscription(
        self,
        query: str,
        name: Optional[str] = None,
        callback: Optional[Callable[[str, Solution], None]] = None,
    ) -> str:
        """Register a server-owned standing query (``vitex serve --watch``).

        Solutions invoke ``callback(name, solution)`` on the event loop
        instead of travelling to a connection.  Returns the subscription
        name.
        """
        subscription = self._engine.subscribe(query, name=name)
        handle = _SubscriptionHandle(
            subscription.name, subscription.query, None, callback
        )
        self._subscriptions[subscription.name] = handle
        return subscription.name

    # ------------------------------------------------------------ stats

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: engine shape, rates, delivery counters.

        The flat keys are the stable public schema; the ``workers`` list
        adds a per-worker breakdown (one inline entry here; one entry per
        worker process on the sharded server) with the same metric names,
        so dashboards can consume either shape.
        """
        elements = self._elements_total
        if self._session is not None:
            elements += self._session.element_count
        if self._stream is not None:
            elements += self._stream.elements
        busy = self._busy_seconds
        events_per_sec = round(elements / busy, 1) if busy > 0 else 0.0
        payload: Dict[str, Any] = {
            "type": "stats",
            "parser": self.parser,
            "machine_count": self._engine.machine_count,
            "subscriptions": len(self._subscriptions),
            "connections": len(self._connections),
            "documents": self._documents,
            "aborted_documents": self._aborted_documents,
            "document_open": self._session is not None,
            "elements": elements,
            "events_per_sec": events_per_sec,
            "solutions": self._solutions_total,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "checkpoints_written": self._checkpoints_written,
            "workers": [
                {
                    "worker": 0,
                    "mode": "inline",
                    "pid": os.getpid(),
                    "alive": True,
                    "subscriptions": len(self._subscriptions),
                    "machine_count": self._engine.machine_count,
                    "elements": elements,
                    "events_per_sec": events_per_sec,
                    "queue_depth": sum(
                        len(connection.outbox) for connection in self._connections
                    ),
                }
            ],
            "subscription_detail": {
                name: {
                    "query": handle.query,
                    "delivered": handle.delivered,
                    "dropped": handle.dropped,
                    "callback_errors": handle.callback_errors,
                    "local": handle.connection is None and not handle.detached,
                    "detached": handle.detached,
                }
                for name, handle in self._subscriptions.items()
            },
        }
        payload["stream_open"] = self._stream_mode()
        payload["heartbeats_sent"] = self._heartbeats_sent
        payload["idle_stream_closures"] = self._idle_stream_closures
        stream_stats = self._stream_stats()
        if stream_stats is not None:
            payload["stream"] = stream_stats
        if self._last_checkpoint_at is not None:
            payload["last_checkpoint_age_s"] = round(
                time.monotonic() - self._last_checkpoint_at, 3
            )
            payload["last_checkpoint_bytes"] = self._last_checkpoint_bytes
        if self._last_checkpoint_error is not None:
            payload["last_checkpoint_error"] = self._last_checkpoint_error
        return payload

    def _stream_mode(self) -> bool:
        """Whether an infinite-stream session is open (overridden sharded)."""
        return self._stream is not None

    def _stream_stats(self) -> Optional[Dict[str, Any]]:
        """The ``stream`` section of /stats, or None outside stream mode."""
        if self._stream is None:
            return None
        payload = self._stream.stats()
        payload.update(self._stream_monitor_stats())
        return payload

    def _stream_monitor_stats(self) -> Dict[str, Any]:
        """Idle/heartbeat configuration and counters for /stats."""
        options = self._stream_options
        return {
            "idle_timeout": options.get("idle_timeout"),
            "heartbeat_interval": options.get("heartbeat_interval"),
            "heartbeats_sent": self._heartbeats_sent,
            "idle_stream_closures": self._idle_stream_closures,
        }

    # ------------------------------------------------------------ checkpoint

    def checkpoint_state(self) -> Dict[str, Any]:
        """The full service checkpoint payload (JSON-able).

        Wraps the core engine/session snapshot with server-level counters
        and the subscription routing table (which names were client-owned —
        restored as *detached*, re-claimable via ``subscribe`` — and which
        were server-local).  Taken between frames, so it is always aligned
        to a feed-chunk boundary.
        """
        if self._stream is not None:
            snapshot = self._stream.snapshot()
            version = CHECKPOINT_VERSION_STREAM
        elif self._session is not None:
            snapshot = self._session.snapshot()
            version = CHECKPOINT_VERSION
        else:
            snapshot = self._engine.snapshot()
            version = CHECKPOINT_VERSION
        server_meta: Dict[str, Any] = {
            "parser": self.parser,
            "documents": self._documents,
            "aborted_documents": self._aborted_documents,
            "elements_total": self._elements_total,
            "solutions_total": self._solutions_total,
            "subscriptions": {
                name: {
                    "delivered": handle.delivered,
                    "dropped": handle.dropped,
                    "callback_errors": handle.callback_errors,
                    "local": handle.connection is None and not handle.detached,
                }
                for name, handle in self._subscriptions.items()
            },
        }
        if version == CHECKPOINT_VERSION_STREAM:
            server_meta["stream"] = {
                **{
                    key: self._stream_options.get(key)
                    for key in (
                        "retain_documents",
                        "retain_bytes",
                        "window_documents",
                        "on_error",
                        "idle_timeout",
                        "heartbeat_interval",
                    )
                },
                "heartbeats_sent": self._heartbeats_sent,
                "idle_stream_closures": self._idle_stream_closures,
            }
        return {
            "format": CHECKPOINT_FORMAT,
            "version": version,
            "server": server_meta,
            "snapshot": snapshot,
        }

    def save_checkpoint(self, path: Optional[str] = None) -> Dict[str, Any]:
        """Write the current checkpoint to disk atomically; returns metadata.

        The file is written next to its final location and moved into place
        with ``os.replace``, so a crash mid-write never corrupts the
        previous checkpoint.
        """
        target = path or self.checkpoint_path
        data = _encode_checkpoint(self.checkpoint_state())
        _write_atomically(target, data)
        return self._record_checkpoint(target, data)

    def _record_checkpoint(self, target: str, data: bytes) -> Dict[str, Any]:
        self._checkpoints_written += 1
        self._last_checkpoint_bytes = len(data)
        self._last_checkpoint_at = time.monotonic()
        self._last_checkpoint_error = None
        return {
            "path": target,
            "bytes": len(data),
            "document": self._documents,
            "mid_document": self._document_in_progress(),
            "subscriptions": len(self._subscriptions),
        }

    def _document_in_progress(self) -> bool:
        """Whether a document is currently open (overridden by sharding)."""
        if self._stream is not None:
            return self._stream.in_document
        return self._session is not None

    def _client_checkpoint_path(self, path: str) -> str:
        """Confine a *client-supplied* path to the checkpoint directory.

        The checkpoint/restore frames are the only protocol surface that
        names server-side files; without this check any connected client
        could overwrite (checkpoint) or probe (restore) arbitrary paths.
        Clients may choose a file *name*, but only inside the directory of
        the server's configured checkpoint path.  Local callers (CLI
        ``vitex resume``, :meth:`save_checkpoint`) are not restricted.
        """
        base = os.path.dirname(os.path.abspath(self.checkpoint_path))
        candidate = os.path.abspath(
            path if os.path.isabs(path) else os.path.join(base, path)
        )
        if os.path.dirname(candidate) != base:
            raise ProtocolError(
                f"checkpoint paths are confined to {base!r} on this server"
            )
        return candidate

    def restore_state(self, payload: Dict[str, Any]) -> None:
        """Restore a checkpoint payload into this (fresh) server.

        Allowed only while no document is in progress and no subscriptions
        exist — i.e. at startup (``vitex resume``) or on an idle, empty
        server via the ``restore`` frame.  Client-owned subscriptions come
        back *detached*: solutions are discarded until their owner
        re-subscribes under the same name with an equivalent query.
        """
        if self._session is not None or self._stream is not None:
            raise CheckpointError("cannot restore while a document is in progress")
        if self._subscriptions:
            raise CheckpointError("cannot restore over existing subscriptions")
        if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"not a {CHECKPOINT_FORMAT} payload "
                f"(format={payload.get('format')!r})"
            )
        version = payload.get("version")
        if version not in (
            CHECKPOINT_VERSION,
            CHECKPOINT_VERSION_SHARDED,
            CHECKPOINT_VERSION_STREAM,
        ):
            raise CheckpointError(f"unsupported checkpoint version {version!r}")
        meta = payload.get("server") or {}
        engine = MultiQueryEvaluator(collect_statistics=False)
        stream: Optional[DocumentStreamSession] = None
        if version == CHECKPOINT_VERSION_STREAM:
            restored = engine.restore_session(payload["snapshot"])
            if not isinstance(restored, DocumentStreamSession):
                raise CheckpointError(
                    "version-3 checkpoint did not restore a stream session"
                )
            stream = restored
            session = None
        elif version == CHECKPOINT_VERSION:
            session = engine.restore_session(payload["snapshot"])
        else:
            session = self._restore_sharded_into(engine, payload, meta)
        old_engine = self._engine
        self._engine = engine
        self._session = session
        self._stream = stream
        if stream is not None:
            # Clone the session's boundary scanner so the server-side
            # splitter resumes mid-document in lockstep with it.
            scanner = stream._scanner
            self._stream_splitter = (
                DocumentBoundaryScanner.restore_state(scanner.snapshot_state())
                if scanner is not None
                else DocumentBoundaryScanner()
            )
            stream_meta = meta.get("stream") or {}
            self._stream_options = {
                key: stream_meta.get(key)
                for key in (
                    "retain_documents",
                    "retain_bytes",
                    "window_documents",
                    "on_error",
                    "idle_timeout",
                    "heartbeat_interval",
                )
            }
            self._heartbeats_sent = stream_meta.get("heartbeats_sent", 0)
            self._idle_stream_closures = stream_meta.get("idle_stream_closures", 0)
            self._stream_docs_acked = stream.documents
            self._stream_failed_acked = stream.documents_failed
            self._stream_last_feed = time.monotonic()
        old_engine.close()
        self.parser = meta.get("parser", self.parser)
        self._documents = meta.get("documents", 0)
        self._aborted_documents = meta.get("aborted_documents", 0)
        self._elements_total = meta.get("elements_total", 0)
        self._solutions_total = meta.get("solutions_total", 0)
        sub_meta = meta.get("subscriptions", {})
        for name, subscription in engine._subscriptions.items():
            info = sub_meta.get(name, {})
            handle = _SubscriptionHandle(name, subscription.source, None)
            handle.delivered = info.get("delivered", 0)
            handle.dropped = info.get("dropped", 0)
            handle.callback_errors = info.get("callback_errors", 0)
            handle.detached = not info.get("local", False)
            self._subscriptions[name] = handle

    def _restore_sharded_into(
        self,
        engine: MultiQueryEvaluator,
        payload: Dict[str, Any],
        meta: Dict[str, Any],
    ) -> Optional[StreamSession]:
        """Load a version-2 (sharded) checkpoint into one engine.

        A single shard is just a core snapshot.  Multiple shards can only be
        merged between documents (every shard idle): idle machines are all
        in their start state, so re-subscribing each routed query rebuilds
        the exact same machine set, deduplicated by the engine.  A
        mid-document multi-shard checkpoint carries per-shard parse state
        and must be resumed with a matching worker count instead.
        """
        shards = payload.get("shards")
        if not isinstance(shards, list) or not shards:
            raise CheckpointError("sharded checkpoint has no shards")
        if len(shards) == 1:
            return engine.restore_session(shards[0])
        if any(
            isinstance(shard, dict) and shard.get("session") is not None
            for shard in shards
        ):
            raise CheckpointError(
                f"mid-document sharded checkpoint has {len(shards)} shards; "
                "resume it with --workers matching the original worker count"
            )
        for name, info in (meta.get("subscriptions") or {}).items():
            query = info.get("query")
            if not isinstance(query, str) or not query:
                raise CheckpointError(
                    f"sharded checkpoint is missing the query for "
                    f"subscription {name!r}"
                )
            subscription = engine.subscribe(query, name=name)
            if info.get("paused"):
                subscription.pause()
        return None

    def restore_from_file(self, path: str) -> Dict[str, Any]:
        """Read and restore a checkpoint file; returns summary metadata."""
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"malformed checkpoint {path!r}: {exc}") from exc
        self.restore_state(payload)
        elements = self._elements_total
        if self._session is not None:
            elements += self._session.element_count
        if self._stream is not None:
            elements += self._stream.elements
        return {
            "path": path,
            "document": self._documents,
            "mid_document": self._document_in_progress(),
            "stream_open": self._stream is not None,
            "subscriptions": len(self._subscriptions),
            "elements": elements,
        }

    def rebind_local_callback(
        self,
        name: str,
        callback: Optional[Callable[[str, Solution], None]],
        query: Optional[str] = None,
    ) -> bool:
        """Re-attach a delivery callback to a restored server-local
        subscription (callbacks never travel through checkpoints); returns
        False when no local subscription has that name.

        When ``query`` is given it must be equivalent to the restored one —
        the same name-only guard the network re-attach path enforces:
        silently wiring a callback labelled with one query to a machine
        evaluating another would mislabel every delivered solution.  Raises
        :class:`~repro.errors.CheckpointError` on a mismatch so ``vitex
        resume --watch`` fails loudly instead of answering the wrong
        question.
        """
        handle = self._subscriptions.get(name)
        if handle is None or handle.connection is not None or handle.detached:
            return False
        if query is not None and not self._query_equivalent(name, handle, query):
            raise CheckpointError(
                f"local subscription {name!r} was restored for query "
                f"{handle.query!r}; refusing to re-bind it to {query!r}"
            )
        handle.callback = callback
        return True

    def _query_equivalent(
        self, name: str, handle: _SubscriptionHandle, query: str
    ) -> bool:
        """True when ``query`` is the restored query (source or fingerprint)."""
        if query == handle.query:
            return True
        subscription = self._engine._subscriptions.get(name)
        if subscription is None:
            return False
        compiled = shared_compiled_cache.acquire(query)
        try:
            return compiled.fingerprint == subscription.runtime.fingerprint
        finally:
            shared_compiled_cache.release(compiled)

    async def _capture_checkpoint(self) -> Dict[str, Any]:
        """Capture the checkpoint payload for the periodic writer.

        A coroutine so the sharded server can override it with worker
        snapshot gathering; here it is just :meth:`checkpoint_state`.
        """
        return self.checkpoint_state()

    async def _auto_checkpoint_loop(self) -> None:
        """Periodically write the checkpoint file (armed by ``start()``).

        The state capture itself runs between frames on the event loop, so
        every auto-checkpoint is chunk-aligned; the expensive part — JSON
        encoding (which can embed a large expat spool) and the disk write —
        is pushed to a worker thread so the parse loop never stalls on it.
        The captured payload tree is fully materialised (no live-object
        references), so the loop can keep mutating engine state while the
        thread encodes.  Failures are recorded in /stats rather than
        killing the server.
        """
        interval = self._checkpoint_interval
        assert interval is not None
        try:
            while True:
                await asyncio.sleep(interval)
                try:
                    target = self.checkpoint_path
                    payload = await self._capture_checkpoint()
                    data = await asyncio.to_thread(_encode_checkpoint, payload)
                    await asyncio.to_thread(_write_atomically, target, data)
                    self._record_checkpoint(target, data)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    self._last_checkpoint_error = str(exc)
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------ connection I/O

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(reader, writer)
        self._connections.add(connection)
        connection.handler_task = asyncio.current_task()
        connection.writer_task = asyncio.ensure_future(self._writer_loop(connection))
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Frame exceeded MAX_FRAME_BYTES: protocol violation.
                    self._enqueue(
                        connection,
                        None,
                        encode_frame(error_frame("frame too large; closing")),
                    )
                    break
                if not line:
                    break
                if line.strip():
                    await self._dispatch(connection, line)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Cancelled by close(): finish cleanly so the reaping await in
            # close() (and the loop's shutdown) sees a completed task.
            pass
        finally:
            await self._drop_connection(connection)

    async def _writer_loop(self, connection: _Connection) -> None:
        """Drain the outbox; the only place that awaits socket writes.

        A drain that finds more than one queued frame ships them as a
        single JSON array line (unless ``batch_frames=False``): under
        solution fan-out load this collapses hundreds of per-frame writes
        into one syscall per flush, and the client's batch-aware
        :func:`~repro.service.protocol.decode_frames` unpacks them in
        order, so FIFO replies and per-subscription delivery order are
        untouched.  Batches are capped (count and bytes) to stay under the
        client reader's frame bound.
        """
        writer = connection.writer
        outbox = connection.outbox
        try:
            while True:
                await connection.wake.wait()
                connection.wake.clear()
                while outbox:
                    batch: List[bytes] = []
                    size = 0
                    while outbox and len(batch) < 128:
                        frame = outbox[0][1]
                        if batch and size + len(frame) > MAX_BATCH_BYTES:
                            break
                        outbox.popleft()
                        batch.append(frame)
                        size += len(frame)
                    if self._batch_frames and len(batch) > 1:
                        writer.write(encode_batch(batch))
                    else:
                        writer.write(b"".join(batch))
                    await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    def _enqueue(
        self, connection: _Connection, name: Optional[str], frame: bytes
    ) -> None:
        """Queue a frame; drop the oldest *solution* when the bound is hit.

        Never blocks and never awaits: called from the parse loop.  Only
        solution frames (``name`` set) are droppable — losing a reply or an
        ``eof`` would wedge the client protocol, and control frames are
        bounded by the client's own request rate, so exempting them keeps
        the outbox bound meaningful where it matters (solution fan-out).
        """
        outbox = connection.outbox
        if len(outbox) >= self._outbox_limit:
            for index, (queued_name, _) in enumerate(outbox):
                if queued_name is not None:
                    del outbox[index]
                    connection.dropped += 1
                    handle = self._subscriptions.get(queued_name)
                    if handle is not None:
                        handle.dropped += 1
                    break
            # All-control outbox: append anyway; see the docstring.
        outbox.append((name, frame))
        connection.wake.set()

    async def _drop_connection(self, connection: _Connection) -> None:
        if connection not in self._connections:
            return
        self._connections.discard(connection)
        for name in list(connection.names):
            self._remove_subscription(name)
        if connection.writer_task is not None:
            connection.writer_task.cancel()
            try:
                await connection.writer_task
            except asyncio.CancelledError:
                pass
        try:
            connection.writer.close()
            await connection.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def _remove_subscription(self, name: str) -> None:
        handle = self._subscriptions.pop(name, None)
        if handle is None:
            return
        if handle.connection is not None and name in handle.connection.names:
            handle.connection.names.remove(name)
        try:
            self._engine.unregister(name)
        except ViteXError:  # pragma: no cover - engine/server maps in sync
            pass

    # ------------------------------------------------------ frame dispatch

    async def _dispatch(self, connection: _Connection, line: bytes) -> None:
        """Decode one line and run its command handler.

        Handlers may be plain functions (this class) or coroutines (the
        sharded front awaits worker round-trips); either way errors are
        answered on the connection instead of killing its handler task.
        """
        try:
            frame = decode_frame(line)
        except ProtocolError as exc:
            self._enqueue(connection, None, encode_frame(error_frame(str(exc))))
            return
        cmd = frame.get("cmd")
        handler = self._COMMANDS.get(cmd)
        if handler is None:
            self._enqueue(
                connection,
                None,
                encode_frame(error_frame(f"unknown command {cmd!r}", cmd=cmd)),
            )
            return
        try:
            result = handler(self, connection, frame)
            if inspect.isawaitable(result):
                await result
        except asyncio.CancelledError:
            raise
        except ViteXError as exc:
            self._enqueue(
                connection, None, encode_frame(error_frame(str(exc), cmd=cmd))
            )
        except Exception as exc:
            # An unexpected failure must not kill the connection handler (or
            # worse, leave a half-dead session installed — the feed/finish
            # handlers abort their document before re-raising).
            self._enqueue(
                connection,
                None,
                encode_frame(
                    error_frame(f"internal error: {type(exc).__name__}: {exc}", cmd=cmd)
                ),
            )

    def _cmd_subscribe(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        query = frame.get("query")
        if not isinstance(query, str) or not query:
            raise ProtocolError("subscribe needs a 'query' string")
        if frame.get("replay_window"):
            self._subscribe_replay(connection, frame, query)
            return
        name = frame.get("name")
        if isinstance(name, str):
            handle = self._subscriptions.get(name)
            if handle is not None and handle.detached:
                self._reattach_subscription(connection, handle, query)
                return
        subscription = self._engine.subscribe(query, name=name)
        handle = _SubscriptionHandle(subscription.name, subscription.query, connection)
        self._subscriptions[subscription.name] = handle
        connection.names.append(subscription.name)
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "subscribed",
                    "name": subscription.name,
                    "query": subscription.query,
                    "mid_stream": self._session is not None,
                }
            ),
        )

    def _reattach_subscription(
        self, connection: _Connection, handle: _SubscriptionHandle, query: str
    ) -> None:
        """Claim a checkpoint-restored subscription for ``connection``.

        The claimed query must be *equivalent* to the restored one (equal
        source text or equal canonical fingerprint) — re-attachment resumes
        a warm machine mid-document, so handing it to a different query
        would silently answer the wrong question.
        """
        if not self._query_equivalent(handle.name, handle, query):
            raise ProtocolError(
                f"subscription {handle.name!r} was restored for query "
                f"{handle.query!r}; cannot re-attach a different query"
            )
        handle.connection = connection
        handle.detached = False
        connection.names.append(handle.name)
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "subscribed",
                    "name": handle.name,
                    "query": handle.query,
                    "mid_stream": self._session is not None,
                    "reattached": True,
                    "delivered": handle.delivered,
                }
            ),
        )

    @staticmethod
    def _batch_items(frame: Dict[str, Any]) -> List[Tuple[str, Optional[str]]]:
        """Validate a ``subscribe_batch`` frame into ``(query, name)`` pairs."""
        items = frame.get("items")
        if not isinstance(items, list) or not items:
            raise ProtocolError("subscribe_batch needs a non-empty 'items' list")
        pairs: List[Tuple[str, Optional[str]]] = []
        for item in items:
            if not isinstance(item, dict):
                raise ProtocolError("subscribe_batch items must be objects")
            query = item.get("query")
            if not isinstance(query, str) or not query:
                raise ProtocolError("subscribe_batch items need a 'query' string")
            name = item.get("name")
            if name is not None and not isinstance(name, str):
                raise ProtocolError("subscribe_batch item 'name' must be a string")
            pairs.append((query, name))
        return pairs

    def _cmd_subscribe_batch(
        self, connection: _Connection, frame: Dict[str, Any]
    ) -> None:
        """Register a batch of queries all-or-nothing (one reply frame).

        The engine's :meth:`~repro.core.multi.MultiQueryEvaluator.\
subscribe_many` provides the rollback: if any item fails, every
        subscription it already made is unregistered before the error
        reaches :meth:`_dispatch`, which answers with a single ``error``
        frame.  Re-attaching a detached (checkpoint-restored) subscription
        is not batchable — the engine still holds its machine, so reusing
        its name fails the whole batch; re-attach with ``subscribe``.
        """
        subscriptions = self._engine.subscribe_many(self._batch_items(frame))
        for subscription in subscriptions:
            handle = _SubscriptionHandle(
                subscription.name, subscription.query, connection
            )
            self._subscriptions[subscription.name] = handle
            connection.names.append(subscription.name)
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "subscribed_batch",
                    "subscriptions": [
                        {"name": subscription.name, "query": subscription.query}
                        for subscription in subscriptions
                    ],
                    "mid_stream": self._session is not None,
                }
            ),
        )

    def _cmd_unsubscribe(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        name = frame.get("name")
        handle = self._subscriptions.get(name) if isinstance(name, str) else None
        if handle is None:
            raise ProtocolError(f"no subscription named {name!r}")
        if handle.connection is not connection:
            raise ProtocolError(f"subscription {name!r} belongs to another connection")
        self._remove_subscription(name)
        self._enqueue(
            connection, None, encode_frame({"type": "unsubscribed", "name": name})
        )

    def _subscribe_replay(
        self, connection: _Connection, frame: Dict[str, Any], query: str
    ) -> None:
        """``subscribe`` with ``replay_window``: retained window + live.

        The stream session replays its spool through a private machine and
        grafts the subscription at the exact live position; the replayed
        solutions are delivered to the subscriber right after the ack
        (marked ``"replayed": true``), and live delivery continues through
        the normal routing path — exactly once, no duplicate, no gap.
        """
        if self._stream is None:
            raise ProtocolError(
                "replay_window needs an open stream session (stream_open)"
            )
        name = frame.get("name")
        if name is not None and not isinstance(name, str):
            raise ProtocolError("subscribe 'name' must be a string")
        subscription, replayed = self._stream.subscribe_replay(query, name=name)
        handle = _SubscriptionHandle(subscription.name, subscription.query, connection)
        handle.delivered = len(replayed)
        self._subscriptions[subscription.name] = handle
        connection.names.append(subscription.name)
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "subscribed",
                    "name": subscription.name,
                    "query": subscription.query,
                    "mid_stream": self._stream.in_document,
                    "replayed": len(replayed),
                }
            ),
        )
        ts = asyncio.get_running_loop().time()
        self._solutions_total += len(replayed)
        connection.delivered += len(replayed)
        for pair in replayed:
            self._enqueue(
                connection,
                subscription.name,
                encode_frame(
                    {
                        "type": "solution",
                        "name": subscription.name,
                        "ts": ts,
                        "replayed": True,
                        "solution": solution_to_payload(pair.solution),
                    }
                ),
            )

    # ---------------------------------------------------------- stream mode

    @staticmethod
    def _parse_stream_options(frame: Dict[str, Any]) -> Dict[str, Any]:
        """Validate a ``stream_open`` frame into the session options."""
        options: Dict[str, Any] = {}
        for key in ("retain_documents", "retain_bytes", "window_documents"):
            value = frame.get(key)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ProtocolError(f"stream_open {key!r} must be a positive integer")
            options[key] = value
        if options["window_documents"] is None:
            options["window_documents"] = 100
        on_error = frame.get("on_error", "skip")
        if on_error not in ("skip", "raise"):
            raise ProtocolError("stream_open 'on_error' must be 'skip' or 'raise'")
        options["on_error"] = on_error
        for key in ("idle_timeout", "heartbeat_interval"):
            value = frame.get(key)
            if value is not None and (
                not isinstance(value, (int, float)) or value <= 0
            ):
                raise ProtocolError(f"stream_open {key!r} must be a positive number")
            options[key] = value
        return options

    def _cmd_stream_open(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        if self._stream_mode():
            raise ProtocolError("a stream session is already open")
        if self._document_in_progress():
            raise ProtocolError(
                "cannot open a stream session while a document is in progress"
            )
        options = self._parse_stream_options(frame)
        self._open_stream_session(options)
        self._stream_last_feed = time.monotonic()
        self._arm_stream_monitor()
        self._enqueue(
            connection,
            None,
            encode_frame(
                {
                    "type": "stream_opened",
                    "framing": "auto",
                    "replay": bool(
                        options.get("retain_documents") or options.get("retain_bytes")
                    ),
                    **{key: options.get(key) for key in sorted(options)},
                }
            ),
        )

    def _open_stream_session(self, options: Dict[str, Any]) -> None:
        """Create the stream session (overridden by the sharded front)."""
        self._stream = self._engine.document_stream(
            parser=self.parser,
            retain_documents=options.get("retain_documents"),
            retain_bytes=options.get("retain_bytes"),
            window_documents=options.get("window_documents") or 100,
            on_error=options.get("on_error", "skip"),
        )
        self._stream_splitter = DocumentBoundaryScanner()
        self._stream_options = options
        self._stream_docs_acked = 0
        self._stream_failed_acked = 0

    def _cmd_stream_close(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        if not self._stream_mode():
            raise ProtocolError("no stream session is open")
        stats = self._close_stream_session(reason="closed")
        self._enqueue(
            connection,
            None,
            encode_frame({"type": "stream_closed", "stats": stats}),
        )

    def _close_stream_session(self, reason: str) -> Dict[str, Any]:
        """Tear the stream session down; returns its final stats payload."""
        stream = self._stream
        assert stream is not None
        self._fold_stream_counters()
        stats = stream.close()
        stats.update(self._stream_monitor_stats())
        self._stream = None
        self._stream_splitter = None
        self._stream_options = {}
        if self._stream_monitor_task is not None:
            self._stream_monitor_task.cancel()
            self._stream_monitor_task = None
        return stats

    def _fold_stream_counters(self) -> None:
        """Fold the live stream session's totals into the lifetime counters."""
        stream = self._stream
        if stream is None:
            return
        self._elements_total += stream.elements
        pending = max(0, stream.documents - self._stream_docs_acked)
        failed = max(0, stream.documents_failed - self._stream_failed_acked)
        # A failed document consumes a sequence number too, matching the
        # bounded _abort_document accounting.
        self._documents += pending + failed
        self._aborted_documents += failed
        self._stream_docs_acked = stream.documents
        self._stream_failed_acked = stream.documents_failed

    def _stream_feed(self, connection: _Connection, data: str) -> None:
        """One ``feed`` frame in stream mode: boundaries are autodetected.

        Every completed document broadcasts an ``eof`` frame exactly like
        the bounded ``finish`` path (aborted for documents the parser
        rejected when ``on_error="skip"``), so subscribers see the same
        document lifecycle in both modes.
        """
        stream = self._stream
        splitter = self._stream_splitter
        assert stream is not None and splitter is not None
        self._stream_last_feed = time.monotonic()
        self._arm_stream_monitor()
        started = time.perf_counter()
        try:
            # Feed the session one boundary-split segment at a time so each
            # document's eof broadcast lands between its own solutions and
            # the next document's.
            for segment, _completed in splitter.feed(data):
                pairs = stream.feed_text(segment)
                if pairs:
                    self._route(pairs)
                self._broadcast_stream_deltas(stream)
        except Exception as exc:
            # on_error="raise": the stream session is dead; fold what it
            # counted (the abandoned document included) and surface the
            # abort like a bounded document's.
            document = self._documents
            self._close_stream_session(reason="parse error")
            self._broadcast_eof(document, aborted=True, error=str(exc))
            raise
        finally:
            self._busy_seconds += time.perf_counter() - started

    def _broadcast_stream_deltas(self, stream: DocumentStreamSession) -> None:
        """Broadcast one eof per document the session completed or skipped
        since the last acknowledgement (each segment closes at most one)."""
        completed = stream.documents - self._stream_docs_acked
        failed = stream.documents_failed - self._stream_failed_acked
        self._stream_docs_acked = stream.documents
        self._stream_failed_acked = stream.documents_failed
        for _ in range(completed):
            document = self._documents
            self._documents = document + 1
            self._broadcast_eof(document, aborted=False)
        for _ in range(failed):
            document = self._documents
            self._documents = document + 1
            self._aborted_documents += 1
            self._broadcast_eof(document, aborted=True, error="document skipped")

    # ------------------------------------------------- idle/heartbeat watch

    def _arm_stream_monitor(self) -> None:
        """Start the idle/heartbeat watcher when either option is set."""
        options = self._stream_options
        if not options.get("idle_timeout") and not options.get("heartbeat_interval"):
            return
        if self._stream_monitor_task is None:
            self._stream_monitor_task = asyncio.ensure_future(
                self._stream_monitor_loop()
            )

    async def _stop_stream_monitor(self) -> None:
        task = self._stream_monitor_task
        if task is None:
            return
        self._stream_monitor_task = None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    async def _stream_monitor_loop(self) -> None:
        """Send heartbeat frames and close idle stream sessions.

        Both are off by default; ``stream_open`` arms them.  A heartbeat is
        a push frame carrying the stream's document/element counters so
        quiet subscribers can tell a silent stream from a dead connection;
        an idle closure tears the stream session down after
        ``idle_timeout`` seconds without a feed, notifying every
        subscriber with a ``stream_idle`` push.
        """
        options = self._stream_options
        idle_timeout = options.get("idle_timeout")
        heartbeat = options.get("heartbeat_interval")
        ticks = [value for value in (idle_timeout, heartbeat) if value]
        tick = max(0.05, min(ticks) / 2.0) if ticks else 1.0
        next_heartbeat = (
            time.monotonic() + heartbeat if heartbeat else None
        )
        try:
            while self._stream_mode():
                await asyncio.sleep(tick)
                if not self._stream_mode():
                    break
                now = time.monotonic()
                if (
                    idle_timeout
                    and now - self._stream_last_feed >= idle_timeout
                    and not self._document_in_progress()
                ):
                    self._idle_stream_closures += 1
                    stats = self._close_stream_session(reason="idle_timeout")
                    self._broadcast_stream_frame(
                        {
                            "type": "stream_idle",
                            "idle_timeout": idle_timeout,
                            "stats": stats,
                        }
                    )
                    break
                if next_heartbeat is not None and now >= next_heartbeat:
                    next_heartbeat = now + heartbeat
                    self._heartbeats_sent += 1
                    self._broadcast_stream_frame(self._heartbeat_frame())
        except asyncio.CancelledError:
            pass
        finally:
            if self._stream_monitor_task is asyncio.current_task():
                self._stream_monitor_task = None

    def _heartbeat_frame(self) -> Dict[str, Any]:
        stream = self._stream
        frame: Dict[str, Any] = {
            "type": "heartbeat",
            "documents": self._documents,
            "elements": self._elements_total,
        }
        if stream is not None:
            frame["elements"] = self._elements_total + stream.elements
            frame["in_document"] = stream.in_document
        return frame

    def _broadcast_stream_frame(self, frame: Dict[str, Any]) -> None:
        """Push a stream lifecycle frame to every subscriber connection."""
        wire = encode_frame(frame)
        for connection in self._connections:
            if connection.names:
                self._enqueue(connection, None, wire)

    def _cmd_feed(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        data = frame.get("data")
        if not isinstance(data, str):
            raise ProtocolError("feed needs a 'data' string")
        if self._stream is not None:
            self._stream_feed(connection, data)
            return
        if self._session is None:
            self._session = self._engine.session(parser=self.parser)
        started = time.perf_counter()
        try:
            pairs = self._session.feed_text(data)
        except Exception as exc:
            # Any failure — parse error or unexpected — must tear the
            # document down completely: a stale session entry would keep
            # surfacing through /stats and reject every later feed.
            self._abort_document(str(exc))
            raise
        finally:
            self._busy_seconds += time.perf_counter() - started
        if pairs:
            self._route(pairs)

    def _cmd_finish(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        if self._stream_mode():
            raise ProtocolError(
                "finish is not used in stream mode: document boundaries are "
                "autodetected (stream_close ends the session)"
            )
        session = self._session
        if session is None:
            raise ProtocolError("no document in progress")
        started = time.perf_counter()
        try:
            pairs = session.finish()
        except Exception as exc:
            self._abort_document(str(exc))
            raise
        finally:
            self._busy_seconds += time.perf_counter() - started
        if pairs:
            self._route(pairs)
        document = self._documents
        elements = session.element_count
        self._elements_total += elements
        self._documents = document + 1
        self._session = None
        self._engine.reset()
        self._enqueue(
            connection,
            None,
            encode_frame(
                {"type": "finished", "document": document, "elements": elements}
            ),
        )
        self._broadcast_eof(document, aborted=False)

    def _cmd_stats(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        self._enqueue(connection, None, encode_frame(self.stats()))

    def _cmd_ping(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        self._enqueue(connection, None, encode_frame({"type": "pong"}))

    def _cmd_checkpoint(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        path = frame.get("path")
        if path is not None:
            if not isinstance(path, str) or not path:
                raise ProtocolError("checkpoint 'path' must be a non-empty string")
            path = self._client_checkpoint_path(path)
        meta = self.save_checkpoint(path)
        meta["type"] = "checkpointed"
        self._enqueue(connection, None, encode_frame(meta))

    def _cmd_restore(self, connection: _Connection, frame: Dict[str, Any]) -> None:
        path = frame.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError("restore needs a 'path' string")
        meta = self.restore_from_file(self._client_checkpoint_path(path))
        meta["type"] = "restored"
        self._enqueue(connection, None, encode_frame(meta))

    _COMMANDS: Dict[str, Callable] = {
        "subscribe": _cmd_subscribe,
        "subscribe_batch": _cmd_subscribe_batch,
        "unsubscribe": _cmd_unsubscribe,
        "feed": _cmd_feed,
        "finish": _cmd_finish,
        "stream_open": _cmd_stream_open,
        "stream_close": _cmd_stream_close,
        "stats": _cmd_stats,
        "ping": _cmd_ping,
        "checkpoint": _cmd_checkpoint,
        "restore": _cmd_restore,
    }

    # ------------------------------------------------------ solution fanout

    def _route(self, pairs: List[Tuple[str, Solution]]) -> None:
        """Fan delivered pairs out to their owners' outboxes (or callbacks)."""
        ts = asyncio.get_running_loop().time()
        subscriptions = self._subscriptions
        self._solutions_total += len(pairs)
        for name, solution in pairs:
            handle = subscriptions.get(name)
            if handle is None:  # pragma: no cover - engine/server maps in sync
                continue
            handle.delivered += 1
            if handle.connection is None:
                if handle.callback is not None:
                    # Same isolation as the engine's deliver path: one bad
                    # local callback must not abort the feed that was being
                    # parsed (or drop the publisher's connection).
                    try:
                        handle.callback(name, solution)
                    except Exception:
                        handle.callback_errors += 1
                continue
            handle.connection.delivered += 1
            frame = encode_frame(
                {
                    "type": "solution",
                    "name": name,
                    "ts": ts,
                    "solution": solution_to_payload(solution),
                }
            )
            self._enqueue(handle.connection, name, frame)

    def _broadcast_eof(
        self, document: int, aborted: bool, error: str = "", draining: bool = False
    ) -> None:
        for connection in self._connections:
            if not connection.names:
                continue
            frame: Dict[str, Any] = {
                "type": "eof",
                "document": document,
                "aborted": aborted,
                "delivered": connection.delivered,
                "dropped": connection.dropped,
            }
            if error:
                frame["error"] = error
            if draining:
                frame["draining"] = True
            self._enqueue(connection, None, encode_frame(frame))

    def _abort_document(self, message: str, draining: bool = False) -> None:
        """A chunk failed to parse: the session already reset the machines;
        tear the session entry down completely (its elements still count
        toward the lifetime totals), count the abort, and tell subscribers
        the document died so the next feed arms a fresh one."""
        session = self._session
        if session is not None:
            self._elements_total += session.element_count
        document = self._documents
        self._documents = document + 1
        self._aborted_documents += 1
        self._session = None
        self._broadcast_eof(document, aborted=True, error=message, draining=draining)


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CHECKPOINT_VERSION_SHARDED",
    "CHECKPOINT_VERSION_STREAM",
    "DEFAULT_CHECKPOINT_PATH",
    "DEFAULT_OUTBOX_LIMIT",
    "DEFAULT_PORT",
    "ServiceServer",
]
