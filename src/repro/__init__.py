"""ViteX reproduction: a streaming XPath processing system (ICDE 2005).

This package re-implements the ViteX system of Chen, Davidson and Zheng:
single-pass XPath evaluation over XML streams with polynomial time and space,
built on the TwigM machine.  The most common entry points are re-exported
here::

    from repro import evaluate, stream_evaluate, compile_query, TwigMEvaluator

    results = evaluate("//ProteinEntry[reference]/@id", "protein.xml")
    for solution in results:
        print(solution.describe())

Sub-packages:

* :mod:`repro.xmlstream` — streaming XML substrate (tokenizer, SAX bridge, DOM)
* :mod:`repro.xpath`     — XPath lexer/parser/normalizer for XP{/,//,*,[]}
* :mod:`repro.core`      — the TwigM machine, builder and evaluation engine
* :mod:`repro.baselines` — DOM oracle and naive enumerating streamer
* :mod:`repro.datasets`  — synthetic datasets (protein, recursive, auction, news)
* :mod:`repro.bench`     — benchmark harness reproducing the paper's experiments
"""

from .core.engine import TwigMEvaluator, evaluate, stream_evaluate
from .core.results import NodeRef, ResultSet, Solution, SolutionKind
from .errors import (
    DatasetError,
    EngineError,
    UnsupportedFeatureError,
    ViteXError,
    XMLSyntaxError,
    XPathError,
    XPathSyntaxError,
)
from .xpath.normalize import compile_query
from .xpath.parser import parse_xpath

__version__ = "1.0.0"

__all__ = [
    "DatasetError",
    "EngineError",
    "NodeRef",
    "ResultSet",
    "Solution",
    "SolutionKind",
    "TwigMEvaluator",
    "UnsupportedFeatureError",
    "ViteXError",
    "XMLSyntaxError",
    "XPathError",
    "XPathSyntaxError",
    "__version__",
    "compile_query",
    "evaluate",
    "parse_xpath",
    "stream_evaluate",
]
