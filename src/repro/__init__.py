"""ViteX reproduction: a streaming XPath processing system (ICDE 2005).

This package re-implements the ViteX system of Chen, Davidson and Zheng:
single-pass XPath evaluation over XML streams with polynomial time and space,
built on the TwigM machine.  The unified public API is re-exported here —
one engine, one query type, one match type, across local, streaming and
remote modes::

    from repro import Engine, Query, connect, evaluate

    # one-shot helper
    for solution in evaluate("//ProteinEntry[reference]/@id", "protein.xml"):
        print(solution.describe())

    # standing subscriptions over one engine
    with Engine() as engine:
        acme = engine.subscribe(Query("//update[quote/@symbol='ACME']"))
        results = engine.evaluate("feed.xml")[acme.name]

    # the same verbs over the wire (asyncio)
    engine = await connect("127.0.0.1", 8005)

Sub-packages:

* :mod:`repro.api`       — the unified facade (Query/Engine/Match/connect)
* :mod:`repro.xmlstream` — streaming XML substrate (tokenizer, SAX bridge, DOM)
* :mod:`repro.xpath`     — XPath lexer/parser/normalizer for XP{/,//,*,[]}
* :mod:`repro.core`      — the TwigM machine, builder and evaluation engine
* :mod:`repro.service`   — the asyncio subscription service (server + client)
* :mod:`repro.baselines` — DOM oracle and naive enumerating streamer
* :mod:`repro.datasets`  — synthetic datasets (protein, recursive, auction, news)
* :mod:`repro.bench`     — benchmark harness reproducing the paper's experiments

Legacy entry points (``TwigMEvaluator``, ``MultiQueryEvaluator.register``,
``ServiceClient``) keep working behind thin :class:`DeprecationWarning`
shims; see the README migration table.
"""

from .api import (
    Engine,
    EngineConfig,
    Match,
    Query,
    RemoteEngine,
    RemoteSession,
    RemoteSubscription,
    Session,
    connect,
)
from .api.compat import TwigMEvaluator
from .core.checkpoint import dumps_snapshot, loads_snapshot
from .core.docstream import DocumentStreamSession, WindowStats
from .core.engine import evaluate, stream_evaluate
from .core.multi import MultiQueryEvaluator, Subscription, evaluate_many
from .core.results import NodeRef, ResultSet, Solution, SolutionKind
from .core.session import StreamSession
from .errors import (
    CheckpointError,
    DatasetError,
    EngineError,
    UnsupportedFeatureError,
    ViteXError,
    XMLSyntaxError,
    XPathError,
    XPathSyntaxError,
)
from .service.client import ServiceClient, ServiceError
from .xpath.normalize import compile_query
from .xpath.parser import parse_xpath

__version__ = "1.4.0"

__all__ = [
    "CheckpointError",
    "DatasetError",
    "DocumentStreamSession",
    "Engine",
    "EngineConfig",
    "EngineError",
    "Match",
    "MultiQueryEvaluator",
    "NodeRef",
    "Query",
    "RemoteEngine",
    "RemoteSession",
    "RemoteSubscription",
    "ResultSet",
    "ServiceClient",
    "ServiceError",
    "Session",
    "Solution",
    "SolutionKind",
    "StreamSession",
    "Subscription",
    "TwigMEvaluator",
    "UnsupportedFeatureError",
    "ViteXError",
    "WindowStats",
    "XMLSyntaxError",
    "XPathError",
    "XPathSyntaxError",
    "__version__",
    "compile_query",
    "connect",
    "dumps_snapshot",
    "evaluate",
    "evaluate_many",
    "loads_snapshot",
    "parse_xpath",
    "stream_evaluate",
]
