"""Command-line interface: ``vitex`` (or ``python -m repro.cli``).

Subcommands mirror how the original demo system was driven:

* ``vitex run QUERY FILE`` — evaluate an XPath query over an XML file (or
  stdin with ``-``), printing solutions as they are found.
* ``vitex explain QUERY`` — show the parsed query twig and the TwigM machine
  that the builder constructs for it (paper Figure 3).
* ``vitex generate DATASET`` — write one of the synthetic datasets to a file.
* ``vitex bench EXPERIMENT`` — run one of the E1–E8/M1 experiments and print
  the report table.
* ``vitex watch QUERIES FILE`` — register many standing queries (one per
  line) and stream ``[name] solution`` matches as they are found.
* ``vitex serve`` / ``vitex publish`` / ``vitex subscribe`` — the streaming
  subscription service: a long-lived server holding standing queries,
  publishers pushing live XML at it chunk by chunk, and subscribers
  receiving solution frames (see :mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import asyncio
import inspect
import json
import os
import re
import signal
import sys
from typing import List, Optional, Tuple

from . import __version__
from .api import Engine, EngineConfig, Query
from .bench import (
    print_report,
    render_table,
    run_builder_scaling,
    run_incremental_latency,
    run_memory_stability,
    run_multiquery_scaling,
    run_pipeline_throughput,
    run_protein_breakdown,
    run_query_size_scaling,
    run_query_variety,
    run_service_scaling,
    run_service_sharded_scaling,
    run_soak,
    run_subscription_scaling,
)
from .core.engine import TwigMEvaluator as _SingleQueryEvaluator
from .core.builder import build_machine
from .datasets.auction import AuctionConfig, AuctionGenerator
from .datasets.newsfeed import NewsFeedConfig, NewsFeedGenerator
from .datasets.protein import ProteinConfig, ProteinDatabaseGenerator
from .datasets.recursive import RecursiveBookGenerator, RecursiveConfig
from .datasets.treebank import TreebankConfig, TreebankGenerator
from .errors import ViteXError
from .xpath.analysis import describe
from .xpath.normalize import compile_query, query_to_string


#: The one ``--parser`` spelling shared by every XML-parsing verb.  Choices
#: come from :class:`repro.api.EngineConfig` so the CLI can never drift from
#: the library's accepted backends (a test enforces the sync).
PARSER_CHOICES = EngineConfig.PARSERS


def _parser_flag_parent() -> argparse.ArgumentParser:
    """Shared argparse parent providing the uniform ``--parser`` flag.

    The default is ``None`` so each verb can keep its own effective default
    (always ``native`` today) without the parent hard-coding it; verbs
    resolve via :func:`_effective_parser`.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--parser",
        choices=PARSER_CHOICES,
        default=None,
        help="parser back-end: pure (alias native) or expat (default: native)",
    )
    return parent


def _effective_parser(args: argparse.Namespace, default: str = "native") -> str:
    """The verb's parser backend: the shared flag, or the verb default."""
    parser = getattr(args, "parser", None)
    return default if parser is None else parser


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="vitex",
        description="ViteX reproduction: streaming XPath processing (ICDE 2005)",
    )
    parser.add_argument("--version", action="version", version=f"vitex-repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")
    parser_flag = _parser_flag_parent()

    run_parser = subparsers.add_parser(
        "run",
        help="evaluate a query over an XML document",
        parents=[parser_flag],
    )
    run_parser.add_argument("query", help="XPath expression (XP{/,//,*,[]} fragment)")
    run_parser.add_argument("file", help="path to an XML file, or - for stdin")
    run_parser.add_argument(
        "--fragments",
        action="store_true",
        help="print serialized XML fragments for element solutions",
    )
    run_parser.add_argument(
        "--eager",
        action="store_true",
        help="emit solutions eagerly when the remaining ancestors carry no predicates",
    )
    run_parser.add_argument(
        "--stats", action="store_true", help="print engine statistics after the run"
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="print only the solution count"
    )

    watch_parser = subparsers.add_parser(
        "watch",
        help="register standing queries from a file and stream matches",
        parents=[parser_flag],
        description=(
            "Register every query in QUERIES (one per line; 'name: query' "
            "assigns a subscription name, bare lines are auto-named, '#' "
            "starts a comment) and stream '[name] solution' lines as "
            "matches are found — the paper's stock-ticker subscription "
            "scenario on the command line."
        ),
    )
    watch_parser.add_argument("queries", help="path to the query file")
    watch_parser.add_argument("file", help="path to an XML file, or - for stdin")
    watch_parser.add_argument(
        "--quiet", action="store_true", help="print only the per-subscription totals"
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the streaming subscription service",
        parents=[parser_flag],
        description=(
            "Start the asyncio subscription server: clients SUBSCRIBE "
            "standing queries and FEED live XML; solutions are pushed back "
            "as they are found.  With --watch, queries from a watch-format "
            "file are registered server-side and matches print to stdout."
        ),
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=None, help="TCP port (default 8005; 0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--watch",
        metavar="QUERIES",
        default=None,
        help="register server-local standing queries from a watch-format file",
    )
    serve_parser.add_argument(
        "--outbox-limit",
        type=int,
        default=None,
        help="per-connection outbox bound in frames (slow consumers drop oldest)",
    )
    serve_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file path (default vitex-checkpoint.json) used by "
        "the checkpoint frame, vitex checkpoint and --checkpoint-interval",
    )
    serve_parser.add_argument(
        "--checkpoint-interval",
        type=float,
        metavar="SECONDS",
        default=None,
        help="auto-write the checkpoint file every SECONDS (chunk-aligned)",
    )
    serve_parser.add_argument(
        "--workers",
        default="1",
        metavar="N",
        help="shard subscriptions across N worker processes, or 'auto' for "
        "one per CPU core (default 1: single-process server, byte-identical "
        "protocol)",
    )
    serve_parser.add_argument(
        "--shard-mode",
        choices=("auto", "events", "broadcast"),
        default="auto",
        help="how the front feeds its workers: 'events' parses each document "
        "once and ships binary event frames (worker protocol v2), "
        "'broadcast' ships raw XML for every worker to re-parse (v1), "
        "'auto' negotiates events when the whole pool supports it (default)",
    )

    resume_parser = subparsers.add_parser(
        "resume",
        help="restore a checkpoint file and continue serving",
        parents=[parser_flag],
        description=(
            "Start the subscription server from a checkpoint written by "
            "'vitex checkpoint' / the checkpoint frame / --checkpoint-interval: "
            "standing queries, machine state and any half-parsed document "
            "resume exactly where the checkpoint was taken.  Subscribers "
            "re-attach by subscribing under their previous names."
        ),
    )
    resume_parser.add_argument("checkpoint_file", help="path to the checkpoint file")
    resume_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    resume_parser.add_argument(
        "--port", type=int, default=None, help="TCP port (default 8005; 0 = ephemeral)"
    )
    resume_parser.add_argument(
        "--watch",
        metavar="QUERIES",
        default=None,
        help="re-bind printing callbacks to restored server-local queries "
        "(and register any new ones from the watch-format file)",
    )
    resume_parser.add_argument(
        "--outbox-limit",
        type=int,
        default=None,
        help="per-connection outbox bound in frames (slow consumers drop oldest)",
    )
    resume_parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="checkpoint file path for future checkpoints "
        "(default: the file being resumed)",
    )
    resume_parser.add_argument(
        "--checkpoint-interval",
        type=float,
        metavar="SECONDS",
        default=None,
        help="auto-write the checkpoint file every SECONDS (chunk-aligned)",
    )
    resume_parser.add_argument(
        "--workers",
        default="1",
        metavar="N",
        help="shard the restored subscriptions across N worker processes, or "
        "'auto' for one per CPU core (mid-document checkpoints need N = the "
        "count that wrote them)",
    )
    resume_parser.add_argument(
        "--shard-mode",
        choices=("auto", "events", "broadcast"),
        default="auto",
        help="worker feed strategy (see 'vitex serve --help'); checkpoints "
        "taken mid-document in events mode must be resumed with 'auto' or "
        "'events'",
    )

    checkpoint_parser = subparsers.add_parser(
        "checkpoint",
        help="ask a running service to write a checkpoint file",
        description=(
            "Connect to a running vitex service and trigger a checkpoint: "
            "the server writes its live state (standing queries, machine "
            "stacks, any half-parsed document) to disk and reports the path "
            "and size.  Resume later with 'vitex resume'."
        ),
    )
    checkpoint_parser.add_argument("--host", default="127.0.0.1")
    checkpoint_parser.add_argument("--port", type=int, default=None)
    checkpoint_parser.add_argument(
        "--path",
        default=None,
        help="server-side path to write (default: the server's configured path)",
    )

    publish_parser = subparsers.add_parser(
        "publish",
        help="stream an XML document to the subscription service",
        parents=[parser_flag],
        description=(
            "Read FILE (or stdin with -) and push it to a running vitex "
            "service in chunks, then finish the document."
        ),
    )
    publish_parser.add_argument("file", help="path to an XML file, or - for stdin")
    publish_parser.add_argument("--host", default="127.0.0.1")
    publish_parser.add_argument("--port", type=int, default=None)
    publish_parser.add_argument(
        "--chunk-size",
        type=int,
        # Worst case ~6 bytes per character once JSON-escaped (control
        # chars); 32 Ki characters keeps any frame under the service's
        # 256 KiB frame bound.
        default=32 * 1024,
        help="feed chunk size in characters (default 32768)",
    )
    publish_parser.add_argument(
        "--no-finish",
        action="store_true",
        help="leave the document open (more chunks will follow from elsewhere)",
    )
    publish_parser.add_argument(
        "--follow",
        action="store_true",
        help="infinite-stream mode: open a stream session (document "
        "boundaries autodetected server-side), tail FILE as it grows — or "
        "stdin until EOF — and close the session on Ctrl-C, printing its "
        "final stats",
    )
    publish_parser.add_argument(
        "--retain-docs",
        type=int,
        metavar="K",
        default=None,
        help="(--follow) retain the last K documents server-side so late "
        "subscribers can join with a replay window",
    )
    publish_parser.add_argument(
        "--retain-bytes",
        type=int,
        metavar="B",
        default=None,
        help="(--follow) bound the server-side retention spool to B bytes",
    )
    publish_parser.add_argument(
        "--on-error",
        choices=("skip", "raise"),
        default=None,
        help="(--follow) parse-error policy: 'skip' abandons the bad "
        "document and resumes at the next boundary (default), 'raise' "
        "closes the stream session",
    )
    publish_parser.add_argument(
        "--idle-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="(--follow) ask the server to close the stream session after "
        "this long without a feed",
    )
    publish_parser.add_argument(
        "--heartbeat-interval",
        type=float,
        metavar="SECONDS",
        default=None,
        help="(--follow) ask the server to push heartbeat frames at this "
        "interval while the stream session is open",
    )

    subscribe_parser = subparsers.add_parser(
        "subscribe",
        help="hold standing queries against the subscription service",
        description=(
            "Subscribe one or more queries and print '[name] solution' "
            "lines as the service pushes matches; Ctrl-C prints totals."
        ),
    )
    subscribe_parser.add_argument("queries", nargs="+", help="XPath expressions")
    subscribe_parser.add_argument("--host", default="127.0.0.1")
    subscribe_parser.add_argument("--port", type=int, default=None)
    subscribe_parser.add_argument(
        "--count", type=int, default=None, help="exit after this many solutions"
    )
    subscribe_parser.add_argument(
        "--replay",
        action="store_true",
        help="replay the server's retained document window before live "
        "delivery (needs an open stream session with retention, see "
        "'vitex publish --follow --retain-docs')",
    )

    explain_parser = subparsers.add_parser("explain", help="show the query twig and TwigM machine")
    explain_parser.add_argument("query", help="XPath expression")

    generate_parser = subparsers.add_parser("generate", help="write a synthetic dataset to a file")
    generate_parser.add_argument(
        "dataset", choices=("protein", "recursive", "auction", "newsfeed", "treebank")
    )
    generate_parser.add_argument("output", help="output path")
    generate_parser.add_argument("--size-mb", type=float, default=1.0, help="approximate size in MB")
    generate_parser.add_argument("--seed", type=int, default=0)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run one of the paper's experiments, or compare reports",
        parents=[parser_flag],
        description=(
            "Run one of the E1–E8/M1/M2 experiments, or — with 'compare' — "
            "diff freshly produced report JSONs against committed baselines "
            "and fail on throughput regressions (the CI gate)."
        ),
    )
    bench_parser.add_argument(
        "experiment",
        choices=(
            "protein-breakdown",
            "memory-stability",
            "query-size-scaling",
            "builder-linear",
            "query-variety",
            "incremental-latency",
            "pipeline",
            "multiquery",
            "subscriptions",
            "service",
            "soak",
            "compare",
        ),
    )
    bench_parser.add_argument(
        "reports",
        nargs="*",
        metavar="REPORT",
        help="(compare only) fresh BENCH_*.json report files to check",
    )
    bench_parser.add_argument("--quick", action="store_true", help="use reduced problem sizes")
    bench_parser.add_argument(
        "--workers",
        metavar="N[,N...]",
        default=None,
        help="(service only) run the sharded sweep over these worker counts "
        "instead of the subscriber sweep; a workers=1 baseline row is always "
        "included (e.g. --workers 2 or --workers 1,2,4)",
    )
    bench_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the experiment rows as JSON (e.g. BENCH_pipeline.json)",
    )
    bench_parser.add_argument(
        "--baseline-dir",
        metavar="DIR",
        default=".",
        help="(compare only) directory holding the committed baselines "
        "matched by file name (default: current directory)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="(compare only) allowed fractional regression before failing "
        "(default 0.30)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "watch":
            return _command_watch(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "resume":
            return _command_resume(args)
        if args.command == "checkpoint":
            return _command_checkpoint(args)
        if args.command == "publish":
            return _command_publish(args)
        if args.command == "subscribe":
            return _command_subscribe(args)
        if args.command == "explain":
            return _command_explain(args)
        if args.command == "generate":
            return _command_generate(args)
        if args.command == "bench":
            return _command_bench(args)
    except ViteXError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2  # pragma: no cover - unreachable


def _command_run(args: argparse.Namespace) -> int:
    # Fragment capture and eager emission are single-machine features, so
    # ``run`` drives the internal single-query evaluator directly (the
    # query still goes through the compiled ``Query`` value object).
    evaluator = _SingleQueryEvaluator(
        Query(args.query), capture_fragments=args.fragments, eager_emission=args.eager
    )
    if args.file == "-":
        source = sys.stdin.read()
    else:
        source = open(args.file, "rb")
    count = 0
    try:
        for solution in evaluator.stream(source, parser=_effective_parser(args)):
            count += 1
            if args.quiet:
                continue
            print(solution.describe())
            if args.fragments and solution.fragment:
                print(f"    {solution.fragment}")
    finally:
        if hasattr(source, "close"):
            source.close()
    print(f"{count} solution(s)")
    if args.stats:
        for key, value in evaluator.statistics.as_dict().items():
            print(f"  {key}: {value}")
    return 0


#: ``name: query`` line in a watch query file (names never start with ``/``,
#: so there is no ambiguity with bare XPath lines).
_WATCH_LINE_RE = re.compile(r"^([A-Za-z_][\w.-]*):\s+(.+)$")


def _load_watch_queries(path: str) -> List[Tuple[Optional[str], str]]:
    """Parse a watch query file into ``(name or None, query)`` entries."""
    entries: List[Tuple[Optional[str], str]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = _WATCH_LINE_RE.match(line)
            if match:
                entries.append((match.group(1), match.group(2).strip()))
            else:
                entries.append((None, line))
    return entries


def _command_watch(args: argparse.Namespace) -> int:
    entries = _load_watch_queries(args.queries)
    if not entries:
        print(f"error: no queries found in {args.queries}", file=sys.stderr)
        return 1
    engine = Engine(EngineConfig(parser=_effective_parser(args)))
    for name, query in entries:
        engine.subscribe(query, name=name)
    if args.file == "-":
        source = sys.stdin.read()
    else:
        source = open(args.file, "rb")
    # A long watch over a live pipe is routinely ended with Ctrl-C: convert
    # SIGINT into the summary path (delivery counts + engine close, which
    # releases the compiled-query cache refs) instead of a bare traceback.
    def _sigint_handler(signum, frame):
        raise KeyboardInterrupt

    try:
        previous_handler = signal.signal(signal.SIGINT, _sigint_handler)
    except ValueError:  # not the main thread (e.g. under a test runner)
        previous_handler = None
    interrupted = False
    try:
        try:
            for match in engine.stream(source):
                if not args.quiet:
                    print(match.describe())
        except KeyboardInterrupt:
            interrupted = True
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
        if hasattr(source, "close"):
            source.close()
    if interrupted:
        print("interrupted; delivery counts so far:", file=sys.stderr)
    for subscription in engine.subscriptions:
        print(
            f"{subscription.name}: {subscription.delivered} solution(s) "
            f"for {subscription.query}"
        )
    engine.close()
    return 130 if interrupted else 0


def _service_port(args: argparse.Namespace) -> int:
    from .service.server import DEFAULT_PORT

    return DEFAULT_PORT if args.port is None else args.port


def _command_serve(args: argparse.Namespace) -> int:
    return _serve_main(args, restore_path=None)


def _command_resume(args: argparse.Namespace) -> int:
    return _serve_main(args, restore_path=args.checkpoint_file)


def _serve_main(args: argparse.Namespace, restore_path: Optional[str]) -> int:
    from .service.server import DEFAULT_OUTBOX_LIMIT, ServiceServer

    workers_arg = getattr(args, "workers", 1)
    shard_mode = getattr(args, "shard_mode", "auto")
    if isinstance(workers_arg, str) and workers_arg.strip().lower() == "auto":
        workers = os.cpu_count() or 1
    else:
        try:
            workers = int(workers_arg)
        except (TypeError, ValueError):
            print(
                f"error: --workers must be an integer or 'auto', "
                f"got {workers_arg!r}",
                file=sys.stderr,
            )
            return 1
    if workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 1
    cores = os.cpu_count()
    if cores is not None and workers > cores:
        print(
            f"warning: --workers {workers} exceeds the {cores} available "
            f"CPU core(s); worker processes will contend for cores",
            file=sys.stderr,
        )
    outbox_limit = (
        DEFAULT_OUTBOX_LIMIT if args.outbox_limit is None else args.outbox_limit
    )
    watch_entries: List[Tuple[Optional[str], str]] = []
    if args.watch:
        try:
            watch_entries = _load_watch_queries(args.watch)
        except OSError as exc:
            print(f"error: cannot read {args.watch}: {exc}", file=sys.stderr)
            return 1
        if not watch_entries:
            print(f"error: no queries found in {args.watch}", file=sys.stderr)
            return 1
    checkpoint_path = args.checkpoint
    if checkpoint_path is None and restore_path is not None:
        # Future checkpoints of a resumed server overwrite the file it came
        # from unless redirected.
        checkpoint_path = restore_path

    async def _run() -> int:
        server_kwargs = dict(
            parser=_effective_parser(args),
            outbox_limit=outbox_limit,
            checkpoint_path=checkpoint_path,
            checkpoint_interval=args.checkpoint_interval,
        )
        if workers > 1 or shard_mode == "events":
            from .service.sharding import ShardedServiceServer

            # An explicit --shard-mode events forces the sharded front even
            # at --workers 1 (parse-once over one worker pipe).
            server = ShardedServiceServer(
                workers=workers, shard_mode=shard_mode, **server_kwargs
            )
        else:
            # ``--workers 1`` is the plain single-process server: byte-
            # identical protocol, no worker pipes in the path.
            server = ServiceServer(**server_kwargs)

        def _print_solution(name: str, solution) -> None:
            print(f"[{name}] {solution.describe()}", flush=True)

        if restore_path is not None:
            summary = server.restore_from_file(restore_path)
            if inspect.isawaitable(summary):
                # The sharded server restores asynchronously (it round-trips
                # per-worker snapshots over the pipes).
                summary = await summary
            state = "mid-document" if summary["mid_document"] else "between documents"
            print(
                f"resumed {restore_path}: {summary['subscriptions']} "
                f"subscription(s), {summary['elements']} element(s) parsed, "
                f"{state}",
                flush=True,
            )
        for name, query in watch_entries:
            if name is not None and server.rebind_local_callback(
                name, _print_solution, query=query
            ):
                print(f"watching [{name}] {query} (restored)")
                continue
            registered = server.add_local_subscription(
                query, name=name, callback=_print_solution
            )
            print(f"watching [{registered}] {query}")
        await server.start(args.host, _service_port(args))
        host, port = server.address
        print(f"vitex service listening on {host}:{port}", flush=True)
        stop = asyncio.Event()
        graceful = False

        def _request_stop(drain: bool) -> None:
            # SIGTERM asks for a graceful drain (stop accepting, flush every
            # outbox, broadcast eof); SIGINT keeps the immediate shutdown.
            nonlocal graceful
            graceful = graceful or drain
            stop.set()

        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGINT, _request_stop, False)
            loop.add_signal_handler(signal.SIGTERM, _request_stop, True)
        except NotImplementedError:  # pragma: no cover - non-unix loops
            pass
        serve_task = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        if graceful:
            print("draining: flushing outboxes before shutdown", flush=True)
            await server.drain()
        stats = server.stats()
        serve_task.cancel()
        try:
            await serve_task
        except asyncio.CancelledError:
            pass
        await server.close()
        print(
            f"shutting down: {stats['documents']} document(s), "
            f"{stats['elements']} element(s), {stats['solutions']} solution(s) delivered"
        )
        for name, detail in stats["subscription_detail"].items():
            dropped = f", {detail['dropped']} dropped" if detail["dropped"] else ""
            print(
                f"{name}: {detail['delivered']} solution(s){dropped} "
                f"for {detail['query']}"
            )
        return 0

    return asyncio.run(_run())


def _command_checkpoint(args: argparse.Namespace) -> int:
    from .api.remote import connect
    from .service.client import ServiceError

    async def _run() -> int:
        try:
            client = await connect(args.host, _service_port(args))
        except OSError as exc:
            print(
                f"error: cannot reach service at {args.host}:{_service_port(args)}: {exc}",
                file=sys.stderr,
            )
            return 1
        try:
            reply = await client.checkpoint(args.path)
            state = "mid-document" if reply.get("mid_document") else "between documents"
            print(
                f"checkpointed {reply['subscriptions']} subscription(s) "
                f"to {reply['path']} ({reply['bytes']} bytes, {state}); "
                f"resume with: vitex resume {reply['path']}"
            )
            return 0
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            await client.close()

    return asyncio.run(_run())


def _command_publish(args: argparse.Namespace) -> int:
    from .api.remote import connect
    from .service.client import ServiceError

    if args.chunk_size <= 0:
        print("error: --chunk-size must be positive", file=sys.stderr)
        return 1
    stream_only = (
        args.retain_docs,
        args.retain_bytes,
        args.on_error,
        args.idle_timeout,
        args.heartbeat_interval,
    )
    if not args.follow and any(value is not None for value in stream_only):
        print(
            "error: --retain-docs/--retain-bytes/--on-error/--idle-timeout/"
            "--heartbeat-interval configure the stream session and need --follow",
            file=sys.stderr,
        )
        return 1
    if args.follow and args.no_finish:
        print(
            "error: --no-finish is a bounded-document flag; --follow has no "
            "finish (boundaries are autodetected)",
            file=sys.stderr,
        )
        return 1
    if args.follow:
        return _publish_follow(args)

    async def _run() -> int:
        try:
            client = await connect(args.host, _service_port(args))
        except OSError as exc:
            print(
                f"error: cannot reach service at {args.host}:{_service_port(args)}: {exc}",
                file=sys.stderr,
            )
            return 1
        try:
            if args.file == "-":
                handle = sys.stdin
            else:
                handle = open(args.file, "r", encoding="utf-8")
            session = client.open()
            sent = 0
            chunks = 0
            try:
                while True:
                    chunk = handle.read(args.chunk_size)
                    if not chunk:
                        break
                    await session.feed_text(chunk)
                    sent += len(chunk)
                    chunks += 1
            finally:
                if handle is not sys.stdin:
                    handle.close()
            if args.no_finish:
                # Round-trip a ping: the server processes frames in order,
                # so any parse error for the chunks above has reached the
                # push lane by the time the pong lands.
                await client.ping()
                failure = _first_error_push(client)
                if failure is not None:
                    print(f"error: {failure}", file=sys.stderr)
                    return 1
                print(f"published {sent} char(s) in {chunks} chunk(s); document left open")
                return 0
            summary = await session.finish()
            print(
                f"published {sent} char(s) in {chunks} chunk(s); "
                f"document {summary['document']} finished "
                f"with {summary['elements']} element(s)"
            )
            return 0
        except ServiceError as exc:
            # A feed error that aborted the document makes finish() fail
            # with "no document in progress" — the push lane has the real
            # parse error; prefer it.
            failure = _first_error_push(client)
            print(f"error: {failure or exc}", file=sys.stderr)
            return 1
        finally:
            await client.close()

    return asyncio.run(_run())


def _publish_follow(args: argparse.Namespace) -> int:
    """``vitex publish --follow``: an endless feed into a stream session.

    Opens an infinite-stream session on the service, then tails FILE as it
    grows (or reads stdin until the pipe closes), shipping every new chunk
    as a raw ``feed`` frame — the server autodetects document boundaries.
    Ctrl-C closes the session gracefully and prints its final stats.
    """
    from .api.remote import connect
    from .service.client import ServiceError

    async def _run() -> int:
        try:
            client = await connect(args.host, _service_port(args))
        except OSError as exc:
            print(
                f"error: cannot reach service at {args.host}:{_service_port(args)}: {exc}",
                file=sys.stderr,
            )
            return 1
        interrupted = False
        sent = 0
        chunks = 0
        stop = asyncio.Event()
        tailing = args.file != "-"
        if tailing:
            # Tailing a file idles in asyncio timers, where a bare SIGINT
            # would surface as an unhandled KeyboardInterrupt out of
            # asyncio.run; route it to the stop event instead.  Reading
            # stdin blocks *inside* the coroutine, so there SIGINT must
            # stay the default KeyboardInterrupt (a loop-level handler
            # could never run while read() is blocked).
            try:
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGINT, stop.set
                )
            except NotImplementedError:  # pragma: no cover - non-unix loops
                pass
        try:
            try:
                reply = await client.stream_open(
                    retain_documents=args.retain_docs,
                    retain_bytes=args.retain_bytes,
                    on_error=args.on_error,
                    idle_timeout=args.idle_timeout,
                    heartbeat_interval=args.heartbeat_interval,
                )
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            replay = "on" if reply.get("replay") else "off"
            print(
                f"stream session open (replay {replay}); "
                "feeding until Ctrl-C" + (" or EOF" if not tailing else ""),
                flush=True,
            )
            handle = sys.stdin if args.file == "-" else open(
                args.file, "r", encoding="utf-8"
            )
            failure: Optional[str] = None
            try:
                while not stop.is_set():
                    chunk = handle.read(args.chunk_size)
                    if not chunk:
                        if not tailing:
                            break  # stdin pipe closed: the stream is over
                        try:
                            await asyncio.wait_for(stop.wait(), timeout=0.25)
                        except asyncio.TimeoutError:
                            pass
                        continue
                    await client.feed(chunk)
                    sent += len(chunk)
                    chunks += 1
                    failure = _first_error_push(client)
                    if failure is not None:
                        print(f"error: {failure}", file=sys.stderr)
                        break
            except KeyboardInterrupt:
                interrupted = True
            finally:
                if handle is not sys.stdin:
                    handle.close()
            interrupted = interrupted or stop.is_set()
            try:
                stats = (await client.stream_close()).get("stats", {})
            except ServiceError as exc:
                # A raise-mode parse error (or idle timeout) already closed
                # the session server-side; the push lane had the story.
                if failure is None:
                    print(f"error: {exc}", file=sys.stderr)
                return 1
            print(
                f"stream closed: published {sent} char(s) in {chunks} "
                f"chunk(s); {stats.get('documents', 0)} document(s) "
                f"({stats.get('documents_failed', 0)} failed), "
                f"{stats.get('elements', 0)} element(s)"
            )
            return 130 if interrupted else (1 if failure is not None else 0)
        finally:
            await client.close()

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return 130


def _first_error_push(client) -> Optional[str]:
    """The first buffered ``error`` push's message, if any."""
    for frame in client.pending_pushes():
        if frame.get("type") == "error":
            return frame.get("message", "service error")
    return None


def _command_subscribe(args: argparse.Namespace) -> int:
    from .api.remote import connect

    async def _run() -> int:
        try:
            client = await connect(args.host, _service_port(args))
        except OSError as exc:
            print(
                f"error: cannot reach service at {args.host}:{_service_port(args)}: {exc}",
                file=sys.stderr,
            )
            return 1
        delivered = {}
        try:
            for query in args.queries:
                subscription = await client.subscribe(
                    query, replay_window=args.replay
                )
                delivered[subscription.name] = 0
                print(f"subscribed [{subscription.name}] {query}", flush=True)
            remaining = args.count
            async for match in client.matches():
                print(match.describe(), flush=True)
                delivered[match.name] = delivered.get(match.name, 0) + 1
                if remaining is not None:
                    remaining -= 1
                    if remaining <= 0:
                        break
            return 0
        except KeyboardInterrupt:
            return 130
        finally:
            for name, count in delivered.items():
                print(f"{name}: {count} solution(s)", file=sys.stderr)
            await client.close()

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return 130


def _command_explain(args: argparse.Namespace) -> int:
    tree = compile_query(args.query)
    print(f"Query: {args.query}")
    print(f"Shape: {describe(tree)}")
    print()
    print("Normalized query twig:")
    print(query_to_string(tree))
    print()
    machine = build_machine(tree)
    print(machine.describe())
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    target_bytes = int(args.size_mb * 1024 * 1024)
    if args.dataset == "protein":
        generator = ProteinDatabaseGenerator(
            ProteinConfig(target_bytes=max(1024, target_bytes)), seed=args.seed
        )
    elif args.dataset == "recursive":
        depth = max(3, int(args.size_mb * 4))
        generator = RecursiveBookGenerator(
            RecursiveConfig(section_depth=depth, table_depth=depth, section_groups=depth),
            seed=args.seed,
        )
    elif args.dataset == "auction":
        scale = max(1, int(args.size_mb * 200))
        generator = AuctionGenerator(
            AuctionConfig(items=scale, people=scale // 2 + 1, open_auctions=scale // 2 + 1),
            seed=args.seed,
        )
    elif args.dataset == "treebank":
        generator = TreebankGenerator(
            TreebankConfig(sentences=max(5, int(args.size_mb * 1200))), seed=args.seed
        )
    else:
        generator = NewsFeedGenerator(
            NewsFeedConfig(updates=max(10, int(args.size_mb * 6000))), seed=args.seed
        )
    written = generator.write_to(args.output)
    print(f"wrote {written} bytes of {args.dataset} data to {args.output}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    quick = args.quick
    if args.experiment == "compare":
        return _command_bench_compare(args)
    if args.reports:
        print("error: REPORT arguments are only valid with 'compare'", file=sys.stderr)
        return 2
    if args.workers is not None and args.experiment != "service":
        print("error: --workers is only valid with 'service'", file=sys.stderr)
        return 2
    experiment_name = args.experiment
    # The shared --parser flag selects the backend for single-backend
    # experiments; backend-comparison experiments (pipeline) always sweep
    # every backend, and the rest are parse-free.  Passing nothing keeps
    # each experiment's own default (and the committed baseline row keys).
    backend_kwargs = {} if args.parser is None else {"parser": args.parser}
    if args.experiment == "protein-breakdown":
        rows = run_protein_breakdown(entries=(100, 200) if quick else (200, 400, 800))
        title = "E1: protein query time breakdown"
    elif args.experiment == "memory-stability":
        rows = run_memory_stability(sizes_mb=(0.5, 1) if quick else (1, 2, 4, 8))
        title = "E2: memory stability vs document size"
    elif args.experiment == "query-size-scaling":
        rows = run_query_size_scaling(max_steps=3 if quick else 5, nesting_depth=8 if quick else 10)
        title = "E3: TwigM vs naive enumeration"
    elif args.experiment == "builder-linear":
        rows = run_builder_scaling(step_counts=(1, 10, 50) if quick else (1, 5, 10, 25, 50, 100, 200))
        title = "E4: TwigM builder scaling"
    elif args.experiment == "query-variety":
        rows = run_query_variety(scale=0.2 if quick else 0.5)
        title = "E5: query variety across datasets"
    elif args.experiment == "incremental-latency":
        rows = [run_incremental_latency(updates=500 if quick else 3000)]
        title = "E7: incremental output latency"
    elif args.experiment == "multiquery":
        rows = run_multiquery_scaling(
            counts=(1, 10, 50) if quick else (1, 10, 50, 200, 500),
            records=1500 if quick else 4000,
            sample=10 if quick else 20,
            **backend_kwargs,
        )
        title = "M1: multi-query subscription scaling (indexed dispatch)"
    elif args.experiment == "subscriptions":
        # Quick counts are a subset of the full sweep (same document, same
        # families) so `bench compare` can match quick CI rows against the
        # committed full baseline; the traced memory pass is skipped under
        # --quick to keep the CI job short.
        rows = run_subscription_scaling(
            counts=(10_000,) if quick else (10_000, 100_000, 1_000_000),
            measure_memory=not quick,
            **backend_kwargs,
        )
        title = "M4: million-subscription index scaling (trie + containment)"
    elif args.experiment == "service" and args.workers is not None:
        try:
            worker_counts = tuple(
                int(part) for part in args.workers.split(",") if part.strip()
            )
        except ValueError:
            print(f"error: bad --workers value {args.workers!r}", file=sys.stderr)
            return 2
        if not worker_counts or min(worker_counts) < 1:
            print("error: --workers needs counts >= 1", file=sys.stderr)
            return 2
        # The sharded sweep workload is already quick-sized (every worker
        # count runs the identical document, so rows stay comparable between
        # --quick CI runs and the committed full-sweep baseline).
        rows = run_service_sharded_scaling(workers=worker_counts, **backend_kwargs)
        title = "M3: sharded service scaling across worker processes"
        experiment_name = "service-sharded"
    elif args.experiment == "soak":
        # The quick soak is a scaled-down run (its own committed baseline
        # BENCH_soak.quick.json, so quick CI rows never compare against the
        # full 2M-element sweep); both sizes keep the warm-up longer than
        # the retention spool so the flatness baseline is taken warm.
        rows = run_soak(
            documents=150 if quick else 1200,
            entries_per_document=120 if quick else 600,
            window_documents=25 if quick else 100,
            **backend_kwargs,
        )
        title = "M5: infinite-stream soak (flat memory over unbounded documents)"
    elif args.experiment == "service":
        # Quick counts are a subset of the full sweep so `bench compare`
        # can match quick CI rows against the committed full baseline.
        rows = run_service_scaling(
            counts=(1, 25, 100) if quick else (1, 25, 100, 200),
            records=400 if quick else 1500,
            **backend_kwargs,
        )
        title = "M2: subscription service end-to-end latency and throughput"
    else:
        rows = run_pipeline_throughput(
            target_bytes=(512 * 1024) if quick else (2 * 1024 * 1024),
            repeats=1 if quick else 3,
        )
        title = "E8: streaming-pipeline throughput per backend"
    print_report(render_table(rows, title=title))
    if args.json:
        from .bench.compare import machine_calibration

        payload = {
            "experiment": experiment_name,
            "title": title,
            "rows": rows,
            # Machine-speed probe: lets `bench compare` rescale absolute
            # throughputs between the baseline machine and a CI runner.
            "calibration_score": machine_calibration(),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _command_bench_compare(args: argparse.Namespace) -> int:
    from .bench.compare import DEFAULT_TOLERANCE, compare_files

    if not args.reports:
        print("error: bench compare needs at least one REPORT file", file=sys.stderr)
        return 2
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    failures, lines = compare_files(
        args.reports, baseline_dir=args.baseline_dir, tolerance=tolerance
    )
    for line in lines:
        print(line)
    if failures:
        print(
            f"\nFAIL: {len(failures)} metric(s) regressed beyond "
            f"{tolerance:.0%} tolerance:",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: no regression beyond {tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
