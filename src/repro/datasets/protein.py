"""Synthetic Protein Sequence Database documents.

The paper's quantitative claims are measured on the 75 MB Georgetown Protein
Information Resource (PIR) Protein Sequence Database XML export.  That file
is not redistributable and is unavailable offline, so this generator produces
a structurally equivalent substitute: a flat ``ProteinDatabase`` root with
thousands of ``ProteinEntry`` elements, each with an ``id`` attribute, a
``header``, an optional list of ``reference`` elements, an ``organism``, a
``sequence`` and a few ``feature`` records — the element vocabulary the
paper's example query ``//ProteinEntry[reference]/@id`` touches, with a
similar markup-to-text ratio.  The document scales to any byte size, which is
how the memory-stability experiment (E2) sweeps document size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import DatasetError
from .base import DatasetGenerator, XMLWriter, chunked

_AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"

_ORGANISMS = [
    "Homo sapiens",
    "Mus musculus",
    "Saccharomyces cerevisiae",
    "Escherichia coli",
    "Drosophila melanogaster",
    "Arabidopsis thaliana",
    "Rattus norvegicus",
    "Caenorhabditis elegans",
]

_JOURNALS = [
    "J. Biol. Chem.",
    "Proc. Natl. Acad. Sci. U.S.A.",
    "Nucleic Acids Res.",
    "Protein Sci.",
    "EMBO J.",
]

_KEYWORDS = [
    "oxidoreductase",
    "transferase",
    "hydrolase",
    "membrane",
    "signal peptide",
    "phosphoprotein",
    "zinc finger",
    "kinase",
]


@dataclass
class ProteinConfig:
    """Parameters of the synthetic protein database."""

    #: Number of ProteinEntry elements; ignored when ``target_bytes`` is set.
    entries: int = 1000
    #: Approximate size of the generated document; overrides ``entries``.
    target_bytes: Optional[int] = None
    #: Fraction of entries that carry at least one reference element.
    reference_probability: float = 0.8
    #: Maximum number of reference elements per entry.
    max_references: int = 3
    #: Length of the amino-acid sequence payload per entry.
    sequence_length: int = 320
    #: Maximum number of feature records per entry.
    max_features: int = 4

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` for invalid settings."""
        if self.entries < 1:
            raise DatasetError("entries must be >= 1")
        if self.target_bytes is not None and self.target_bytes < 1024:
            raise DatasetError("target_bytes must be at least 1 KiB")
        if not 0.0 <= self.reference_probability <= 1.0:
            raise DatasetError("reference_probability must be in [0, 1]")
        if self.max_references < 0:
            raise DatasetError("max_references must be >= 0")
        if self.sequence_length < 1:
            raise DatasetError("sequence_length must be >= 1")
        if self.max_features < 0:
            raise DatasetError("max_features must be >= 0")


class ProteinDatabaseGenerator(DatasetGenerator):
    """Generate a synthetic PIR-style protein sequence database."""

    name = "protein"

    def __init__(self, config: Optional[ProteinConfig] = None, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.config = config or ProteinConfig()
        self.config.validate()

    def chunks(self) -> Iterator[str]:
        self.reset()
        yield from chunked(self._parts())

    # ------------------------------------------------------------ internals

    def _parts(self) -> Iterator[str]:
        config = self.config
        writer = XMLWriter()
        writer.declaration()
        writer.start("ProteinDatabase")
        writer.newline()
        yield writer.drain()

        emitted_bytes = 0
        entry_index = 0
        while True:
            if config.target_bytes is not None:
                if emitted_bytes >= config.target_bytes:
                    break
            elif entry_index >= config.entries:
                break
            self._entry(writer, entry_index)
            chunk = writer.drain()
            emitted_bytes += len(chunk)
            entry_index += 1
            yield chunk

        writer.end("ProteinDatabase")
        writer.newline()
        yield writer.drain()

    def _entry(self, writer: XMLWriter, index: int) -> None:
        config = self.config
        rng = self.rng
        entry_id = f"PIR:{index:08d}"
        writer.start("ProteinEntry", {"id": entry_id})
        writer.newline()

        writer.start("header")
        writer.element("uid", entry_id)
        writer.element("accession", f"A{rng.randrange(10_000_000):07d}")
        writer.element("created_date", f"{rng.randrange(1988, 2002)}-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}")
        writer.end("header")
        writer.newline()

        writer.element("protein", f"protein {index} ({rng.choice(_KEYWORDS)})")
        writer.newline()
        writer.start("organism")
        writer.element("source", rng.choice(_ORGANISMS))
        writer.element("common", rng.choice(_ORGANISMS).split()[0])
        writer.end("organism")
        writer.newline()

        if rng.random() < config.reference_probability and config.max_references > 0:
            for ref_index in range(rng.randint(1, config.max_references)):
                self._reference(writer, index, ref_index)

        for keyword in rng.sample(_KEYWORDS, k=rng.randint(1, 3)):
            writer.element("keyword", keyword)
        writer.newline()

        for feature_index in range(rng.randint(0, config.max_features)):
            writer.start("feature", {"type": rng.choice(["site", "region", "modification"])})
            writer.element("description", f"feature {feature_index}")
            writer.element("position", str(rng.randrange(1, config.sequence_length)))
            writer.end("feature")
            writer.newline()

        sequence = "".join(rng.choice(_AMINO_ACIDS) for _ in range(config.sequence_length))
        writer.element("sequence", sequence, {"length": config.sequence_length})
        writer.newline()
        writer.end("ProteinEntry")
        writer.newline()

    def _reference(self, writer: XMLWriter, entry_index: int, ref_index: int) -> None:
        rng = self.rng
        writer.start("reference")
        writer.start("refinfo", {"refid": f"{entry_index}.{ref_index}"})
        writer.element("authors", f"Author {rng.randrange(100)} et al.")
        writer.element("citation", rng.choice(_JOURNALS))
        writer.element("year", str(rng.randrange(1975, 2002)))
        writer.element("title", f"Study {entry_index}-{ref_index} of {rng.choice(_KEYWORDS)}")
        writer.end("refinfo")
        writer.start("accinfo")
        writer.element("mol-type", rng.choice(["complete", "fragment"]))
        writer.end("accinfo")
        writer.end("reference")
        writer.newline()


def protein_dataset_of_size(target_bytes: int, seed: int = 0) -> ProteinDatabaseGenerator:
    """A protein dataset generator sized to roughly ``target_bytes`` bytes."""
    return ProteinDatabaseGenerator(ProteinConfig(target_bytes=target_bytes), seed=seed)
