"""Treebank-style documents: deep, highly recursive parse trees.

The Penn Treebank XML export is the other dataset streaming-XPath papers use
when they need *pathologically deep recursion* (parse trees nest the same
grammatical categories — S, NP, VP, PP — dozens of levels deep).  The real
Treebank is licensed, so this generator produces synthetic sentences with the
same structural character: every non-terminal is drawn from a small grammar
whose productions frequently reference themselves, giving documents whose
depth and same-tag nesting dwarf the protein and auction datasets.  It is
registered as the fifth benchmark workload and is the stress test for the
descendant-axis code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import DatasetError
from .base import DatasetGenerator, XMLWriter, chunked

#: Simplified grammar: non-terminal → list of possible child sequences.
#: Terminals (lower-case) emit a word; non-terminals recurse.
_GRAMMAR: Dict[str, List[Tuple[str, ...]]] = {
    "S": [("NP", "VP"), ("S", "CC", "S"), ("PP", "NP", "VP")],
    "NP": [("DT", "NN"), ("NP", "PP"), ("ADJP", "NN"), ("DT", "ADJP", "NN"), ("NNP",)],
    "VP": [("VB", "NP"), ("VB", "PP"), ("VP", "PP"), ("VB", "S")],
    "PP": [("IN", "NP"),],
    "ADJP": [("JJ",), ("ADJP", "JJ")],
}

_TERMINALS: Dict[str, List[str]] = {
    "DT": ["the", "a", "some", "every"],
    "NN": ["stream", "query", "stack", "table", "cell", "match", "engine"],
    "NNP": ["ViteX", "TwigM", "XPath", "ICDE"],
    "VB": ["processes", "matches", "scans", "emits", "prunes"],
    "IN": ["over", "under", "with", "inside"],
    "JJ": ["lazy", "recursive", "streaming", "compact", "polynomial"],
    "CC": ["and", "but"],
}


@dataclass
class TreebankConfig:
    """Parameters of the synthetic treebank generator."""

    #: Number of top-level sentences.
    sentences: int = 200
    #: Maximum recursion depth of a single parse tree.
    max_depth: int = 14
    #: Probability of choosing a recursive production when depth allows.
    recursion_bias: float = 0.5

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` for invalid settings."""
        if self.sentences < 1:
            raise DatasetError("sentences must be >= 1")
        if self.max_depth < 2:
            raise DatasetError("max_depth must be >= 2")
        if not 0.0 <= self.recursion_bias <= 1.0:
            raise DatasetError("recursion_bias must be in [0, 1]")


class TreebankGenerator(DatasetGenerator):
    """Generate deep, recursive parse-tree documents."""

    name = "treebank"

    def __init__(self, config: Optional[TreebankConfig] = None, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.config = config or TreebankConfig()
        self.config.validate()

    def chunks(self) -> Iterator[str]:
        self.reset()
        yield from chunked(self._parts())

    # ------------------------------------------------------------ internals

    def _parts(self) -> Iterator[str]:
        config = self.config
        writer = XMLWriter()
        writer.declaration()
        writer.start("treebank")
        writer.newline()
        yield writer.drain()
        for index in range(config.sentences):
            writer.start("sentence", {"id": index})
            self._expand(writer, "S", depth=1)
            writer.end("sentence")
            writer.newline()
            yield writer.drain()
        writer.end("treebank")
        writer.newline()
        yield writer.drain()

    def _expand(self, writer: XMLWriter, symbol: str, depth: int) -> None:
        config = self.config
        rng = self.rng
        if symbol in _TERMINALS:
            writer.element(symbol, rng.choice(_TERMINALS[symbol]))
            return
        writer.start(symbol)
        productions = _GRAMMAR[symbol]
        if depth >= config.max_depth:
            production = self._least_recursive(productions)
        else:
            recursive = [p for p in productions if any(child in _GRAMMAR for child in p)]
            terminal_like = [p for p in productions if p not in recursive]
            if recursive and rng.random() < config.recursion_bias:
                production = rng.choice(recursive)
            elif terminal_like:
                production = rng.choice(terminal_like)
            else:
                production = rng.choice(productions)
        for child in production:
            self._expand(writer, child, depth + 1)
        writer.end(symbol)

    @staticmethod
    def _least_recursive(productions: Sequence[Tuple[str, ...]]) -> Tuple[str, ...]:
        """The production with the fewest non-terminals (used at the depth cap)."""
        def non_terminals(production: Tuple[str, ...]) -> int:
            return sum(1 for child in production if child in _GRAMMAR)

        return min(productions, key=non_terminals)


def treebank_of(sentences: int, max_depth: int = 14, seed: int = 0) -> TreebankGenerator:
    """Convenience constructor."""
    return TreebankGenerator(TreebankConfig(sentences=sentences, max_depth=max_depth), seed=seed)
