"""XMark-style auction documents.

XMark is the standard XML benchmark schema used throughout the streaming
XPath literature for "variety of queries and datasets" experiments.  This
generator produces a compact subset of the XMark vocabulary: a ``site`` root
with ``regions`` (items with names, descriptions and prices), ``people``
(with addresses and profiles), and ``open_auctions`` (with bidder histories
and annotations).  The nesting includes one recursive hot-spot —
``parlist``/``listitem`` descriptions — so descendant queries still see some
match sharing, but the overall shape is bushy rather than deep, which
complements the recursive dataset in the query-variety experiment (E5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import DatasetError
from .base import DatasetGenerator, XMLWriter, chunked

_COUNTRIES = ["United States", "Germany", "Japan", "France", "Brazil", "India"]
_CATEGORIES = ["books", "electronics", "garden", "music", "sports", "toys"]
_WORDS = [
    "vintage", "rare", "boxed", "signed", "limited", "refurbished",
    "original", "mint", "sealed", "collectible",
]


@dataclass
class AuctionConfig:
    """Parameters of the auction document generator."""

    #: Number of items under regions.
    items: int = 200
    #: Number of registered people.
    people: int = 100
    #: Number of open auctions.
    open_auctions: int = 120
    #: Maximum depth of the recursive parlist/listitem description markup.
    description_depth: int = 3
    #: Maximum number of bidders per open auction.
    max_bidders: int = 5

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` for invalid settings."""
        if self.items < 1 or self.people < 1 or self.open_auctions < 1:
            raise DatasetError("items, people and open_auctions must all be >= 1")
        if self.description_depth < 0:
            raise DatasetError("description_depth must be >= 0")
        if self.max_bidders < 0:
            raise DatasetError("max_bidders must be >= 0")


class AuctionGenerator(DatasetGenerator):
    """Generate an XMark-like auction site document."""

    name = "auction"

    def __init__(self, config: Optional[AuctionConfig] = None, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.config = config or AuctionConfig()
        self.config.validate()

    def chunks(self) -> Iterator[str]:
        self.reset()
        yield from chunked(self._parts())

    # ------------------------------------------------------------ internals

    def _parts(self) -> Iterator[str]:
        config = self.config
        writer = XMLWriter()
        writer.declaration()
        writer.start("site")
        writer.newline()

        writer.start("regions")
        writer.newline()
        yield writer.drain()
        for index in range(config.items):
            self._item(writer, index)
            yield writer.drain()
        writer.end("regions")
        writer.newline()

        writer.start("people")
        writer.newline()
        yield writer.drain()
        for index in range(config.people):
            self._person(writer, index)
            yield writer.drain()
        writer.end("people")
        writer.newline()

        writer.start("open_auctions")
        writer.newline()
        yield writer.drain()
        for index in range(config.open_auctions):
            self._auction(writer, index)
            yield writer.drain()
        writer.end("open_auctions")
        writer.newline()

        writer.end("site")
        writer.newline()
        yield writer.drain()

    def _item(self, writer: XMLWriter, index: int) -> None:
        rng = self.rng
        region = rng.choice(_COUNTRIES)
        writer.start("item", {"id": f"item{index}", "category": rng.choice(_CATEGORIES)})
        writer.element("location", region)
        writer.element("name", f"Item {index} {rng.choice(_WORDS)}")
        writer.element("quantity", str(rng.randint(1, 10)))
        writer.element("price", f"{rng.uniform(1, 500):.2f}")
        writer.start("description")
        self._parlist(writer, depth=self.config.description_depth)
        writer.end("description")
        writer.start("mailbox")
        for mail_index in range(rng.randint(0, 2)):
            writer.start("mail")
            writer.element("from", f"person{rng.randrange(self.config.people)}")
            writer.element("date", f"2004-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}")
            writer.element("text", " ".join(rng.sample(_WORDS, k=3)) + f" #{mail_index}")
            writer.end("mail")
        writer.end("mailbox")
        writer.end("item")
        writer.newline()

    def _parlist(self, writer: XMLWriter, depth: int) -> None:
        rng = self.rng
        if depth <= 0:
            writer.element("text", " ".join(rng.sample(_WORDS, k=4)))
            return
        writer.start("parlist")
        for _ in range(rng.randint(1, 2)):
            writer.start("listitem")
            if rng.random() < 0.5 and depth > 1:
                self._parlist(writer, depth - 1)
            else:
                writer.element("text", " ".join(rng.sample(_WORDS, k=3)))
            writer.end("listitem")
        writer.end("parlist")

    def _person(self, writer: XMLWriter, index: int) -> None:
        rng = self.rng
        writer.start("person", {"id": f"person{index}"})
        writer.element("name", f"Person {index}")
        writer.element("emailaddress", f"person{index}@example.org")
        if rng.random() < 0.7:
            writer.start("address")
            writer.element("street", f"{rng.randint(1, 99)} Main Street")
            writer.element("city", f"City {rng.randrange(50)}")
            writer.element("country", rng.choice(_COUNTRIES))
            writer.end("address")
        if rng.random() < 0.6:
            writer.start("profile", {"income": f"{rng.uniform(20_000, 120_000):.2f}"})
            writer.element("interest", rng.choice(_CATEGORIES))
            writer.element("education", rng.choice(["High School", "College", "Graduate"]))
            writer.end("profile")
        writer.end("person")
        writer.newline()

    def _auction(self, writer: XMLWriter, index: int) -> None:
        rng = self.rng
        config = self.config
        writer.start("open_auction", {"id": f"open_auction{index}"})
        writer.element("initial", f"{rng.uniform(1, 100):.2f}")
        writer.element("reserve", f"{rng.uniform(100, 400):.2f}")
        for _ in range(rng.randint(0, config.max_bidders)):
            writer.start("bidder")
            writer.element("date", f"2004-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}")
            writer.element("personref", f"person{rng.randrange(config.people)}")
            writer.element("increase", f"{rng.uniform(1, 50):.2f}")
            writer.end("bidder")
        writer.element("current", f"{rng.uniform(100, 600):.2f}")
        writer.element("itemref", f"item{rng.randrange(config.items)}")
        writer.start("annotation")
        writer.element("author", f"person{rng.randrange(config.people)}")
        writer.start("description")
        self._parlist(writer, depth=max(0, config.description_depth - 1))
        writer.end("description")
        writer.end("annotation")
        writer.end("open_auction")
        writer.newline()
