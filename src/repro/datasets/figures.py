"""The paper's worked-example documents, reproduced verbatim.

``FIGURE_1_XML`` is the document from Figure 1 of the paper, laid out so that
every start tag begins on the same line number as in the figure (line 1 is
``<book>``, line 8 is the ``<cell>``, line 15 the ``<author>``), because the
paper identifies nodes by those line numbers (``cell_8``, ``table_5`` …).
The E6 tests assert the exact solution set and the pattern-match accounting
described in Section 1 against this document.
"""

from __future__ import annotations

from typing import Dict, List

from .base import StringDataset

#: The sample XML data of Figure 1.  The paper's figure uses the compact
#: ``</>`` close-tag shorthand; standard XML requires named end tags, which is
#: the only deviation here.  Line numbers of start tags match the figure.
FIGURE_1_XML = """<book>
 <section>
  <section>
   <section>
    <table>
     <table>
      <table>
       <cell> A </cell>
      </table>
     </table>
     <position> B </position>
    </table>
   </section>
  </section>
 <author> C </author>
</section>
</book>"""

#: The query used throughout the paper's Section 1 walk-through.
FIGURE_1_QUERY = "//section[author]//table[position]//cell"

#: The example query of Feature 5 (run against the Protein dataset).
PROTEIN_EXAMPLE_QUERY = "//ProteinEntry[reference]/@id"

#: Start-tag line numbers of the elements the paper names explicitly.
FIGURE_1_LINES: Dict[str, int] = {
    "book": 1,
    "section_outer": 2,
    "section_middle": 3,
    "section_inner": 4,
    "table_5": 5,
    "table_6": 6,
    "table_7": 7,
    "cell_8": 8,
    "position_11": 11,
    "author_15": 15,
}

#: The number of pattern matches of the subquery ``//section//table//cell``
#: for the node ``cell_8``: three sections × three tables (paper Section 1).
FIGURE_1_CELL8_MATCH_COUNT = 9


def figure_1_dataset() -> StringDataset:
    """The Figure 1 document as a dataset object."""
    return StringDataset(FIGURE_1_XML)


def figure_1_expected_solution_lines() -> List[int]:
    """Start-tag lines of the query solutions for the Figure 1 walk-through."""
    return [FIGURE_1_LINES["cell_8"]]
