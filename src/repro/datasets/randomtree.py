"""Random small XML trees over a tiny vocabulary (for differential testing).

Property-based tests compare the TwigM engine, the naive baseline and the DOM
oracle on thousands of (document, query) pairs.  Those documents come from
here: trees over a small tag vocabulary with controllable depth, fan-out,
attribute and text probabilities, and plenty of same-tag nesting so that the
exponential-match corner cases are hit constantly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import DatasetError
from .base import DatasetGenerator, XMLWriter, chunked


@dataclass
class RandomTreeConfig:
    """Parameters of the random tree generator."""

    #: Tag vocabulary (small on purpose: collisions create recursion).
    vocabulary: tuple = ("a", "b", "c", "d")
    #: Attribute names drawn for random attributes.
    attributes: tuple = ("id", "key")
    #: Values for attributes and text (drawn uniformly).
    values: tuple = ("1", "2", "x")
    #: Maximum tree depth (root = depth 1).
    max_depth: int = 6
    #: Maximum number of children per element.
    max_children: int = 3
    #: Probability that an element gets an attribute.
    attribute_probability: float = 0.3
    #: Probability that an element gets a text child.
    text_probability: float = 0.3
    #: Probability that an element has children at all (when depth remains).
    branch_probability: float = 0.8

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` for invalid settings."""
        if not self.vocabulary:
            raise DatasetError("vocabulary must not be empty")
        if self.max_depth < 1:
            raise DatasetError("max_depth must be >= 1")
        if self.max_children < 0:
            raise DatasetError("max_children must be >= 0")
        for name in ("attribute_probability", "text_probability", "branch_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{name} must be in [0, 1]")


class RandomTreeGenerator(DatasetGenerator):
    """Generate random small XML documents."""

    name = "randomtree"

    def __init__(self, config: Optional[RandomTreeConfig] = None, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.config = config or RandomTreeConfig()
        self.config.validate()

    def chunks(self) -> Iterator[str]:
        self.reset()
        writer = XMLWriter()
        writer.declaration()
        self._element(writer, depth=1)
        yield from chunked([writer.drain()])

    # ------------------------------------------------------------ internals

    def _element(self, writer: XMLWriter, depth: int) -> None:
        config = self.config
        rng = self.rng
        tag = rng.choice(config.vocabulary)
        attributes = None
        if rng.random() < config.attribute_probability:
            attributes = {rng.choice(config.attributes): rng.choice(config.values)}
        writer.start(tag, attributes)
        if rng.random() < config.text_probability:
            writer.text(rng.choice(config.values))
        if depth < config.max_depth and rng.random() < config.branch_probability:
            for _ in range(rng.randint(0, config.max_children)):
                self._element(writer, depth + 1)
                if rng.random() < config.text_probability / 2:
                    writer.text(rng.choice(config.values))
        writer.end(tag)


def random_documents(count: int, seed: int = 0, config: Optional[RandomTreeConfig] = None) -> List[str]:
    """Generate ``count`` random documents with consecutive derived seeds."""
    return [
        RandomTreeGenerator(config=config, seed=seed * 10_000 + index).text()
        for index in range(count)
    ]
