"""Dataset generator framework.

Every synthetic dataset in the reproduction is produced by a
:class:`DatasetGenerator` subclass.  Generators are

* **seeded** — the same parameters and seed always produce the same document,
  so benchmark runs are repeatable;
* **streaming** — :meth:`DatasetGenerator.chunks` yields the document as text
  chunks without ever materialising it, which is what lets the memory
  benchmarks process multi-hundred-megabyte documents with a flat footprint;
* **size-targeted** — most generators accept a ``target_bytes`` knob and keep
  emitting repeating units until the target is reached, mirroring how the
  paper scales its 75 MB Protein dataset.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional

from ..errors import DatasetError


def escape_text(text: str) -> str:
    """Escape character data for inclusion in generated XML."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape character data for inclusion in a generated attribute value."""
    return escape_text(text).replace('"', "&quot;")


class XMLWriter:
    """A tiny helper for generators that emit markup incrementally.

    It keeps the open-tag stack so generators cannot produce ill-formed
    output, and accumulates text into a buffer that callers drain as chunks.
    """

    def __init__(self) -> None:
        self._parts: List[str] = []
        self._open: List[str] = []

    # ------------------------------------------------------------ writing

    def declaration(self) -> None:
        """Emit the XML declaration."""
        self._parts.append('<?xml version="1.0" encoding="UTF-8"?>\n')

    def start(self, tag: str, attributes: Optional[dict] = None) -> None:
        """Emit a start tag."""
        if attributes:
            attrs = " ".join(
                f'{name}="{escape_attribute(str(value))}"' for name, value in attributes.items()
            )
            self._parts.append(f"<{tag} {attrs}>")
        else:
            self._parts.append(f"<{tag}>")
        self._open.append(tag)

    def end(self, tag: Optional[str] = None) -> None:
        """Emit the end tag for the innermost open element."""
        if not self._open:
            raise DatasetError("end() called with no open element")
        expected = self._open.pop()
        if tag is not None and tag != expected:
            raise DatasetError(f"end tag mismatch: expected {expected!r}, got {tag!r}")
        self._parts.append(f"</{expected}>")

    def text(self, content: str) -> None:
        """Emit character data."""
        self._parts.append(escape_text(content))

    def element(self, tag: str, content: str = "", attributes: Optional[dict] = None) -> None:
        """Emit a complete simple element."""
        self.start(tag, attributes)
        if content:
            self.text(content)
        self.end(tag)

    def newline(self) -> None:
        """Emit a newline (keeps generated documents human-readable)."""
        self._parts.append("\n")

    # ------------------------------------------------------------ draining

    @property
    def open_depth(self) -> int:
        """Number of currently open elements."""
        return len(self._open)

    def pending_size(self) -> int:
        """Number of characters currently buffered."""
        return sum(len(part) for part in self._parts)

    def drain(self) -> str:
        """Return and clear the buffered text."""
        text = "".join(self._parts)
        self._parts = []
        return text


class DatasetGenerator:
    """Base class for synthetic dataset generators."""

    #: Short name used by the workload registry and the CLI.
    name = "dataset"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    # -- interface ----------------------------------------------------------

    def chunks(self) -> Iterator[str]:
        """Yield the document as text chunks.  Subclasses must implement."""
        raise NotImplementedError

    # -- conveniences --------------------------------------------------------

    def text(self) -> str:
        """Materialise the whole document as a single string."""
        return "".join(self.chunks())

    def write_to(self, path) -> int:
        """Write the document to ``path``; return the number of bytes written."""
        total = 0
        with open(path, "w", encoding="utf-8") as handle:
            for chunk in self.chunks():
                handle.write(chunk)
                total += len(chunk.encode("utf-8"))
        return total

    def size_bytes(self) -> int:
        """Size of the generated document in (UTF-8) bytes, without storing it."""
        return sum(len(chunk.encode("utf-8")) for chunk in self.chunks())

    def reset(self) -> None:
        """Re-seed the internal RNG so :meth:`chunks` is repeatable."""
        self.rng = random.Random(self.seed)


class StringDataset(DatasetGenerator):
    """A dataset wrapping a fixed document string (used for paper figures)."""

    name = "string"

    def __init__(self, text: str, chunk_size: int = 64 * 1024) -> None:
        super().__init__(seed=0)
        if chunk_size <= 0:
            raise DatasetError("chunk_size must be positive")
        self._text = text
        self._chunk_size = chunk_size

    def chunks(self) -> Iterator[str]:
        for start in range(0, len(self._text), self._chunk_size):
            yield self._text[start:start + self._chunk_size]


def chunked(parts: Iterable[str], chunk_size: int = 64 * 1024) -> Iterator[str]:
    """Regroup an iterable of small strings into chunks of roughly ``chunk_size``."""
    buffer: List[str] = []
    size = 0
    for part in parts:
        buffer.append(part)
        size += len(part)
        if size >= chunk_size:
            yield "".join(buffer)
            buffer = []
            size = 0
    if buffer:
        yield "".join(buffer)
