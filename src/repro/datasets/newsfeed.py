"""Streaming news / stock-ticker documents.

The paper's motivation section names stock market data, sports tickers and
personalised newspapers as the applications that force single-pass
processing.  This generator produces exactly that shape: one long document
whose root contains an unbounded-looking sequence of timestamped ``update``
elements (stock quotes or headlines).  Because solutions appear throughout
the stream, it is the workload used by the incremental-latency experiment
(E7) and the stock-ticker example application.

The generator first draws a deterministic *plan* (which updates are quotes
and for which symbol) from the seed; the document text and the expected
answer counts are both derived from that plan, so tests can verify the
streaming engine against an independently computed ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..errors import DatasetError
from .base import DatasetGenerator, XMLWriter, chunked

_SYMBOLS = ["ACME", "GLOBEX", "INITECH", "UMBRELLA", "STARK", "WAYNE", "HOOLI", "PIED"]
_SECTIONS = ["markets", "technology", "sports", "politics", "science"]
_HEADLINE_WORDS = [
    "surges", "plunges", "steady", "rallies", "slips", "record", "outlook",
    "earnings", "merger", "forecast",
]


@dataclass
class NewsFeedConfig:
    """Parameters of the news/stock stream generator."""

    #: Total number of update elements in the stream.
    updates: int = 2000
    #: Fraction of updates that are stock quotes (the rest are headlines).
    quote_fraction: float = 0.6
    #: Index (0-based) of the first update guaranteed to match the canonical
    #: ticker query (``//update[quote/@symbol='ACME']``); used by the
    #: first-result-latency experiment.
    first_match_at: int = 5

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` for invalid settings."""
        if self.updates < 1:
            raise DatasetError("updates must be >= 1")
        if not 0.0 <= self.quote_fraction <= 1.0:
            raise DatasetError("quote_fraction must be in [0, 1]")
        if not 0 <= self.first_match_at < self.updates:
            raise DatasetError("first_match_at must fall inside the stream")


class NewsFeedGenerator(DatasetGenerator):
    """Generate a long stream of stock quotes and news headlines."""

    name = "newsfeed"

    #: The canonical query the examples and the latency experiment run.
    CANONICAL_QUERY = "//update[quote/@symbol='ACME']"

    def __init__(self, config: Optional[NewsFeedConfig] = None, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.config = config or NewsFeedConfig()
        self.config.validate()

    # ------------------------------------------------------------ plan

    def plan(self) -> List[Tuple[str, Optional[str]]]:
        """The deterministic update plan: one ``(kind, symbol)`` pair per update.

        ``kind`` is ``"quote"`` or ``"headline"``; ``symbol`` is the stock
        symbol for quotes and ``None`` for headlines.
        """
        rng = random.Random(self.seed)
        config = self.config
        plan: List[Tuple[str, Optional[str]]] = []
        for index in range(config.updates):
            if index == config.first_match_at:
                plan.append(("quote", "ACME"))
            elif rng.random() < config.quote_fraction:
                plan.append(("quote", rng.choice(_SYMBOLS)))
            else:
                plan.append(("headline", None))
        return plan

    def expected_symbol_updates(self, symbol: str = "ACME") -> int:
        """Number of updates quoting ``symbol`` (from the plan, not the engine)."""
        return sum(1 for kind, sym in self.plan() if kind == "quote" and sym == symbol)

    def first_symbol_update_index(self, symbol: str = "ACME") -> Optional[int]:
        """Index of the first update quoting ``symbol``, or None."""
        for index, (kind, sym) in enumerate(self.plan()):
            if kind == "quote" and sym == symbol:
                return index
        return None

    # ------------------------------------------------------------ document

    def chunks(self) -> Iterator[str]:
        self.reset()
        yield from chunked(self._parts(), chunk_size=8 * 1024)

    def _parts(self) -> Iterator[str]:
        writer = XMLWriter()
        writer.declaration()
        writer.start("feed", {"generator": "vitex-repro", "version": "1.0"})
        writer.newline()
        yield writer.drain()
        for index, (kind, symbol) in enumerate(self.plan()):
            self._update(writer, index, kind, symbol)
            yield writer.drain()
        writer.end("feed")
        writer.newline()
        yield writer.drain()

    def _update(self, writer: XMLWriter, index: int, kind: str, symbol: Optional[str]) -> None:
        rng = self.rng
        timestamp = f"2005-04-05T{(index // 3600) % 24:02d}:{(index // 60) % 60:02d}:{index % 60:02d}"
        writer.start("update", {"seq": index, "timestamp": timestamp})
        if kind == "quote":
            writer.start("quote", {"symbol": symbol or rng.choice(_SYMBOLS)})
            writer.element("price", f"{rng.uniform(5, 500):.2f}")
            writer.element("change", f"{rng.uniform(-5, 5):+.2f}")
            writer.element("volume", str(rng.randint(100, 100000)))
            writer.end("quote")
        else:
            writer.start("headline", {"section": rng.choice(_SECTIONS)})
            writer.element(
                "title",
                f"{rng.choice(_SYMBOLS)} {rng.choice(_HEADLINE_WORDS)} {rng.choice(_HEADLINE_WORDS)}",
            )
            writer.element("byline", f"Reporter {rng.randrange(40)}")
            writer.end("headline")
        writer.end("update")
        writer.newline()


def ticker_stream(updates: int = 2000, seed: int = 0) -> NewsFeedGenerator:
    """Convenience constructor for a stock/news stream of ``updates`` items."""
    return NewsFeedGenerator(NewsFeedConfig(updates=updates), seed=seed)
