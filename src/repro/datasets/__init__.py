"""Synthetic datasets used by tests, examples and the benchmark harness.

The Georgetown PIR Protein Sequence Database used by the paper is not
redistributable, so :mod:`repro.datasets.protein` generates a structurally
equivalent substitute; the other generators cover the recursive documents the
motivation section describes, XMark-style auction data, stock/news streams
and random trees for differential testing.  Every generator is seeded and can
stream its output in chunks.
"""

from .auction import AuctionConfig, AuctionGenerator
from .base import DatasetGenerator, StringDataset, XMLWriter, chunked
from .figures import (
    FIGURE_1_CELL8_MATCH_COUNT,
    FIGURE_1_LINES,
    FIGURE_1_QUERY,
    FIGURE_1_XML,
    PROTEIN_EXAMPLE_QUERY,
    figure_1_dataset,
    figure_1_expected_solution_lines,
)
from .newsfeed import NewsFeedConfig, NewsFeedGenerator, ticker_stream
from .protein import ProteinConfig, ProteinDatabaseGenerator, protein_dataset_of_size
from .randomtree import RandomTreeConfig, RandomTreeGenerator, random_documents
from .recursive import RecursiveBookGenerator, RecursiveConfig, small_recursive_document
from .treebank import TreebankConfig, TreebankGenerator, treebank_of

__all__ = [
    "AuctionConfig",
    "AuctionGenerator",
    "DatasetGenerator",
    "FIGURE_1_CELL8_MATCH_COUNT",
    "FIGURE_1_LINES",
    "FIGURE_1_QUERY",
    "FIGURE_1_XML",
    "NewsFeedConfig",
    "NewsFeedGenerator",
    "PROTEIN_EXAMPLE_QUERY",
    "ProteinConfig",
    "ProteinDatabaseGenerator",
    "RandomTreeConfig",
    "RandomTreeGenerator",
    "RecursiveBookGenerator",
    "RecursiveConfig",
    "StringDataset",
    "TreebankConfig",
    "TreebankGenerator",
    "XMLWriter",
    "chunked",
    "figure_1_dataset",
    "figure_1_expected_solution_lines",
    "protein_dataset_of_size",
    "random_documents",
    "small_recursive_document",
    "ticker_stream",
    "treebank_of",
]
