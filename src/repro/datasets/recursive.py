"""Recursive book/section/table documents (Figure-1 style).

This generator produces the data shape that motivates the paper: elements
that nest inside themselves (``section`` inside ``section``, ``table`` inside
``table``), so that descendant-axis queries have a number of pattern matches
exponential in the query size.  The recursion depth, the fan-out and the
probability that the predicate elements (``author``, ``position``) are
present are all controllable, which lets the E3 benchmark dial the amount of
match explosion precisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import DatasetError
from .base import DatasetGenerator, XMLWriter, chunked


@dataclass
class RecursiveConfig:
    """Parameters of the recursive document generator."""

    #: Number of nested ``section`` levels under the root.
    section_depth: int = 4
    #: Number of nested ``table`` levels inside the innermost section.
    table_depth: int = 4
    #: Number of sibling section chains under the root.
    section_groups: int = 2
    #: Number of cells inside the innermost table of each chain.
    cells_per_table: int = 2
    #: Probability that a section has an ``author`` child.
    author_probability: float = 0.5
    #: Probability that a table has a ``position`` child.
    position_probability: float = 0.5
    #: Extra payload elements per section (noise that the query must skip).
    noise_per_section: int = 1

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DatasetError` for invalid settings."""
        if self.section_depth < 1:
            raise DatasetError("section_depth must be >= 1")
        if self.table_depth < 1:
            raise DatasetError("table_depth must be >= 1")
        if self.section_groups < 1:
            raise DatasetError("section_groups must be >= 1")
        if self.cells_per_table < 0:
            raise DatasetError("cells_per_table must be >= 0")
        if not 0.0 <= self.author_probability <= 1.0:
            raise DatasetError("author_probability must be in [0, 1]")
        if not 0.0 <= self.position_probability <= 1.0:
            raise DatasetError("position_probability must be in [0, 1]")
        if self.noise_per_section < 0:
            raise DatasetError("noise_per_section must be >= 0")


class RecursiveBookGenerator(DatasetGenerator):
    """Generate deeply recursive ``book/section/table/cell`` documents."""

    name = "recursive"

    def __init__(self, config: Optional[RecursiveConfig] = None, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.config = config or RecursiveConfig()
        self.config.validate()

    def chunks(self) -> Iterator[str]:
        self.reset()
        yield from chunked(self._parts())

    # ------------------------------------------------------------ internals

    def _parts(self) -> Iterator[str]:
        config = self.config
        writer = XMLWriter()
        writer.declaration()
        writer.start("book")
        writer.newline()
        yield writer.drain()
        for group in range(config.section_groups):
            yield from self._section_chain(writer, depth=config.section_depth, group=group)
        writer.end("book")
        writer.newline()
        yield writer.drain()

    def _section_chain(self, writer: XMLWriter, depth: int, group: int) -> Iterator[str]:
        config = self.config
        rng = self.rng
        opened = 0
        authors_pending = []
        for level in range(depth):
            writer.start("section", {"depth": level + 1, "group": group})
            writer.newline()
            opened += 1
            has_author = rng.random() < config.author_probability
            authors_pending.append(has_author)
            for noise in range(config.noise_per_section):
                writer.element("title", f"Section {group}.{level}.{noise}")
                writer.newline()
            yield writer.drain()
        yield from self._table_chain(writer, depth=config.table_depth, group=group)
        while opened:
            has_author = authors_pending.pop()
            if has_author:
                writer.element("author", f"Author {group}-{opened}")
                writer.newline()
            writer.end("section")
            writer.newline()
            opened -= 1
            yield writer.drain()

    def _table_chain(self, writer: XMLWriter, depth: int, group: int) -> Iterator[str]:
        config = self.config
        rng = self.rng
        opened = 0
        positions_pending = []
        for level in range(depth):
            writer.start("table", {"depth": level + 1})
            writer.newline()
            opened += 1
            positions_pending.append(rng.random() < config.position_probability)
            yield writer.drain()
        for index in range(config.cells_per_table):
            writer.element("cell", f"value {group}.{index}")
            writer.newline()
        yield writer.drain()
        while opened:
            has_position = positions_pending.pop()
            if has_position:
                writer.element("position", f"P{group}-{opened}")
                writer.newline()
            writer.end("table")
            writer.newline()
            opened -= 1
            yield writer.drain()


def small_recursive_document(
    section_depth: int = 3,
    table_depth: int = 3,
    seed: int = 0,
    author_probability: float = 1.0,
    position_probability: float = 1.0,
) -> str:
    """Convenience: a small recursive document as a string (used in tests)."""
    generator = RecursiveBookGenerator(
        RecursiveConfig(
            section_depth=section_depth,
            table_depth=table_depth,
            section_groups=1,
            cells_per_table=1,
            author_probability=author_probability,
            position_probability=position_probability,
            noise_per_section=0,
        ),
        seed=seed,
    )
    return generator.text()
