"""A lightweight in-memory XML tree (DOM) built from streaming events.

ViteX exists precisely because building an in-memory tree is not possible on
unbounded streams; we still need one for two purposes:

* as the **correctness oracle**: a navigational, random-access XPath
  evaluator over this tree (:mod:`repro.baselines.dom_eval`) defines the
  expected answers that the streaming TwigM engine must reproduce;
* as a convenience for small documents in tests and examples.

The node model is intentionally small: elements with a tag, attributes,
text, children, a parent pointer, the document ``level`` (root element = 1,
matching the streaming events) and the start-tag ``line`` when known, so that
solutions can be identified the way the paper does ("the cell element at
line 8").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import StreamStateError
from .events import (
    Characters,
    Comment,
    EndDocument,
    EndElement,
    Event,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)


@dataclass
class Element:
    """An element node of the in-memory tree."""

    tag: str
    attributes: Dict[str, str] = field(default_factory=dict)
    children: List["Element"] = field(default_factory=list)
    parent: Optional["Element"] = None
    level: int = 0
    line: Optional[int] = None
    #: Pre-order position of the element's start tag in the document
    #: (0-based over elements only); used for document-order comparisons.
    order: int = 0
    #: Concatenated character data that is a *direct* child of this element.
    text: str = ""

    # ------------------------------------------------------------ queries

    def iter(self) -> Iterator["Element"]:
        """Yield this element and every descendant in document order."""
        yield self
        for child in self.children:
            yield from child.iter()

    def descendants(self) -> Iterator["Element"]:
        """Yield every proper descendant in document order."""
        for child in self.children:
            yield from child.iter()

    def ancestors(self) -> Iterator["Element"]:
        """Yield ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def find_all(self, tag: str) -> List["Element"]:
        """Return all descendants (and self) with the given tag."""
        return [node for node in self.iter() if node.tag == tag]

    def child_elements(self, tag: Optional[str] = None) -> List["Element"]:
        """Return direct element children, optionally filtered by tag."""
        if tag is None:
            return list(self.children)
        return [child for child in self.children if child.tag == tag]

    def get(self, attribute: str, default: Optional[str] = None) -> Optional[str]:
        """Return the value of ``attribute`` or ``default``."""
        return self.attributes.get(attribute, default)

    def string_value(self) -> str:
        """Return the concatenation of all descendant text (XPath string value)."""
        parts: List[str] = []
        self._collect_text(parts)
        return "".join(parts)

    def _collect_text(self, parts: List[str]) -> None:
        parts.append(self.text_before_children())
        for index, child in enumerate(self.children):
            child._collect_text(parts)
            parts.append(self.text_segment(index + 1))

    # Text handling: we store interleaved text segments so mixed content
    # round-trips through the serializer.  ``_segments[i]`` is the text that
    # appears before child ``i``; ``_segments[len(children)]`` is the trailing
    # text.  ``text`` (above) keeps the simple concatenation for convenience.
    _segments: List[str] = field(default_factory=lambda: [""])

    def text_before_children(self) -> str:
        """Text appearing before the first child element."""
        return self._segments[0] if self._segments else ""

    def text_segment(self, index: int) -> str:
        """Text appearing after child ``index - 1`` (0 = before first child)."""
        if 0 <= index < len(self._segments):
            return self._segments[index]
        return ""

    def append_text(self, text: str) -> None:
        """Append character data at the current end of this element's content."""
        if not text:
            return
        while len(self._segments) < len(self.children) + 1:
            self._segments.append("")
        self._segments[len(self.children)] += text
        self.text += text

    def append_child(self, child: "Element") -> None:
        """Attach ``child`` as the last child of this element."""
        while len(self._segments) < len(self.children) + 1:
            self._segments.append("")
        child.parent = self
        self.children.append(child)
        self._segments.append("")

    # ------------------------------------------------------------ dunder

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag!r} level={self.level} line={self.line}>"


@dataclass
class Document:
    """A parsed XML document."""

    root: Element
    #: Total number of element nodes.
    element_count: int = 0
    #: Maximum element depth (root = 1).
    max_depth: int = 0

    def iter(self) -> Iterator[Element]:
        """Yield every element in document order."""
        yield from self.root.iter()

    def find_all(self, tag: str) -> List[Element]:
        """Return every element with the given tag, in document order."""
        return self.root.find_all(tag)

    def elements_at_line(self, line: int) -> List[Element]:
        """Return elements whose start tag begins at the given source line."""
        return [node for node in self.iter() if node.line == line]


class TreeBuilder:
    """Builds a :class:`Document` from a stream of events."""

    def __init__(self) -> None:
        self._stack: List[Element] = []
        self._root: Optional[Element] = None
        self._order = 0
        self._max_depth = 0
        self._finished = False

    def feed(self, event: Event) -> None:
        """Consume one event."""
        if self._finished:
            raise StreamStateError("tree builder already finished")
        if isinstance(event, StartElement):
            element = Element(
                tag=event.name,
                attributes=event.attribute_dict(),
                level=event.level,
                line=event.line,
                order=self._order,
            )
            self._order += 1
            self._max_depth = max(self._max_depth, event.level)
            if self._stack:
                self._stack[-1].append_child(element)
            elif self._root is None:
                self._root = element
            else:
                raise StreamStateError("multiple root elements in event stream")
            self._stack.append(element)
        elif isinstance(event, EndElement):
            if not self._stack:
                raise StreamStateError(
                    f"end element '{event.name}' without matching start"
                )
            top = self._stack.pop()
            if top.tag != event.name:
                raise StreamStateError(
                    f"end element '{event.name}' does not match open '{top.tag}'"
                )
        elif isinstance(event, Characters):
            if self._stack:
                self._stack[-1].append_text(event.text)
        elif isinstance(event, (StartDocument, Comment, ProcessingInstruction)):
            pass
        elif isinstance(event, EndDocument):
            self._finished = True
        else:  # pragma: no cover - future event types
            raise StreamStateError(f"unknown event type {type(event).__name__}")

    def close(self) -> Document:
        """Finish building and return the document."""
        if self._stack:
            raise StreamStateError(
                f"document ended with unclosed element '{self._stack[-1].tag}'"
            )
        if self._root is None:
            raise StreamStateError("event stream contained no elements")
        return Document(root=self._root, element_count=self._order, max_depth=self._max_depth)


def build_tree(events: Iterable[Event]) -> Document:
    """Build a :class:`Document` from an iterable of events."""
    builder = TreeBuilder()
    for event in events:
        builder.feed(event)
    return builder.close()


def parse_document(text: str) -> Document:
    """Parse a document string into an in-memory tree using the native tokenizer."""
    from .tokenizer import tokenize

    return build_tree(tokenize(text))


def document_order_key(element: Element) -> Tuple[int, ...]:
    """Return a sort key placing elements in document order."""
    return (element.order,)
